//! Geospatial analytics on OpenStreetMap-style data (§7.3's OSM workload):
//! "How many nodes were added in a time interval?", "How many buildings in
//! a lat-lon rectangle?" — against Flood and the tree indexes that usually
//! serve this domain.
//!
//! ```text
//! cargo run --release --example osm_analytics
//! ```

use flood::baselines::{Hyperoctree, KdTree, RStarTree};
use flood::core::{CostModel, FloodBuilder, LayoutOptimizer, OptimizerConfig};
use flood::data::datasets::osm;
use flood::data::{DatasetKind, Workload, WorkloadKind};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery};
use std::time::Instant;

fn main() {
    let ds = DatasetKind::Osm.generate(400_000, 11);
    let workload = Workload::generate(WorkloadKind::OlapSkewed, &ds, 120, 0.001, 11);
    println!(
        "osm dataset: {} rows; geo mass clustered around NE-US metros",
        ds.table.len()
    );

    // Learn Flood's layout for the analytics workload.
    let optimizer = LayoutOptimizer::with_config(
        CostModel::analytic_default(),
        OptimizerConfig {
            data_sample: 10_000,
            query_sample: 30,
            ..Default::default()
        },
    );
    let learned = optimizer.optimize(&ds.table, &workload.train);
    println!("learned layout: {}", learned.layout);
    let flood = FloodBuilder::new().layout(learned.layout).build(&ds.table);

    // Spatial trees on the same attributes.
    let spatial_dims = vec![osm::COL_LAT, osm::COL_LON, osm::COL_TIMESTAMP];
    let kd = KdTree::build(&ds.table, spatial_dims.clone());
    let oct = Hyperoctree::build(&ds.table, spatial_dims.clone());
    let rtree = RStarTree::build(&ds.table, spatial_dims);

    // A concrete analyst question: buildings near Boston, recent edits.
    let boston = RangeQuery::all(6)
        .with_range(osm::COL_LAT, 42_000_000, 42_700_000)
        .with_range(osm::COL_LON, 70_700_000, 71_400_000)
        .with_range(osm::COL_TIMESTAMP, 300_000_000, u64::MAX);
    let mut v = CountVisitor::default();
    flood.execute(&boston, None, &mut v);
    println!("\nrecent edits in the Boston rectangle: {}", v.count);

    // Workload comparison.
    let indexes: Vec<(&str, &dyn MultiDimIndex)> = vec![
        ("Flood", &flood),
        ("K-d tree", &kd),
        ("Hyperoctree", &oct),
        ("R* tree", &rtree),
    ];
    println!("\navg time over {} analytics queries:", workload.test.len());
    let mut results = Vec::new();
    for (name, idx) in &indexes {
        let t0 = Instant::now();
        let mut matched = 0u64;
        for q in &workload.test {
            let mut v = CountVisitor::default();
            idx.execute(q, None, &mut v);
            matched += v.count;
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / workload.test.len() as f64;
        results.push((name, ms, matched));
    }
    let reference = results[0].2;
    for (name, ms, matched) in &results {
        assert_eq!(*matched, reference, "{name} disagrees on results");
        println!("  {name:<12} {ms:>8.3} ms");
    }
}
