//! The paper's motivating scenario: an analyst report workload over a sales
//! database. Flood *learns* its layout from a sample of the workload and
//! beats both a tuned clustered column index and a Z-order layout — the
//! §1 comparison ("3× over a tuned clustered column index and 72× over
//! Z-encoding" on the paper's testbed).
//!
//! ```text
//! cargo run --release --example sales_reporting
//! ```

use flood::baselines::{ClusteredIndex, ZOrderIndex};
use flood::core::cost::calibration::{calibrate, CalibrationConfig};
use flood::core::{CostModel, FloodBuilder, LayoutOptimizer, OptimizerConfig};
use flood::data::{DatasetKind, Workload, WorkloadKind};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery};
use std::time::Instant;

fn avg_ms(index: &dyn MultiDimIndex, queries: &[RangeQuery], agg: usize) -> f64 {
    let t0 = Instant::now();
    for q in queries {
        let mut v = CountVisitor::default();
        index.execute(q, Some(agg), &mut v);
    }
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

fn main() {
    // Synthetic stand-in for the paper's proprietary 30M-row sales extract.
    let ds = DatasetKind::Sales.generate(300_000, 7);
    let workload = Workload::generate(WorkloadKind::OlapSkewed, &ds, 150, 0.001, 7);
    let agg = DatasetKind::Sales.agg_dim();
    println!(
        "sales dataset: {} rows × {} dims; {} train / {} test queries",
        ds.table.len(),
        ds.table.dims(),
        workload.train.len(),
        workload.test.len()
    );

    // Calibrate the cost model once (hardware profiling, §4.1.1) …
    let t0 = Instant::now();
    let (weights, _) = calibrate(
        &ds.table,
        &workload.train[..20.min(workload.train.len())],
        CalibrationConfig {
            n_layouts: 5,
            ..Default::default()
        },
    );
    println!("calibrated cost model in {:.1?}", t0.elapsed());

    // … then learn the layout for this workload (Algorithm 1).
    let optimizer = LayoutOptimizer::with_config(
        CostModel::new(weights),
        OptimizerConfig {
            data_sample: 10_000,
            query_sample: 30,
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let learned = optimizer.optimize(&ds.table, &workload.train);
    println!(
        "learned layout {} in {:.1?} (predicted {:.0} µs/query)",
        learned.layout,
        t0.elapsed(),
        learned.predicted_ns / 1e3
    );
    let flood = FloodBuilder::new().layout(learned.layout).build(&ds.table);

    // Baselines an admin might configure instead.
    let clustered = ClusteredIndex::build(&ds.table, 5 /* date — the classic choice */);
    let zorder = ZOrderIndex::build(&ds.table, vec![0, 1, 5]);

    let f = avg_ms(&flood, &workload.test, agg);
    let c = avg_ms(&clustered, &workload.test, agg);
    let z = avg_ms(&zorder, &workload.test, agg);
    println!(
        "\navg query time over {} report queries:",
        workload.test.len()
    );
    println!("  Flood (learned):      {f:.3} ms");
    println!("  Clustered on date:    {c:.3} ms  ({:.1}x slower)", c / f);
    println!("  Z-order (3 attrs):    {z:.3} ms  ({:.1}x slower)", z / f);
}
