//! The §8 extensions in action: a Flood index that absorbs streaming
//! inserts through a delta buffer, detects when the query distribution has
//! drifted, re-learns its layout — and serves kNN queries on the side (§6).
//!
//! ```text
//! cargo run --release --example streaming_inserts
//! ```

use flood::core::{
    AdaptiveConfig, AdaptiveFlood, CostModel, DeltaFlood, FloodConfig, KnnSearcher, Layout,
    LayoutOptimizer, OptimizerConfig,
};
use flood::data::DatasetKind;
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery};

fn main() {
    let ds = DatasetKind::Osm.generate(150_000, 17);

    // --- Delta-buffered inserts -------------------------------------------
    let mut delta = DeltaFlood::build(
        &ds.table,
        Layout::new(vec![2, 3, 1], vec![16, 16]),
        FloodConfig::default(),
        10_000, // merge threshold
    );
    let q = RangeQuery::all(6).with_range(2, 40_000_000, 43_000_000);
    let mut v = CountVisitor::default();
    delta.execute(&q, None, &mut v);
    println!("before inserts: {} rows in the lat band", v.count);

    // Stream 12k new points near Boston (triggers one merge at 10k).
    for i in 0..12_000u64 {
        let row = [
            1_000_000 + i,             // id
            470_000_000 + i,           // timestamp
            42_360_000 + (i % 50_000), // lat
            71_060_000 + (i % 50_000), // lon
            0,                         // type = node
            3,                         // category
        ];
        delta.insert(&row);
    }
    let mut v = CountVisitor::default();
    delta.execute(&q, None, &mut v);
    println!(
        "after 12k inserts: {} rows ({} merges, {} still buffered)",
        v.count,
        delta.merges(),
        delta.delta_len()
    );

    // --- Adaptive retraining ----------------------------------------------
    let optimizer = LayoutOptimizer::with_config(
        CostModel::analytic_default(),
        OptimizerConfig {
            data_sample: 8_000,
            query_sample: 25,
            ..Default::default()
        },
    );
    // Initial workload: time-range queries.
    let w_time: Vec<RangeQuery> = (0..40)
        .map(|i| RangeQuery::all(6).with_range(1, i * 10_000_000, i * 10_000_000 + 4_000_000))
        .collect();
    let mut adaptive = AdaptiveFlood::build(
        &ds.table,
        &w_time,
        optimizer,
        FloodConfig::default(),
        AdaptiveConfig {
            window: 40,
            check_every: 20,
            degradation_factor: 1.3,
            ..Default::default()
        },
    );
    println!(
        "\nadaptive index starts with layout {}",
        adaptive.index().layout()
    );

    // The workload shifts to lat/lon rectangles.
    let w_geo: Vec<RangeQuery> = (0..60)
        .map(|i| {
            let lat = 39_500_000 + (i % 20) * 250_000;
            RangeQuery::all(6)
                .with_range(2, lat, lat + 400_000)
                .with_range(3, 70_000_000, 76_000_000)
        })
        .collect();
    let mut retrains = 0;
    for q in &w_geo {
        let mut v = CountVisitor::default();
        let (_, retrained) = adaptive.execute_adaptive(q, None, &mut v);
        retrains += retrained as usize;
    }
    println!(
        "after the shift to geo queries: {} retrain(s); layout is now {}",
        retrains,
        adaptive.index().layout()
    );

    // --- kNN on the grid (§6) ----------------------------------------------
    let knn_index = flood::core::FloodBuilder::new()
        .layout(Layout::new(vec![2, 3, 1], vec![32, 32]))
        .build(&ds.table);
    let searcher = KnnSearcher::new(&knn_index, vec![2, 3]);
    // Five closest points to downtown Boston.
    let probe = [0, 0, 42_360_000, 71_060_000, 0, 0];
    let neighbors = searcher.knn(&probe, 5);
    println!("\n5 nearest neighbors of downtown Boston:");
    for n in neighbors {
        let row = knn_index.data().row(n.row);
        println!(
            "  lat={:.4} lon={:.4} (distance {:.5})",
            row[2] as f64 / 1e6,
            row[3] as f64 / 1e6,
            n.distance
        );
    }
}
