//! Quickstart: build a Flood index by hand, query it, and compare against a
//! full scan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flood::core::{FloodBuilder, Layout};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, SumVisitor, Table};
use std::time::Instant;

fn main() {
    // 1. A three-attribute table: (category, price, timestamp).
    let n = 500_000u64;
    let table = Table::from_named_columns(
        vec![
            (0..n).map(|i| i % 64).collect(),               // category
            (0..n).map(|i| (i * 7919) % 100_000).collect(), // price
            (0..n).collect(),                               // timestamp
        ],
        vec!["category".into(), "price".into(), "timestamp".into()],
    );

    // 2. A layout: grid on (category × price), sort by timestamp.
    //    (In production you'd learn this — see the sales_reporting example.)
    let layout = Layout::new(vec![0, 1, 2], vec![8, 16]);
    let t0 = Instant::now();
    let index = FloodBuilder::new()
        .layout(layout)
        .cumulative_sum(1) // O(1) exact-range SUM over price
        .build(&table);
    println!(
        "built Flood over {n} rows in {:.2?} ({} cells, index {} bytes)",
        t0.elapsed(),
        index.layout().num_cells(),
        index.index_size_bytes()
    );

    // 3. SELECT COUNT(*), SUM(price) WHERE category IN 10..=12
    //    AND price <= 25_000 AND timestamp < 250_000.
    let query = RangeQuery::all(3)
        .with_range(0, 10, 12)
        .with_range(1, 0, 25_000)
        .with_range(2, 0, 249_999);

    let t0 = Instant::now();
    let mut count = CountVisitor::default();
    let stats = index.execute(&query, None, &mut count);
    let flood_time = t0.elapsed();
    let mut sum = SumVisitor::default();
    index.execute(&query, Some(1), &mut sum);

    println!(
        "flood:     count={}, sum(price)={}, in {flood_time:.2?} \
         (scanned {} points for {} matches — {:.2}x overhead)",
        count.count,
        sum.sum,
        stats.points_scanned + stats.points_in_exact_ranges,
        stats.points_matched,
        stats.scan_overhead().unwrap_or(f64::NAN),
    );

    // 4. The same query as a full scan.
    let full = flood::baselines::FullScan::build(&table);
    let t0 = Instant::now();
    let mut count2 = CountVisitor::default();
    full.execute(&query, None, &mut count2);
    let scan_time = t0.elapsed();
    println!("full scan: count={}, in {scan_time:.2?}", count2.count);
    assert_eq!(count.count, count2.count, "index must agree with the scan");
    println!(
        "speedup: {:.1}x",
        scan_time.as_secs_f64() / flood_time.as_secs_f64().max(1e-12)
    );
}
