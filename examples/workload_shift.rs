//! Workload shift (Fig 10's story): the query distribution changes; the
//! static indexes keep their old tuning while Flood re-learns its layout in
//! seconds and recovers.
//!
//! ```text
//! cargo run --release --example workload_shift
//! ```

use flood::baselines::{KdTree, ZOrderIndex};
use flood::core::{CostModel, FloodBuilder, FloodIndex, LayoutOptimizer, OptimizerConfig};
use flood::data::workloads::random_workload;
use flood::data::DatasetKind;
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, Table};
use std::time::Instant;

fn avg_ms(index: &dyn MultiDimIndex, queries: &[RangeQuery]) -> f64 {
    let t0 = Instant::now();
    for q in queries {
        let mut v = CountVisitor::default();
        index.execute(q, None, &mut v);
    }
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

fn learn(table: &Table, train: &[RangeQuery]) -> (FloodIndex, std::time::Duration) {
    let optimizer = LayoutOptimizer::with_config(
        CostModel::analytic_default(),
        OptimizerConfig {
            data_sample: 8_000,
            query_sample: 30,
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let learned = optimizer.optimize(table, train);
    let index = FloodBuilder::new().layout(learned.layout).build(table);
    (index, t0.elapsed())
}

fn main() {
    let kind = DatasetKind::TpcH;
    let ds = kind.generate(300_000, 3);
    let keys = kind.key_dims();

    // Hour 0: everyone tunes for workload A.
    let wl_a = random_workload(&ds.table, &keys, 80, 0.001, 100);
    let dims = vec![0, 1, 2, 3, 4, 5];
    let zorder = ZOrderIndex::build(&ds.table, dims.clone());
    let kd = KdTree::build(&ds.table, dims);
    let (flood_a, t_learn) = learn(&ds.table, &wl_a.train);
    println!(
        "workload A (layout {} learned in {t_learn:.2?}):",
        flood_a.layout()
    );
    println!("  Flood   {:>8.3} ms", avg_ms(&flood_a, &wl_a.test));
    println!("  Z-order {:>8.3} ms", avg_ms(&zorder, &wl_a.test));
    println!("  K-d     {:>8.3} ms", avg_ms(&kd, &wl_a.test));

    // Hour 1: the workload shifts. Static indexes stay as they are.
    let wl_b = random_workload(&ds.table, &keys, 80, 0.001, 200);
    println!("\nworkload B arrives — old Flood layout degrades:");
    let stale = avg_ms(&flood_a, &wl_b.test);
    println!("  Flood (stale layout) {stale:>8.3} ms");

    // Flood retrains (the paper: "recovers in 5 minutes on average" at
    // 300M rows; proportionally faster here).
    let (flood_b, t_relearn) = learn(&ds.table, &wl_b.train);
    let fresh = avg_ms(&flood_b, &wl_b.test);
    println!(
        "  Flood (re-learned in {t_relearn:.2?}, layout {}) {fresh:>8.3} ms",
        flood_b.layout()
    );
    println!("  Z-order {:>8.3} ms", avg_ms(&zorder, &wl_b.test));
    println!("  K-d     {:>8.3} ms", avg_ms(&kd, &wl_b.test));
    println!(
        "\nre-learning bought {:.1}x on the shifted workload",
        stale / fresh.max(1e-9)
    );
}
