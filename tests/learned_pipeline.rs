//! End-to-end tests of the learning pipeline: calibration → layout
//! optimization → build → execution, plus the ablation ordering the paper
//! reports (Fig 11) verified on the implementation-agnostic scan-overhead
//! metric rather than flaky wall-clock times.

use flood::core::cost::calibration::{calibrate, CalibrationConfig};
use flood::core::{CostModel, Flattening, FloodBuilder, Layout, LayoutOptimizer, OptimizerConfig};
use flood::data::{DatasetKind, Workload, WorkloadKind};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, ScanStats, Table};

fn workload_so(index: &dyn MultiDimIndex, queries: &[RangeQuery]) -> f64 {
    let mut stats = ScanStats::default();
    for q in queries {
        let mut v = CountVisitor::default();
        stats.merge(&index.execute(q, None, &mut v));
    }
    stats.scan_overhead().unwrap_or(f64::INFINITY)
}

fn fast_opt(n: usize) -> OptimizerConfig {
    OptimizerConfig {
        data_sample: (n / 10).clamp(500, 4_000),
        query_sample: 20,
        gd_steps: 10,
        max_total_cells: 1 << 14,
        ..Default::default()
    }
}

#[test]
fn calibrated_pipeline_end_to_end() {
    let ds = DatasetKind::TpcH.generate(20_000, 9);
    let w = Workload::generate(WorkloadKind::OlapSkewed, &ds, 25, 0.002, 9);

    let (weights, report) = calibrate(
        &ds.table,
        &w.train[..10],
        CalibrationConfig {
            n_layouts: 3,
            max_cells_log2: 10,
            ..Default::default()
        },
    );
    assert!(report.examples.0 >= 30, "wp examples {:?}", report.examples);

    let optimizer = LayoutOptimizer::with_config(CostModel::new(weights), fast_opt(ds.table.len()));
    let learned = optimizer.optimize(&ds.table, &w.train);
    assert!(learned.predicted_ns.is_finite() && learned.predicted_ns > 0.0);

    let index = FloodBuilder::new().layout(learned.layout).build(&ds.table);
    // Correctness against the oracle on the *test* split.
    for q in &w.test {
        let mut v = CountVisitor::default();
        index.execute(q, None, &mut v);
        let truth = (0..ds.table.len())
            .filter(|&r| q.matches(&ds.table.row(r)))
            .count() as u64;
        assert_eq!(v.count, truth);
    }
}

#[test]
fn learned_layout_beats_unindexed_dims() {
    // The learned layout's scan overhead must beat a layout gridding the
    // never-filtered dimension.
    let ds = DatasetKind::Sales.generate(20_000, 5);
    let w = Workload::generate(WorkloadKind::SingleType, &ds, 30, 0.002, 5);
    let optimizer =
        LayoutOptimizer::with_config(CostModel::analytic_default(), fast_opt(ds.table.len()));
    let learned = optimizer.optimize(&ds.table, &w.train);
    let flood = FloodBuilder::new()
        .layout(learned.layout.clone())
        .build(&ds.table);

    // An intentionally bad layout: grid on two dims the single-type
    // workload never touches.
    let touched: Vec<usize> = (0..ds.table.dims())
        .filter(|&d| w.train.iter().any(|q| q.filters(d)))
        .collect();
    let untouched: Vec<usize> = (0..ds.table.dims())
        .filter(|d| !touched.contains(d))
        .take(2)
        .collect();
    assert!(
        untouched.len() >= 2,
        "single-type workload leaves dims free"
    );
    let bad = FloodBuilder::new()
        .layout(Layout::new(
            vec![untouched[0], untouched[1], touched[0]],
            vec![16, 16],
        ))
        .build(&ds.table);

    let so_learned = workload_so(&flood, &w.test);
    let so_bad = workload_so(&bad, &w.test);
    assert!(
        so_learned < so_bad,
        "learned SO {so_learned:.1} should beat bad layout SO {so_bad:.1}"
    );
}

#[test]
fn flattening_reduces_scan_overhead_on_skew() {
    // Fig 11's +Flattening step, on the implementation-agnostic metric:
    // identical layouts, one with uniform spacing, one with learned CDFs,
    // on heavily skewed data.
    let n = 30_000usize;
    let table = Table::from_columns(vec![
        (0..n as u64).map(|i| (i * i) % 1_000_000).collect(), // quadratic skew
        (0..n as u64).map(|i| ((i * 31) % 173).pow(2)).collect(), // skewed small domain
        (0..n as u64).collect(),
    ]);
    let queries: Vec<RangeQuery> = (0..30)
        .map(|i| {
            let lo = (i * 1_000) as u64;
            RangeQuery::all(3)
                .with_range(0, lo, lo + 30_000)
                .with_range(2, 0, (n / 2) as u64)
        })
        .collect();
    let layout = Layout::new(vec![0, 1, 2], vec![32, 4]);
    let uniform = FloodBuilder::new()
        .layout(layout.clone())
        .flattening(Flattening::Uniform)
        .build(&table);
    let learned = FloodBuilder::new()
        .layout(layout)
        .flattening(Flattening::Learned)
        .build(&table);
    let so_u = workload_so(&uniform, &queries);
    let so_l = workload_so(&learned, &queries);
    assert!(
        so_l < so_u,
        "flattening should cut scan overhead on skewed data: {so_l:.2} vs {so_u:.2}"
    );
}

#[test]
fn sort_dim_refinement_gives_exact_ranges() {
    // +Sort Dim (Fig 11): with a sort-dim filter, the sorted variant scans
    // strictly fewer points than the histogram variant of the same budget.
    let ds = DatasetKind::TpcH.generate(20_000, 13);
    let queries: Vec<RangeQuery> = (0..20)
        .map(|i| {
            RangeQuery::all(7)
                .with_range(0, 100 + i * 20, 400 + i * 20)
                .with_range(1, 0, 2_000)
        })
        .collect();
    let hist = FloodBuilder::new()
        .layout(Layout::histogram(vec![0, 1], vec![16, 8]))
        .build(&ds.table);
    let sorted = FloodBuilder::new()
        .layout(Layout::new(vec![0, 1], vec![128]))
        .build(&ds.table);
    let so_h = workload_so(&hist, &queries);
    let so_s = workload_so(&sorted, &queries);
    assert!(
        so_s <= so_h,
        "sort-dim refinement should not scan more: {so_s:.2} vs {so_h:.2}"
    );
}

#[test]
fn optimizer_is_deterministic_per_seed() {
    let ds = DatasetKind::Osm.generate(10_000, 21);
    let w = Workload::generate(WorkloadKind::OlapUniform, &ds, 20, 0.002, 21);
    let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_opt(10_000));
    let a = opt.optimize(&ds.table, &w.train);
    let b = opt.optimize(&ds.table, &w.train);
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.predicted_ns, b.predicted_ns);
}
