//! Smoke test for the `flood` facade: every re-export resolves, and a
//! trivial build-index-and-query round-trip runs end to end through the
//! facade paths alone.

use flood::baselines::FullScan;
use flood::core::{FloodBuilder, Layout};
use flood::data::{Dataset, DatasetKind};
use flood::learned::Rmi;
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, Table};

/// Every workspace crate is reachable under its facade alias.
#[test]
fn reexports_resolve() {
    // One load-bearing type per re-exported crate; the function type-checks
    // only if all five module aliases point at the right crates.
    fn touch(_: &Table, _: &Rmi, _: &FloodBuilder, _: &FullScan, _: &DatasetKind) {}
    let _ = touch;
}

/// Build a small index through the facade and check a query against the
/// brute-force oracle.
#[test]
fn end_to_end_round_trip() {
    let table = Table::from_columns(vec![
        (0..2_000u64).map(|i| i % 50).collect(),
        (0..2_000u64).map(|i| (i * 13) % 400).collect(),
        (0..2_000u64).collect(),
    ]);
    let layout = Layout::new(vec![0, 1, 2], vec![4, 4]);
    let index = FloodBuilder::new().layout(layout).build(&table);

    let q = RangeQuery::all(3)
        .with_range(0, 10, 30)
        .with_range(2, 100, 1_500);
    let mut got = CountVisitor::default();
    index.execute(&q, None, &mut got);

    let want = (0..table.len())
        .filter(|&r| q.matches(&table.row(r)))
        .count() as u64;
    assert_eq!(got.count, want);
    assert!(got.count > 0, "query should match something");
}

/// The synthetic dataset generators are reachable and deterministic through
/// the facade.
#[test]
fn dataset_generation_is_deterministic() {
    let a: Dataset = DatasetKind::Sales.generate(500, 7);
    let b: Dataset = DatasetKind::Sales.generate(500, 7);
    assert_eq!(a.table.len(), 500);
    let cols = a.table.dims();
    for c in 0..cols {
        for r in 0..a.table.len() {
            assert_eq!(a.table.value(r, c), b.table.value(r, c), "row {r} col {c}");
        }
    }
}
