//! Serialization round-trips: layouts, queries, stats and learned models
//! all serialize (models so a learned configuration can be persisted and
//! shipped, per the paper's "calibrate once per machine" workflow).

use flood::core::cost::calibration::{calibrate, CalibrationConfig};
use flood::core::{CostModel, Layout};
use flood::learned::rmi::RmiConfig;
use flood::learned::{PiecewiseLinearModel, Rmi};
use flood::store::{RangeQuery, ScanStats};

#[test]
fn layout_roundtrip() {
    let l = Layout::new(vec![2, 0, 1], vec![8, 16]);
    let json = serde_json::to_string(&l).expect("serialize");
    let back: Layout = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(l, back);
    let h = Layout::histogram(vec![0, 1], vec![4, 4]);
    let back: Layout =
        serde_json::from_str(&serde_json::to_string(&h).expect("serialize")).expect("deserialize");
    assert_eq!(h, back);
    assert!(!back.has_sort_dim());
}

#[test]
fn query_roundtrip() {
    let q = RangeQuery::all(4).with_range(1, 5, 10).with_eq(3, 7);
    let json = serde_json::to_string(&q).expect("serialize");
    let back: RangeQuery = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(q, back);
}

#[test]
fn stats_roundtrip() {
    let s = ScanStats {
        points_scanned: 10,
        points_matched: 5,
        cells_visited: 3,
        ..Default::default()
    };
    let back: ScanStats =
        serde_json::from_str(&serde_json::to_string(&s).expect("serialize")).expect("deserialize");
    assert_eq!(s, back);
}

#[test]
fn plm_roundtrip_preserves_predictions() {
    let values: Vec<u64> = (0..5_000u64).map(|i| i * 7 + (i % 7)).collect();
    let plm = PiecewiseLinearModel::build(&values, 25.0);
    let json = serde_json::to_string(&plm).expect("serialize");
    let back: PiecewiseLinearModel = serde_json::from_str(&json).expect("deserialize");
    for probe in (0..15_000).step_by(97) {
        assert_eq!(plm.predict(probe), back.predict(probe));
    }
}

#[test]
fn rmi_roundtrip_preserves_predictions() {
    let keys: Vec<u64> = (0..10_000u64).map(|i| i * 5).collect();
    let rmi = Rmi::build(&keys, RmiConfig::default());
    let json = serde_json::to_string(&rmi).expect("serialize");
    let back: Rmi = serde_json::from_str(&json).expect("deserialize");
    for probe in (0..50_000).step_by(503) {
        assert_eq!(rmi.predict(probe), back.predict(probe));
    }
}

#[test]
fn cost_model_roundtrip_preserves_predictions() {
    // A tiny calibration so the forest is real.
    let table = flood::data::datasets::uniform::generate(3_000, 3, 1);
    let queries: Vec<RangeQuery> = (0..6)
        .map(|i| RangeQuery::all(3).with_range(0, i * 100, i * 100 + (1 << 30)))
        .collect();
    let (weights, _) = calibrate(
        &table,
        &queries,
        CalibrationConfig {
            n_layouts: 2,
            max_cells_log2: 6,
            ..Default::default()
        },
    );
    let model = CostModel::new(weights);
    let json = serde_json::to_string(&model).expect("serialize");
    let back: CostModel = serde_json::from_str(&json).expect("deserialize");
    let stats = flood::core::cost::QueryStatistics {
        nc: 10.0,
        ns: 1_000.0,
        total_cells: 64.0,
        avg_cell_size: 47.0,
        median_cell_size: 47.0,
        p95_cell_size: 94.0,
        dims_filtered: 2.0,
        avg_visited_per_cell: 100.0,
        exact_points: 0.0,
        sort_filtered: true,
    };
    assert_eq!(model.predict(&stats).time_ns, back.predict(&stats).time_ns);
}
