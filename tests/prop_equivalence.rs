//! Property-based equivalence: on arbitrary small tables and arbitrary
//! queries, every index agrees with the brute-force oracle.

use flood::baselines::{Hyperoctree, KdTree, RStarTree, UbTree, ZOrderIndex};
use flood::core::{FloodBuilder, Layout};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, Table};
use proptest::prelude::*;

/// A random 3-dim table of up to 400 rows with small domains (to force
/// duplicate values and boundary collisions).
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..400, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let cols: Vec<Vec<u64>> = (0..3)
            .map(|d| {
                let domain = [16u64, 1_000, u64::MAX >> 20][d];
                (0..n).map(|_| next() % domain).collect()
            })
            .collect();
        Table::from_columns(cols)
    })
}

/// An arbitrary query over 3 dims: each dim unfiltered, an equality, or a
/// range (possibly empty of matches).
fn arb_query() -> impl Strategy<Value = RangeQuery> {
    let dim_bound = prop_oneof![
        Just(None),
        (0u64..1_000).prop_map(|v| Some((v, v))),
        (0u64..2_000, 0u64..2_000).prop_map(|(a, b)| Some((a.min(b), a.max(b)))),
    ];
    proptest::collection::vec(dim_bound, 3).prop_map(|bounds| {
        let mut q = RangeQuery::all(3);
        for (d, b) in bounds.into_iter().enumerate() {
            if let Some((lo, hi)) = b {
                q = q.with_range(d, lo, hi);
            }
        }
        q
    })
}

fn oracle(t: &Table, q: &RangeQuery) -> u64 {
    (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
}

fn count(idx: &dyn MultiDimIndex, q: &RangeQuery) -> u64 {
    let mut v = CountVisitor::default();
    idx.execute(q, None, &mut v);
    v.count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flood_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 3]))
            .build(&t);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn flood_histogram_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = FloodBuilder::new()
            .layout(Layout::histogram(vec![2, 0], vec![4, 4]))
            .build(&t);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn zorder_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = ZOrderIndex::build_with_page_size(&t, vec![0, 1, 2], 32);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn ubtree_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = UbTree::build_with_page_size(&t, vec![0, 1, 2], 32);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn octree_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = Hyperoctree::build_with_page_size(&t, vec![0, 1, 2], 16);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn kdtree_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = KdTree::build_with_page_size(&t, vec![0, 1, 2], 16);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }

    #[test]
    fn rtree_equals_oracle(t in arb_table(), q in arb_query()) {
        let idx = RStarTree::build_with_page_size(&t, vec![0, 1, 2], 16, 4);
        prop_assert_eq!(count(&idx, &q), oracle(&t, &q));
    }
}
