//! The master correctness oracle: every index in the workspace must return
//! exactly the same results as a full scan, on every dataset × workload
//! combination, for COUNT and SUM aggregations.

use flood::baselines::{
    ClusteredIndex, FullScan, GridFile, Hyperoctree, KdTree, RStarTree, UbTree, ZOrderIndex,
};
use flood::core::{FloodBuilder, Layout};
use flood::data::{DatasetKind, Workload, WorkloadKind};
use flood::store::{CountVisitor, MultiDimIndex, RangeQuery, SumVisitor, Table};

const N: usize = 8_000;
const QUERIES: usize = 25;

fn oracle_count(t: &Table, q: &RangeQuery) -> u64 {
    let full = FullScan::build(t);
    let mut v = CountVisitor::default();
    full.execute(q, None, &mut v);
    v.count
}

fn oracle_sum(t: &Table, q: &RangeQuery, agg: usize) -> u64 {
    let full = FullScan::build(t);
    let mut v = SumVisitor::default();
    full.execute(q, Some(agg), &mut v);
    v.sum
}

fn check_index(idx: &dyn MultiDimIndex, t: &Table, queries: &[RangeQuery], agg: usize) {
    for (i, q) in queries.iter().enumerate() {
        let mut count = CountVisitor::default();
        let stats = idx.execute(q, None, &mut count);
        assert_eq!(
            count.count,
            oracle_count(t, q),
            "{}: COUNT mismatch on query {i}",
            idx.name()
        );
        assert_eq!(
            stats.points_matched,
            count.count,
            "{}: stats mismatch on query {i}",
            idx.name()
        );
        let mut sum = SumVisitor::default();
        idx.execute(q, Some(agg), &mut sum);
        assert_eq!(
            sum.sum,
            oracle_sum(t, q, agg),
            "{}: SUM mismatch on query {i}",
            idx.name()
        );
    }
}

fn all_dims(t: &Table) -> Vec<usize> {
    (0..t.dims()).collect()
}

fn run_dataset(kind: DatasetKind, wkind: WorkloadKind) {
    let ds = kind.generate(N, 0xE0);
    let w = Workload::generate(wkind, &ds, QUERIES, 0.002, 0xE0);
    let queries: Vec<RangeQuery> = w.train.into_iter().chain(w.test).collect();
    let t = &ds.table;
    let agg = kind.agg_dim();
    let dims = all_dims(t);

    check_index(&ClusteredIndex::build(t, 0), t, &queries, agg);
    check_index(&ZOrderIndex::build(t, dims.clone()), t, &queries, agg);
    check_index(&UbTree::build(t, dims.clone()), t, &queries, agg);
    check_index(&Hyperoctree::build(t, dims.clone()), t, &queries, agg);
    check_index(&KdTree::build(t, dims.clone()), t, &queries, agg);
    check_index(&RStarTree::build(t, dims.clone()), t, &queries, agg);
    if let Ok(gf) = GridFile::build(t, dims.clone()) {
        check_index(&gf, t, &queries, agg);
    }
    // Flood with a hand layout over the first three dims.
    let flood = FloodBuilder::new()
        .layout(Layout::new(vec![0, 1, 2], vec![6, 5]))
        .build(t);
    check_index(&flood, t, &queries, agg);
    // Flood histogram variant.
    let hist = FloodBuilder::new()
        .layout(Layout::histogram(vec![0, 1], vec![8, 8]))
        .build(t);
    check_index(&hist, t, &queries, agg);
}

#[test]
fn sales_olap() {
    run_dataset(DatasetKind::Sales, WorkloadKind::OlapSkewed);
}

#[test]
fn tpch_olap() {
    run_dataset(DatasetKind::TpcH, WorkloadKind::OlapSkewed);
}

#[test]
fn osm_olap() {
    run_dataset(DatasetKind::Osm, WorkloadKind::OlapSkewed);
}

#[test]
fn perfmon_olap() {
    run_dataset(DatasetKind::Perfmon, WorkloadKind::OlapSkewed);
}

#[test]
fn tpch_point_lookups() {
    run_dataset(DatasetKind::TpcH, WorkloadKind::OltpTwoKeys);
}

#[test]
fn sales_mixed() {
    run_dataset(DatasetKind::Sales, WorkloadKind::Mixed);
}

#[test]
fn osm_many_dims() {
    run_dataset(DatasetKind::Osm, WorkloadKind::ManyDims);
}

#[test]
fn disjunction_union_on_flood_matches_per_branch_oracle() {
    use flood::store::execute_disjoint_union;
    let ds = DatasetKind::Sales.generate(N, 0xD15);
    let t = &ds.table;
    let flood = FloodBuilder::new()
        .layout(Layout::new(vec![0, 5, 3], vec![8, 8]))
        .build(t);
    // store IN {0, 3, 11} AND date in a window — §3's OR decomposition.
    let base = RangeQuery::all(t.dims()).with_range(5, 100, 400);
    let branches = flood::store::decompose_in_list(&base, 0, &[0, 3, 11]);
    let mut v = CountVisitor::default();
    execute_disjoint_union(&flood, &branches, None, &mut v).expect("disjoint branches");
    let want: u64 = branches.iter().map(|q| oracle_count(t, q)).sum();
    assert_eq!(v.count, want);
}
