//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the criterion surface its benches use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`] and [`black_box`].
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is spent, reporting the fastest batch (the
//! usual low-noise estimator) plus the mean ± standard deviation across
//! batches so run-to-run jitter is visible next to the headline number.
//! There is no further statistical analysis, HTML report, or baseline
//! comparison. When invoked with `--test` (as `cargo test --benches`
//! does), every benchmark body runs exactly once.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the work per iteration (accepted; only used for display).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &label, &mut f);
        self
    }

    /// Benchmark `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration declaration.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure in timed batches.
pub struct Bencher {
    test_mode: bool,
    /// Fastest observed per-iteration time, in nanoseconds.
    best_ns: f64,
    /// Per-iteration time of every measured batch, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, keeping the fastest batch's per-iteration time and the
    /// per-batch samples for the mean ± stddev report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.best_ns = 0.0;
            return;
        }
        // Warm up and size the batch so one batch is ~10% of the budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((MEASURE_BUDGET.as_secs_f64() / 10.0 / per_iter) as u64).max(1);

        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// Mean and (population) standard deviation of per-batch samples.
fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, label: &str, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        best_ns: f64::INFINITY,
        samples: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok");
    } else if b.best_ns.is_finite() {
        let (mean, sd) = mean_stddev(&b.samples);
        println!(
            "{label:<48} time: {:<16} mean: {} ± {}",
            format_ns(b.best_ns),
            format_ns(mean),
            format_ns(sd),
        );
    } else {
        println!("{label:<48} (no iterations recorded)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
