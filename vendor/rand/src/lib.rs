//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the exact surface it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! The generator is SplitMix64 — deterministic for a given seed, statistically
//! solid for test/data-generation purposes, but **not** the upstream StdRng
//! (ChaCha12): streams differ from real `rand` for the same seed, and nothing
//! here is cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Return the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map a raw word to a uniform `f64` in `[0, 1)` (53 mantissa bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from — the subset of `rand`'s `SampleRange`
/// the workspace needs.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2⁻⁶⁴·span, irrelevant
/// for test and data-generation workloads.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full u64 domain
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    ///
    /// Unlike upstream `rand`, this is not ChaCha12 — only determinism per
    /// seed is promised, not stream compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// The result of [`sample`]: a set of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a plain `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly.
        /// Panics if `amount > length`.
        ///
        /// Sparse draws use rejection sampling so the cost is `O(amount)`,
        /// not `O(length)` — `length` can be an entire table while `amount`
        /// is a few thousand. Dense draws fall back to partial Fisher–Yates.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            if amount < length / 8 {
                let mut seen = std::collections::HashSet::with_capacity(amount);
                let mut out = Vec::with_capacity(amount);
                while out.len() < amount {
                    let idx = rng.gen_range(0..length);
                    if seen.insert(idx) {
                        out.push(idx);
                    }
                }
                return IndexVec(out);
            }
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}
