//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG property tests draw cases from.
pub type TestRng = StdRng;

/// An explicit test-case failure (`return Err(...)` from a body).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A seed derived from the test name (FNV-1a), so every test function walks
/// its own reproducible stream.
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
