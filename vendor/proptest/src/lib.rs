//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the proptest surface its property tests use: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, [`strategy::Strategy`] with
//! `prop_map`/`boxed`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], [`strategy::Just`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Semantic differences from upstream: cases are generated from a fixed
//! deterministic seed (fully reproducible run-to-run), and failing inputs are
//! **not shrunk** — the panic message carries the failing values instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn` runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // As upstream: the body runs in a Result-returning closure so
                // it may `return Ok(())` to skip a case early.
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {__case} failed: {__e}");
                }
            }
        }
    )*};
}

/// Like `assert!`, inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Pick uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
