//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (e.g. [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
