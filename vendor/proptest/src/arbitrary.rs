//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform over a wide magnitude range.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 64) as i32 - 32;
        (mantissa - 0.5) * (2f64).powi(exp)
    }
}
