//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the serde surface it actually uses: `#[derive(Serialize, Deserialize)]` on
//! structs and (externally tagged) enums, round-tripped through JSON by the
//! sibling vendored `serde_json`.
//!
//! Instead of upstream serde's visitor architecture, this subset serializes
//! through an owned [`Value`] tree — dramatically simpler, and sufficient
//! because every `Serialize`/`Deserialize` impl in the workspace comes from
//! the derive in the sibling `serde_derive` crate, which targets exactly this
//! trait shape. The JSON text produced matches what upstream
//! `serde_json::to_string` emits for the same types (externally tagged enums,
//! newtype transparency), so persisted artifacts stay compatible.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; never routed through `f64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the pairs if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Mirror of upstream `serde::de` for error paths.
pub mod de {
    pub use crate::Error;
}

/// Mirror of upstream `serde::ser` for error paths.
pub mod ser {
    pub use crate::Error;
}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Look up a struct field in a map, treating a missing field as `null` (so
/// `Option` fields tolerate omission, as with upstream serde).
///
/// Used by derive-generated code; not part of the public API surface.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(
    m: &[(String, Value)],
    field: &str,
    ty: &str,
) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{field}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{field}` in {ty}"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("value {n} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Upstream serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::custom(format!("expected tuple, got {v:?}")))?;
                if items.len() != ARITY {
                    return Err(Error::custom(format!(
                        "expected tuple of {ARITY}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
