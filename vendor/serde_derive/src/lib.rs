//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Hand-rolled on top of `proc_macro` alone (the environment has no `syn` /
//! `quote`). Supports exactly the shapes the workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde's default representation);
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of a field list.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — field count.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed `struct` or `enum` definition.
enum Parsed {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Parsed) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! literal"),
    }
}

// ---------------------------------------------------------------- parsing --

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut toks = input.into_iter().peekable();

    // Skip attributes and visibility until `struct` / `enum`.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => {
                return Err(format!("serde derive: unexpected token `{other}`"));
            }
            None => return Err("serde derive: no struct/enum found".into()),
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };

    match toks.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde derive: generic type `{name}` is not supported by the vendored subset"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Parsed::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(g.stream())?),
                })
            } else {
                Ok(Parsed::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde derive: malformed enum".into());
            }
            Ok(Parsed::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Parsed::Struct {
            name,
            fields: Fields::Unit,
        }),
        other => Err(format!(
            "serde derive: unexpected token after `{name}`: {other:?}"
        )),
    }
}

/// Parse `attr* vis? ident : Type (, ...)*` — names only; types are never
/// inspected (the generated code lets inference pick the right impl).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            None => return Ok(names),
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => return Err(format!("serde derive: expected field name, got `{other}`")),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:`, got {other:?}")),
        }
        // Consume the type: tokens until a comma outside angle brackets.
        // Angle brackets are bare puncts (not groups), so track their depth.
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                None => return Ok(names),
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
}

/// Count the fields of a tuple struct / tuple variant by top-level commas.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0i32;
    let mut saw_tokens = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1; // no trailing comma after the last field
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes (e.g. doc comments, `#[default]`).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde derive: expected variant name, got `{other}`"
                ))
            }
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "serde derive: expected `,` between variants, got `{other}` \
                     (explicit discriminants are not supported)"
                ))
            }
        }
    }
}

// ---------------------------------------------------------------- codegen --

fn gen_serialize(parsed: &Parsed) -> String {
    match parsed {
        Parsed::Struct { name, fields } => {
            let body = serialize_fields_expr(fields, &FieldAccess::SelfDot);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(vec![{}]))]),\n",
                            fs.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// How serialized fields are reached in the generated expression.
enum FieldAccess {
    /// `&self.field` / `&self.0`.
    SelfDot,
}

fn serialize_fields_expr(fields: &Fields, _access: &FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let pairs: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", pairs.join(", "))
        }
    }
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let body = match parsed {
        Parsed::Struct { name, fields } => match fields {
            Fields::Unit => format!("let _ = v; Ok({name})"),
            Fields::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                format!(
                    "let __seq = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         format!(\"expected sequence for {name}, got {{v:?}}\")))?;\n\
                     if __seq.len() != {n} {{\n\
                         return Err(::serde::Error::custom(format!(\
                             \"expected {n} elements for {name}, got {{}}\", __seq.len())));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| format!("{f}: ::serde::__get_field(__m, {f:?}, {name:?})?"))
                    .collect();
                format!(
                    "let __m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                         format!(\"expected map for {name}, got {{v:?}}\")))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        },
        Parsed::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected sequence payload for {name}::{vn}\"))?;\n\
                                 if __seq.len() != {n} {{\n\
                                     return Err(::serde::Error::custom(format!(\
                                         \"expected {n} elements for {name}::{vn}, got {{}}\", __seq.len())));\n\
                                 }}\n\
                                 return Ok({name}::{vn}({}));\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::__get_field(__mm, {f:?}, \"{name}::{vn}\")?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __mm = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected map payload for {name}::{vn}\"))?;\n\
                                 return Ok({name}::{vn} {{ {} }});\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => {{\n\
                         match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                         Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{__s}}`\")))\n\
                     }}\n\
                     ::serde::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                         Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{__tag}}`\")))\n\
                     }}\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"expected {name}, got {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    let name = match parsed {
        Parsed::Struct { name, .. } | Parsed::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
