//! Offline, API-compatible subset of `serde_json`: [`to_string`] /
//! [`to_string_pretty`] / [`from_str`] over the vendored serde [`Value`]
//! model. Emits the same JSON shape upstream serde_json produces for derived
//! types (externally tagged enums, newtype transparency, `null` for
//! non-finite floats); `u64` values round-trip exactly (never via `f64`).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writing --

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Map(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null"); // upstream serde_json's behaviour
        return;
    }
    // `{}` on f64 is the shortest representation that round-trips, but it
    // drops the ".0" on integral values, which would re-parse as an integer;
    // keep such values recognisably floating-point.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new(format!("invalid escape at byte {}", self.pos))
                            })?);
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::new(format!("bad \\u escape `{hex}`")))?;
        self.pos = end;
        Ok(v)
    }
}
