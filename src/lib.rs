//! Facade crate: re-exports the whole Flood workspace under one name.
#![doc = include_str!("../README.md")]

pub use flood_baselines as baselines;
pub use flood_core as core;
pub use flood_data as data;
pub use flood_exec as exec;
pub use flood_learned as learned;
pub use flood_obs as obs;
pub use flood_serve as serve;
pub use flood_store as store;
