//! # flood-bench
//!
//! The benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§7). Run experiments through the `repro` binary:
//!
//! ```text
//! cargo run --release -p flood-bench --bin repro -- fig7 --scale 200000
//! ```
//!
//! Modules map one-to-one onto experiments; see DESIGN.md §4 for the index.

pub mod experiments;
pub mod harness;
pub mod phases;
pub mod report;
