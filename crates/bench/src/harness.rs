//! Shared experiment plumbing: building every index over a dataset, timing
//! workloads, and printing paper-style tables.

use crate::phases::{progress, record_phase, time_phase};
use flood_baselines::{
    ClusteredIndex, FullScan, GridFile, Hyperoctree, KdTree, RStarTree, UbTree, ZOrderIndex,
};
use flood_core::cost::calibration::{calibrate_cached, CalibrationConfig};
use flood_core::{CostModel, FloodBuilder, FloodIndex, LayoutOptimizer, OptimizerConfig};
use flood_data::workloads::{DimFilter, QueryBuilder, QueryTemplate};
use flood_exec::QueryExecutor;
use flood_obs::{metrics::global, Histogram, HistogramSummary};
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, ScanStats, ScanStatsMetrics, Table};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A boxed index as the harness builds them: `Sync` so workloads can run
/// through the parallel executor.
pub type DynIndex = Box<dyn MultiDimIndex + Sync>;

/// Worker count [`run_workload`] executes with (the repro `--threads`
/// knob). 1 = the serial path, untouched.
static EXEC_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the worker count every subsequent [`run_workload`] uses.
pub fn set_exec_threads(n: usize) {
    EXEC_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Worker count [`run_workload`] currently uses.
pub fn exec_threads() -> usize {
    EXEC_THREADS.load(Ordering::Relaxed)
}

/// The process-wide calibrated cost model (§4.1.1: "calibration [is] a
/// one-time cost"; Table 3: the weights transfer across datasets, so one
/// synthetic calibration serves every experiment).
static CALIBRATED: OnceLock<CostModel> = OnceLock::new();

/// Calibrate random-forest weight models once per process, on synthetic
/// data, and reuse them for every layout search.
///
/// Debug builds (the test suite) calibrate on a much smaller setup: tests
/// only need a *functioning* model, and unoptimized measurement loops would
/// otherwise dominate `cargo test` wall-clock. Release runs — the `repro`
/// binary, criterion benches — always use the full calibration.
pub fn calibrated_cost_model() -> &'static CostModel {
    let (cal_rows, cal_queries, cal_cfg) = if cfg!(debug_assertions) {
        (
            8_000,
            12,
            CalibrationConfig {
                n_layouts: 3,
                max_cells_log2: 10,
                reps: 1,
                ..Default::default()
            },
        )
    } else {
        (
            50_000,
            30,
            CalibrationConfig {
                n_layouts: 8,
                max_cells_log2: 13,
                reps: 2,
                ..Default::default()
            },
        )
    };
    CALIBRATED.get_or_init(|| {
        time_phase("calibration", || {
            let table = flood_data::datasets::uniform::generate(cal_rows, 4, 0xCA11B);
            // A mixed workload covering 1–4 filtered dims at varied widths.
            let templates: Vec<QueryTemplate> = (1..=4usize)
                .flat_map(|k| {
                    [0.001f64, 0.01, 0.1].into_iter().map(move |total: f64| {
                        let per_dim = total.powf(1.0 / k as f64);
                        QueryTemplate::new(
                            &format!("k{k}s{total}"),
                            (0..k).map(|d| DimFilter::range(d, per_dim)).collect(),
                        )
                    })
                })
                .collect();
            let weights = vec![1.0; templates.len()];
            let mut qb = QueryBuilder::new(&table, 0xCA11B);
            let w = qb.workload("calibration", &templates, &weights, cal_queries, None);
            let (models, report) = calibrate_cached(&table, &w.train, cal_cfg);
            progress(&format!(
                "calibrated cost model: {} wp / {} wr / {} ws examples",
                report.examples.0, report.examples.1, report.examples.2
            ));
            CostModel::new(models)
        })
    })
}

/// Result of timing one index over one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Index display name.
    pub index: String,
    /// Average query time.
    pub avg_query: Duration,
    /// Aggregated stats over the whole workload.
    pub stats: ScanStats,
    /// Index structure size in bytes.
    pub index_size: usize,
    /// Build time.
    pub build_time: Duration,
    /// Number of queries executed.
    pub queries: usize,
}

impl RunResult {
    /// Scan overhead (Table 2's SO).
    pub fn scan_overhead(&self) -> f64 {
        self.stats.scan_overhead().unwrap_or(f64::NAN)
    }
}

/// Latency percentiles derived from the shared `flood-obs` histogram —
/// the one percentile implementation every experiment reports through
/// (replacing per-experiment sort-and-index percentile math). Quantiles
/// are within [`Histogram::RELATIVE_ERROR`] of the exact sorted-sample
/// answer; the cross-check test below pins the agreement on a fixed
/// sample.
pub fn percentiles_from_ns(ns: &[u64]) -> HistogramSummary {
    let h = Histogram::new();
    for &v in ns {
        h.record(v);
    }
    h.summary()
}

/// Per-dimension selectivity ordering for baseline tuning: most selective
/// (smallest average fraction of rows matched) first, unfiltered dims last.
pub fn dims_by_selectivity(table: &Table, queries: &[RangeQuery]) -> Vec<usize> {
    let n = table.len().max(1);
    let sample_step = (n / 2_000).max(1);
    let mut avg = vec![(1.0f64, false); table.dims()];
    for (d, slot) in avg.iter_mut().enumerate() {
        let mut total = 0.0;
        let mut cnt = 0usize;
        for q in queries {
            if let Some((lo, hi)) = q.bound(d) {
                let mut hits = 0usize;
                let mut seen = 0usize;
                let mut r = 0;
                while r < n {
                    let v = table.value(r, d);
                    if v >= lo && v <= hi {
                        hits += 1;
                    }
                    seen += 1;
                    r += sample_step;
                }
                total += hits as f64 / seen.max(1) as f64;
                cnt += 1;
            }
        }
        if cnt > 0 {
            *slot = (total / cnt as f64, true);
        }
    }
    let mut dims: Vec<usize> = (0..table.dims()).collect();
    dims.sort_by(|&a, &b| {
        // Filtered dims first, then by ascending selectivity fraction.
        avg[b]
            .1
            .cmp(&avg[a].1)
            .then(avg[a].0.partial_cmp(&avg[b].0).expect("finite"))
    });
    dims
}

/// Execute `queries` against `index`, returning timing + stats.
///
/// With [`exec_threads`] > 1 the batch is scheduled across a `flood-exec`
/// pool (inter-query parallelism — available to every index); at 1 the
/// serial loop is untouched.
pub fn run_workload(
    index: &(dyn MultiDimIndex + Sync),
    queries: &[RangeQuery],
    agg_dim: Option<usize>,
) -> (Duration, ScanStats) {
    let threads = exec_threads();
    let mut stats = ScanStats::default();
    let start = Instant::now();
    if threads > 1 {
        let exec = QueryExecutor::with_threads(threads);
        for (_, s) in exec.execute_batch::<CountVisitor, _>(index, queries, agg_dim) {
            stats.merge(&s);
        }
    } else {
        for q in queries {
            let mut v = CountVisitor::default();
            let s = index.execute(q, agg_dim, &mut v);
            stats.merge(&s);
        }
    }
    let elapsed = start.elapsed();
    record_phase("query-exec", elapsed);
    // Bridge the workload's aggregate counters into the process-global
    // registry, so `repro --metrics` has scan-level content for *every*
    // experiment, not just the server-backed ones. Once per workload, not
    // per query — the hot loop above is untouched.
    ScanStatsMetrics::register(global(), "scan").record(&stats);
    global()
        .counter("bench", "queries")
        .add(queries.len() as u64);
    global()
        .histogram("bench", "workload_ns")
        .record(elapsed.as_nanos() as u64);
    (elapsed / queries.len().max(1) as u32, stats)
}

/// Which baseline indexes to build (the Grid File and R\*-tree are skippable
/// the way the paper omits them when they blow up).
#[derive(Debug, Clone, Copy)]
pub struct IndexSet {
    /// Include the Grid File (may fail on skewed data).
    pub grid_file: bool,
    /// Include the R\*-tree (paper omits it on larger datasets).
    pub rtree: bool,
}

impl Default for IndexSet {
    fn default() -> Self {
        IndexSet {
            grid_file: true,
            rtree: true,
        }
    }
}

/// Build every baseline + learned Flood, run the workload on each, and
/// return one row per index (Fig 7's data).
pub fn run_all_indexes(
    table: &Table,
    train: &[RangeQuery],
    test: &[RangeQuery],
    agg_dim: Option<usize>,
    set: IndexSet,
    optimizer_cfg: OptimizerConfig,
) -> Vec<RunResult> {
    let dims = dims_by_selectivity(table, train);
    let filtered_dims: Vec<usize> = dims
        .iter()
        .copied()
        .filter(|&d| train.iter().any(|q| q.filters(d)))
        .collect();
    let index_dims = if filtered_dims.is_empty() {
        dims.clone()
    } else {
        filtered_dims
    };
    let mut out = Vec::new();

    let time = |f: &mut dyn FnMut() -> DynIndex| -> (DynIndex, Duration) {
        let t0 = Instant::now();
        let idx = f();
        let dt = t0.elapsed();
        record_phase("index-build", dt);
        progress(&format!("built {} in {:.2}s", idx.name(), dt.as_secs_f64()));
        (idx, dt)
    };

    // Full scan.
    let (idx, build) = time(&mut || Box::new(FullScan::build(table)));
    out.push(measure(&*idx, test, agg_dim, build));

    // Clustered on the most selective dimension.
    let key = index_dims[0];
    let (idx, build) = time(&mut || Box::new(ClusteredIndex::build(table, key)));
    out.push(measure(&*idx, test, agg_dim, build));

    // R*-tree.
    if set.rtree {
        let d = index_dims.clone();
        let (idx, build) = time(&mut || Box::new(RStarTree::build(table, d.clone())));
        out.push(measure(&*idx, test, agg_dim, build));
    }

    // Z-order.
    let d = index_dims.clone();
    let (idx, build) = time(&mut || Box::new(ZOrderIndex::build(table, d.clone())));
    out.push(measure(&*idx, test, agg_dim, build));

    // UB-tree.
    let d = index_dims.clone();
    let (idx, build) = time(&mut || Box::new(UbTree::build(table, d.clone())));
    out.push(measure(&*idx, test, agg_dim, build));

    // Hyperoctree.
    let d = index_dims.clone();
    let (idx, build) = time(&mut || Box::new(Hyperoctree::build(table, d.clone())));
    out.push(measure(&*idx, test, agg_dim, build));

    // K-d tree.
    let d = index_dims.clone();
    let (idx, build) = time(&mut || Box::new(KdTree::build(table, d.clone())));
    out.push(measure(&*idx, test, agg_dim, build));

    // Grid file (skippable: directory blowup on skew).
    if set.grid_file {
        let t0 = Instant::now();
        match GridFile::build(table, index_dims.clone()) {
            Ok(gf) => {
                let build = t0.elapsed();
                record_phase("index-build", build);
                out.push(measure(&gf, test, agg_dim, build));
            }
            Err(e) => eprintln!("  (grid file skipped: {e})"),
        }
    }

    // Flood, layout learned on the train split.
    let t0 = Instant::now();
    let flood = learn_flood(table, train, optimizer_cfg);
    let build = t0.elapsed();
    out.push(measure(&flood, test, agg_dim, build));

    out
}

/// Learn a layout and build Flood (the paper's automatic path): calibrated
/// random-forest cost model + Algorithm 1.
pub fn learn_flood(table: &Table, train: &[RangeQuery], cfg: OptimizerConfig) -> FloodIndex {
    let optimizer = LayoutOptimizer::with_config(calibrated_cost_model().clone(), cfg);
    let learned = time_phase("layout-opt", || optimizer.optimize(table, train));
    progress(&format!(
        "learned layout {} ({} cells, {} cost evals, {} memo hits, {}/{} dim recounts/reuses) in {:.2}s",
        learned.layout,
        learned.layout.num_cells(),
        learned.cost_evals,
        learned.cache_hits,
        learned.dim_recounts,
        learned.dim_reuses,
        learned.learn_time.as_secs_f64()
    ));
    time_phase("index-build", || {
        FloodBuilder::new().layout(learned.layout).build(table)
    })
}

/// Time a single index over the test split.
pub fn measure(
    index: &(dyn MultiDimIndex + Sync),
    test: &[RangeQuery],
    agg_dim: Option<usize>,
    build_time: Duration,
) -> RunResult {
    let (avg_query, stats) = run_workload(index, test, agg_dim);
    RunResult {
        index: index.name().to_string(),
        avg_query,
        stats,
        index_size: index.index_size_bytes(),
        build_time,
        queries: test.len(),
    }
}

/// Format a duration in the paper's milliseconds-with-3-sig-figs style.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

/// Format bytes human-readably (Fig 8 axis style).
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.1}GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}kB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Print a run-result table.
pub fn print_results(title: &str, results: &[RunResult]) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>12}",
        "index", "avg query(ms)", "SO", "index size", "build(s)"
    );
    for r in results {
        println!(
            "{:<14} {:>12} {:>10.2} {:>12} {:>12.2}",
            r.index,
            fmt_ms(r.avg_query),
            r.scan_overhead(),
            fmt_bytes(r.index_size),
            r.build_time.as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_ordering_prefers_filtered_dims() {
        let n = 5_000u64;
        let t = Table::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|i| i % 100).collect(),
            (0..n).map(|i| i % 7).collect(),
        ]);
        let qs = vec![
            RangeQuery::all(3).with_range(0, 0, 49), // ~1%
            RangeQuery::all(3).with_range(1, 0, 49), // ~50%
        ];
        let dims = dims_by_selectivity(&t, &qs);
        assert_eq!(dims[0], 0, "most selective first: {dims:?}");
        assert_eq!(dims[1], 1);
        assert_eq!(dims[2], 2, "unfiltered last");
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0kB");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
    }

    /// The histogram-derived percentiles agree with the exact
    /// sort-and-index computation they replaced, on a fixed latency-shaped
    /// sample, within the histogram's documented error bound.
    #[test]
    fn histogram_percentiles_agree_with_exact_sort() {
        // Deterministic sample: a tight mode around 25µs, a slower mode
        // around 300µs, and a handful of multi-ms outliers.
        let mut ns: Vec<u64> = Vec::new();
        let mut x = 0x5EEDu64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ns.push(25_000 + x % 8_000);
        }
        for _ in 0..120 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ns.push(300_000 + x % 60_000);
        }
        for i in 0..8u64 {
            ns.push(2_000_000 + i * 700_000);
        }
        let got = percentiles_from_ns(&ns);
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        let exact = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        assert_eq!(got.count as usize, ns.len());
        for (q, v) in [
            (0.50, got.p50),
            (0.90, got.p90),
            (0.99, got.p99),
            (0.999, got.p999),
        ] {
            let want = exact(q);
            let err = (v as f64 - want as f64).abs() / want as f64;
            assert!(
                err <= Histogram::RELATIVE_ERROR,
                "p{q}: histogram {v} vs exact {want} (err {err})"
            );
        }
        assert_eq!(got.min, sorted[0]);
        assert_eq!(got.max, *sorted.last().unwrap());
    }

    /// Every workload run leaves its aggregate counters in the
    /// process-global registry (what `repro --metrics` exposes).
    #[test]
    fn run_workload_bridges_into_global_registry() {
        let n = 2_000u64;
        let t = Table::from_columns(vec![(0..n).collect(), (0..n).map(|i| i % 40).collect()]);
        let idx = FullScan::build(&t);
        let qs = vec![
            RangeQuery::all(2).with_range(0, 0, 99),
            RangeQuery::all(2).with_range(1, 5, 10),
        ];
        let before = global().snapshot();
        let before_q = before.counter("bench", "queries").unwrap_or(0);
        let before_scanned = before.counter("scan", "points_scanned").unwrap_or(0);
        let (_, stats) = run_workload(&idx, &qs, None);
        let after = global().snapshot();
        assert_eq!(after.counter("bench", "queries"), Some(before_q + 2));
        assert_eq!(
            after.counter("scan", "points_scanned"),
            Some(before_scanned + stats.points_scanned)
        );
        assert!(after.histogram("bench", "workload_ns").unwrap().count >= 1);
    }
}
