//! Machine-readable perf records: the `repro --json <path>` trajectory CI
//! uploads on every push.
//!
//! Experiments stay printf-shaped for humans; alongside that, any
//! experiment can push named [`Metric`]s into a process-global sink
//! ([`metric`]), and the `repro` binary snapshots the sink plus the phase
//! registry after each experiment into an [`ExperimentRecord`]. The final
//! [`PerfReport`] is stable JSON (schema versioned, flat metric names like
//! `drift.p1.frozen_ms`), so a CI artifact diff across commits is a perf
//! regression signal without re-parsing human tables.

use crate::phases;
use serde::Serialize;
use std::sync::Mutex;

/// Bump when the JSON shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One named measurement an experiment reported.
#[derive(Debug, Clone, Serialize)]
pub struct Metric {
    /// Dotted, stable name (`optcost.d4.speedup`, `drift.p2.shared_ms`).
    pub name: String,
    /// The measurement.
    pub value: f64,
    /// Unit tag (`ms`, `x`, `count`).
    pub unit: String,
}

/// Phase-registry snapshot entry (mirrors `phases::phase_totals`).
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTime {
    /// Phase name (`data-gen`, `layout-opt`, …).
    pub phase: String,
    /// Total wall-clock attributed to the phase, seconds.
    pub total_s: f64,
    /// Times the phase was entered.
    pub calls: usize,
}

/// One experiment's record: wall-clock, where the time went, and its key
/// metrics.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRecord {
    /// Experiment name as the `repro` CLI knows it.
    pub name: String,
    /// End-to-end wall-clock, seconds.
    pub wall_s: f64,
    /// Per-phase timing snapshot.
    pub phases: Vec<PhaseTime>,
    /// Metrics the experiment pushed via [`metric`].
    pub metrics: Vec<Metric>,
}

/// The full perf trajectory of one `repro` invocation.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `--scale` the run used.
    pub scale: f64,
    /// `--queries` the run used.
    pub queries: usize,
    /// `--seed` the run used.
    pub seed: u64,
    /// `--threads` the run used.
    pub threads: usize,
    /// Whether `--full` sweeps ran.
    pub full: bool,
    /// One record per experiment, in execution order.
    pub experiments: Vec<ExperimentRecord>,
}

/// Process-global metric sink (the repro binary runs experiments one at a
/// time; tests that share the process drain around their own runs).
static METRICS: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

/// Report a measurement under a stable dotted name.
pub fn metric(name: &str, value: f64, unit: &str) {
    METRICS.lock().expect("metric sink lock").push(Metric {
        name: name.to_string(),
        value,
        unit: unit.to_string(),
    });
}

/// Drain every metric reported since the last call.
pub fn take_metrics() -> Vec<Metric> {
    std::mem::take(&mut *METRICS.lock().expect("metric sink lock"))
}

/// Flatten a `flood-obs` metrics snapshot into the sink under `prefix`,
/// so a server's full counter set rides along in the `--json` record
/// (`<prefix>.<subsystem>.<name>`; histograms expand to `_count`/`_p50`/
/// `_p99`). This is how `repro serve` / `repro drift` embed their runtime
/// telemetry in the CI perf-trajectory artifact.
pub fn embed_metrics_snapshot(prefix: &str, snap: &flood_obs::MetricsSnapshot) {
    for (subsystem, name, value) in &snap.values {
        let base = format!("{prefix}.{subsystem}.{name}");
        match value {
            flood_obs::MetricValue::Counter(v) => metric(&base, *v as f64, "count"),
            flood_obs::MetricValue::Gauge(v) => metric(&base, *v as f64, "count"),
            flood_obs::MetricValue::Histogram(h) => {
                metric(&format!("{base}_count"), h.count as f64, "count");
                metric(&format!("{base}_p50"), h.p50 as f64, "ns");
                metric(&format!("{base}_p99"), h.p99 as f64, "ns");
            }
        }
    }
}

/// Snapshot the phase registry plus the metric sink into one experiment's
/// record (draining the sink).
pub fn experiment_record(name: &str, wall_s: f64) -> ExperimentRecord {
    ExperimentRecord {
        name: name.to_string(),
        wall_s,
        phases: phases::phase_totals()
            .into_iter()
            .map(|(phase, total, calls)| PhaseTime {
                phase,
                total_s: total.as_secs_f64(),
                calls,
            })
            .collect(),
        metrics: take_metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global and other tests in this crate push real
    // metrics concurrently, so assert only on this test's uniquely-prefixed
    // entries, never on global emptiness.
    #[test]
    fn sink_drains_and_records_assemble() {
        metric("test-sink.alpha", 1.5, "ms");
        metric("test-sink.beta", 2.0, "x");
        let rec = experiment_record("unit", 0.25);
        assert_eq!(rec.name, "unit");
        let names: Vec<&str> = rec.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"test-sink.alpha") && names.contains(&"test-sink.beta"));
        // The record drained them: a second record sees neither.
        let again = experiment_record("unit-again", 0.1);
        assert!(
            again
                .metrics
                .iter()
                .all(|m| !m.name.starts_with("test-sink.")),
            "already-drained metrics must not reappear: {:?}",
            again.metrics
        );
    }

    #[test]
    fn report_serializes_to_stable_json() {
        let report = PerfReport {
            schema_version: SCHEMA_VERSION,
            scale: 0.25,
            queries: 30,
            seed: 42,
            threads: 2,
            full: false,
            experiments: vec![ExperimentRecord {
                name: "drift".into(),
                wall_s: 1.25,
                phases: vec![PhaseTime {
                    phase: "query-exec".into(),
                    total_s: 0.5,
                    calls: 4,
                }],
                metrics: vec![Metric {
                    name: "drift.p1.frozen_ms".into(),
                    value: 3.5,
                    unit: "ms".into(),
                }],
            }],
        };
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        for needle in [
            "\"schema_version\": 1",
            "\"drift.p1.frozen_ms\"",
            "\"query-exec\"",
            "\"wall_s\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
