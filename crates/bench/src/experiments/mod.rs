//! One module per paper experiment; DESIGN.md §4 maps figures/tables to
//! modules. Every experiment prints the same rows/series its figure or
//! table reports and is driven through the `repro` binary.

pub mod colstore;
pub mod costmodel;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lookup;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;

use flood_core::OptimizerConfig;
use flood_data::{Dataset, DatasetKind, Workload, WorkloadKind};

/// Shared experiment configuration, parsed from the `repro` command line.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Multiplier on default dataset sizes.
    pub scale: f64,
    /// Queries per workload split.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Run the full paper-sized sweeps (slower).
    pub full: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            queries: 100,
            seed: 42,
            full: false,
        }
    }
}

impl ExpConfig {
    /// Default row counts per dataset (×`scale`). Ratios follow Table 1
    /// (30M : 300M : 105M : 230M), shrunk to laptop scale.
    pub fn rows(&self, kind: DatasetKind) -> usize {
        let base = match kind {
            DatasetKind::Sales => 60_000.0,
            DatasetKind::TpcH => 400_000.0,
            DatasetKind::Osm => 160_000.0,
            DatasetKind::Perfmon => 300_000.0,
        };
        (base * self.scale) as usize
    }

    /// Layout-optimizer configuration sized for the experiment scale.
    /// Sampling follows Fig 15/16: ~1–2% of the data and a few dozen
    /// queries lose nothing.
    pub fn optimizer(&self, n_rows: usize) -> OptimizerConfig {
        OptimizerConfig {
            data_sample: (n_rows / 50).clamp(1_000, 8_000),
            query_sample: self.queries.min(30),
            gd_steps: 16,
            max_total_cells: 1 << 16,
            init_points_per_cell: 256,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The paper's default target selectivity (0.1%).
    pub fn target_selectivity(&self) -> f64 {
        0.001
    }

    /// Generate a dataset and its Fig 7 (skewed OLAP) workload.
    pub fn dataset_and_workload(&self, kind: DatasetKind) -> (Dataset, Workload) {
        let ds = kind.generate(self.rows(kind), self.seed);
        let w = Workload::generate(
            WorkloadKind::OlapSkewed,
            &ds,
            self.queries,
            self.target_selectivity(),
            self.seed,
        );
        (ds, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_rows() {
        let small = ExpConfig {
            scale: 0.1,
            ..Default::default()
        };
        let big = ExpConfig {
            scale: 2.0,
            ..Default::default()
        };
        for kind in DatasetKind::ALL {
            assert!(small.rows(kind) < big.rows(kind));
        }
        // Table 1 ratios: tpch is the largest, sales the smallest.
        let c = ExpConfig::default();
        assert!(c.rows(DatasetKind::TpcH) > c.rows(DatasetKind::Perfmon));
        assert!(c.rows(DatasetKind::Sales) < c.rows(DatasetKind::Osm));
    }

    #[test]
    fn dataset_and_workload_shapes() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 10,
            ..Default::default()
        };
        let (ds, w) = cfg.dataset_and_workload(DatasetKind::Sales);
        assert_eq!(ds.table.len(), cfg.rows(DatasetKind::Sales));
        assert_eq!(w.train.len(), 10);
        assert_eq!(w.test.len(), 10);
    }
}
