//! One module per paper experiment; DESIGN.md §4 maps figures/tables to
//! modules. Every experiment prints the same rows/series its figure or
//! table reports and is driven through the `repro` binary.

pub mod colstore;
pub mod correlate;
pub mod costmodel;
pub mod drift;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lookup;
pub mod obs;
pub mod optcost;
pub mod scanspeed;
pub mod serve;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;
pub mod threads;
pub mod tiered;

use flood_core::OptimizerConfig;
use flood_data::{Dataset, DatasetKind, Workload, WorkloadKind};

/// Shared experiment configuration, parsed from the `repro` command line.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Multiplier on default dataset sizes.
    pub scale: f64,
    /// Queries per workload split.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Run the full paper-sized sweeps (slower).
    pub full: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            queries: 100,
            seed: 42,
            full: false,
        }
    }
}

impl ExpConfig {
    /// Default row counts per dataset (×`scale`). Ratios follow Table 1
    /// (30M : 300M : 105M : 230M), shrunk so every experiment finishes in
    /// seconds; `--full` doubles them (and widens each experiment's sweep
    /// grids) for paper-shaped runs.
    pub fn rows(&self, kind: DatasetKind) -> usize {
        let base = match kind {
            DatasetKind::Sales => 30_000.0,
            DatasetKind::TpcH => 200_000.0,
            DatasetKind::Osm => 80_000.0,
            DatasetKind::Perfmon => 150_000.0,
        };
        let full_factor = if self.full { 2.0 } else { 1.0 };
        (base * full_factor * self.scale) as usize
    }

    /// Layout-optimizer configuration sized for the experiment scale.
    /// Sampling follows Fig 15/16: ~1–2% of the data and a few dozen
    /// queries lose nothing, so the default budget is lean and `--full`
    /// restores the roomier search.
    pub fn optimizer(&self, n_rows: usize) -> OptimizerConfig {
        let (max_sample, max_queries, gd_steps) = if self.full {
            (8_000, 30, 16)
        } else {
            (4_000, 20, 12)
        };
        OptimizerConfig {
            data_sample: (n_rows / 50).clamp(1_000, max_sample),
            query_sample: self.queries.min(max_queries),
            gd_steps,
            max_total_cells: 1 << 16,
            init_points_per_cell: 256,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The paper's default target selectivity (0.1%).
    pub fn target_selectivity(&self) -> f64 {
        0.001
    }

    /// Generate a dataset and its Fig 7 (skewed OLAP) workload.
    pub fn dataset_and_workload(&self, kind: DatasetKind) -> (Dataset, Workload) {
        crate::phases::time_phase("data-gen", || {
            let ds = kind.generate(self.rows(kind), self.seed);
            let w = Workload::generate(
                WorkloadKind::OlapSkewed,
                &ds,
                self.queries,
                self.target_selectivity(),
                self.seed,
            );
            (ds, w)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_rows() {
        let small = ExpConfig {
            scale: 0.1,
            ..Default::default()
        };
        let big = ExpConfig {
            scale: 2.0,
            ..Default::default()
        };
        for kind in DatasetKind::ALL {
            assert!(small.rows(kind) < big.rows(kind));
        }
        // Table 1 ratios: tpch is the largest, sales the smallest.
        let c = ExpConfig::default();
        assert!(c.rows(DatasetKind::TpcH) > c.rows(DatasetKind::Perfmon));
        assert!(c.rows(DatasetKind::Sales) < c.rows(DatasetKind::Osm));
        // --full doubles the data and widens the optimizer's search budget.
        let full = ExpConfig {
            full: true,
            ..Default::default()
        };
        for kind in DatasetKind::ALL {
            assert_eq!(full.rows(kind), 2 * c.rows(kind));
        }
        let (lean, roomy) = (c.optimizer(1_000_000), full.optimizer(1_000_000));
        assert!(lean.data_sample < roomy.data_sample);
        assert!(lean.gd_steps < roomy.gd_steps);
    }

    #[test]
    fn dataset_and_workload_shapes() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 10,
            ..Default::default()
        };
        let (ds, w) = cfg.dataset_and_workload(DatasetKind::Sales);
        assert_eq!(ds.table.len(), cfg.rows(DatasetKind::Sales));
        assert_eq!(w.train.len(), 10);
        assert_eq!(w.test.len(), 10);
    }
}
