//! §4.1.2 — Why use machine learning for the cost model?
//!
//! "query time predicted using a simple analytical model that replaces the
//! weight parameters of Eq. 1 with fine-tuned constants has on average 9×
//! larger difference from the true query time than our machine-learning
//! based cost model. Furthermore, predicting the weight parameters using a
//! linear regression model … produces query time predictions with 4× larger
//! difference."
//!
//! Protocol: calibrate a random-forest and a linear weight model on one set
//! of random layouts, then evaluate prediction error on *fresh* random
//! layouts (held-out), against the measured query times.

use super::ExpConfig;
use flood_core::cost::calibration::{
    calibrate_cached, random_layout, CalibrationConfig, WeightModelKind,
};
use flood_core::cost::features::{cell_size_quantiles, QueryStatistics};
use flood_core::{CostModel, FloodConfig, FloodIndex};
use flood_data::DatasetKind;
use flood_store::CountVisitor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean relative error of each model: (forest, linear, constant).
pub fn errors(cfg: &ExpConfig) -> (f64, f64, f64) {
    let (ds, w) = cfg.dataset_and_workload(DatasetKind::TpcH);
    let cal = CalibrationConfig {
        n_layouts: if cfg.full { 10 } else { 6 },
        max_cells_log2: 13,
        reps: 2,
        seed: cfg.seed,
        ..Default::default()
    };
    let (forest, linear) = crate::phases::time_phase("calibration", || {
        let (forest, _) = calibrate_cached(&ds.table, &w.train, cal);
        let (linear, _) = calibrate_cached(
            &ds.table,
            &w.train,
            CalibrationConfig {
                kind: WeightModelKind::Linear,
                ..cal
            },
        );
        (forest, linear)
    });
    let models = [
        CostModel::new(forest),
        CostModel::new(linear),
        CostModel::analytic_default(),
    ];

    // Held-out layouts: different seed stream than calibration's.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD);
    let mut errs = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..4 {
        let layout = random_layout(ds.table.dims(), &mut rng, &cal);
        let index = FloodIndex::build(&ds.table, layout, FloodConfig::default());
        let sizes = index.cell_sizes();
        let (avg, median, p95) = cell_size_quantiles(&sizes);
        let total_cells = index.layout().num_cells() as f64;
        let sort_dim = index.layout().sort_dim();
        for q in &w.test {
            // Best-of-2 to denoise the "true" time.
            let mut best: Option<(flood_store::ScanStats, u64)> = None;
            for _ in 0..2 {
                let mut v = CountVisitor::default();
                let (stats, times) = index.execute_profiled(q, None, &mut v);
                let t = times.total_ns();
                if best.as_ref().is_none_or(|&(_, bt)| t < bt) {
                    best = Some((stats, t));
                }
            }
            let (stats, true_ns) = best.expect("two reps ran");
            if true_ns == 0 {
                continue;
            }
            let ns = (stats.points_scanned + stats.points_in_exact_ranges) as f64;
            let qstats = QueryStatistics {
                nc: stats.cells_projected as f64,
                ns,
                total_cells,
                avg_cell_size: avg,
                median_cell_size: median,
                p95_cell_size: p95,
                dims_filtered: q.num_filtered() as f64,
                avg_visited_per_cell: ns / (stats.cells_projected as f64).max(1.0),
                exact_points: stats.points_in_exact_ranges as f64,
                sort_filtered: q.filters(sort_dim),
            };
            for (m, err) in models.iter().zip(&mut errs) {
                let pred = m.predict(&qstats).time_ns;
                err.push((pred - true_ns as f64).abs() / true_ns as f64);
            }
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&errs[0]), mean(&errs[1]), mean(&errs[2]))
}

/// Print the comparison.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== §4.1.2: cost-model accuracy (why machine learning?) ===");
    let (forest, linear, constant) = errors(cfg);
    println!("mean relative error on held-out random layouts (tpc-h):");
    println!("  random forest:      {:.2}", forest);
    println!(
        "  linear regression:  {:.2}  ({:.1}x the forest's error)",
        linear,
        linear / forest.max(1e-9)
    );
    println!(
        "  tuned constants:    {:.2}  ({:.1}x the forest's error)",
        constant,
        constant / forest.max(1e-9)
    );
    println!("(paper: linear 4x, constants 9x)");
}
