//! Optimizer search cost (Fig 15/16 territory): layout-learning wall-clock
//! vs dimensionality and table size, with the incremental per-dimension
//! statistics cache toggled against a from-scratch re-scan per layout.
//!
//! The paper's learning-time curves (Figs 15/16 left panels) measure
//! exactly this loop: Algorithm 1's gradient descent probing candidate
//! column vectors against the flattened sample. Tsunami (Ding et al., VLDB
//! 2020) calls layout-search cost the practical bottleneck of grid-style
//! learned indexes; this experiment quantifies how much of it the
//! `(dim, column_count)` cache removes. Both modes produce bit-identical
//! layouts and predicted costs (pinned by `prop_incremental.rs`), so the
//! comparison is pure search mechanics: the `agree` column double-checks
//! it on every row.

use super::ExpConfig;
use crate::harness::calibrated_cost_model;
use crate::phases::time_phase;
use flood_core::optimizer::OptimizedLayout;
use flood_core::{LayoutOptimizer, OptimizerConfig};
use flood_data::datasets::uniform;
use flood_data::workloads::{DimFilter, QueryBuilder, QueryTemplate};
use flood_store::{RangeQuery, Table};
use std::time::Instant;

/// One sweep row: the same search run both ways.
pub struct OptRow {
    /// Dimensions in the table.
    pub dims: usize,
    /// Rows in the table.
    pub rows: usize,
    /// Mean learning wall-clock, full re-scan per distinct layout (ms).
    pub full_ms: f64,
    /// Mean learning wall-clock, incremental per-dimension stats (ms).
    pub inc_ms: f64,
    /// Diagnostics from the incremental run (last trial).
    pub diag: OptimizedLayout,
    /// Both modes chose the same layout at the same predicted cost.
    pub agree: bool,
}

impl OptRow {
    /// Search speedup of the incremental path.
    pub fn speedup(&self) -> f64 {
        self.full_ms / self.inc_ms.max(1e-9)
    }
}

/// A workload whose templates rotate 3-dimensional filters across every
/// dimension, so each dimension is a sort candidate and carries masks.
fn rotating_workload(table: &Table, cfg: &ExpConfig) -> Vec<RangeQuery> {
    let d = table.dims();
    let k = d.min(3);
    let per_dim = cfg.target_selectivity().powf(1.0 / k as f64);
    let templates: Vec<QueryTemplate> = (0..d)
        .map(|i| {
            QueryTemplate::new(
                &format!("rot{i}"),
                (0..k)
                    .map(|j| DimFilter::range((i + j) % d, per_dim))
                    .collect(),
            )
        })
        .collect();
    let weights = vec![1.0; templates.len()];
    let mut qb = QueryBuilder::new(table, cfg.seed);
    qb.workload("optcost", &templates, &weights, cfg.queries, None)
        .train
}

/// Time one `(dims, rows)` point in both modes, averaging over `trials`
/// seeds.
pub fn run_point(cfg: &ExpConfig, d: usize, n: usize, trials: usize) -> OptRow {
    let table = time_phase("data-gen", || uniform::generate(n, d, cfg.seed));
    let workload = time_phase("data-gen", || rotating_workload(&table, cfg));
    let cost = calibrated_cost_model().clone();

    let timed = |incremental: bool| -> (f64, OptimizedLayout) {
        let mut total = 0.0;
        let mut last = None;
        for trial in 0..trials.max(1) {
            let opt_cfg = OptimizerConfig {
                incremental,
                seed: cfg.seed.wrapping_add(trial as u64),
                ..cfg.optimizer(n)
            };
            let optimizer = LayoutOptimizer::with_config(cost.clone(), opt_cfg);
            let t0 = Instant::now();
            let learned = time_phase("layout-opt", || optimizer.optimize(&table, &workload));
            total += t0.elapsed().as_secs_f64() * 1e3;
            last = Some(learned);
        }
        (
            total / trials.max(1) as f64,
            last.expect("at least one trial"),
        )
    };

    let (full_ms, full_diag) = timed(false);
    let (inc_ms, diag) = timed(true);
    let agree = full_diag.layout == diag.layout
        && full_diag.predicted_ns.to_bits() == diag.predicted_ns.to_bits();
    OptRow {
        dims: d,
        rows: n,
        full_ms,
        inc_ms,
        diag,
        agree,
    }
}

/// Push each row's search speedup into the perf report (the regression
/// signal `repro --json` preserves for CI).
fn report_rows(prefix: &str, rows: &[OptRow]) {
    for r in rows {
        crate::report::metric(
            &format!("optcost.{prefix}.d{}.n{}.speedup", r.dims, r.rows),
            r.speedup(),
            "x",
        );
        crate::report::metric(
            &format!("optcost.{prefix}.d{}.n{}.incr_ms", r.dims, r.rows),
            r.inc_ms,
            "ms",
        );
    }
}

fn print_rows(rows: &[OptRow]) {
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>8} {:>7} {:>10} {:>9} {:>8} {:>6}",
        "dims",
        "rows",
        "full(ms)",
        "incr(ms)",
        "speedup",
        "evals",
        "memo-hits",
        "recounts",
        "reuses",
        "agree"
    );
    for r in rows {
        println!(
            "{:>5} {:>9} {:>10.1} {:>10.1} {:>7.2}x {:>7} {:>10} {:>9} {:>8} {:>6}",
            r.dims,
            r.rows,
            r.full_ms,
            r.inc_ms,
            r.speedup(),
            r.diag.cost_evals,
            r.diag.cache_hits,
            r.diag.dim_recounts,
            r.diag.dim_reuses,
            if r.agree { "yes" } else { "NO" },
        );
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== optimizer search cost: full re-scan vs incremental per-dimension stats ===");
    let trials = if cfg.full { 3 } else { 2 };

    // Dimensionality sweep (Fig 16 territory: more dimensions, more
    // candidates, more probes per descent step).
    let n = (50_000.0 * cfg.scale) as usize;
    let dim_grid: &[usize] = if cfg.full {
        &[2, 4, 8, 16, 24]
    } else {
        &[2, 4, 8, 16]
    };
    println!("\n--- dimensionality sweep (uniform, n={n}) ---");
    let rows: Vec<OptRow> = dim_grid
        .iter()
        .map(|&d| run_point(cfg, d, n.max(256), trials))
        .collect();
    print_rows(&rows);
    report_rows("dims", &rows);

    // Table-size sweep (Fig 15 territory: the data sample — and with it
    // every mask build and re-scan — grows with the table until the
    // optimizer's sample cap).
    let size_grid: Vec<usize> = if cfg.full {
        vec![25_000, 100_000, 400_000, 1_600_000]
    } else {
        vec![25_000, 100_000, 400_000]
    };
    println!("\n--- table-size sweep (uniform, d=4) ---");
    let rows: Vec<OptRow> = size_grid
        .iter()
        .map(|&base| {
            run_point(
                cfg,
                4,
                ((base as f64 * cfg.scale) as usize).max(256),
                trials,
            )
        })
        .collect();
    print_rows(&rows);
    report_rows("size", &rows);

    println!(
        "\nboth modes search identically (bit-identical costs; `agree` checks it) — \
         the gap is pure cost-evaluation mechanics. see BASELINES.md for reference numbers."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_modes_agree_and_report_diagnostics() {
        let cfg = ExpConfig {
            scale: 0.02,
            queries: 6,
            ..Default::default()
        };
        let row = run_point(&cfg, 4, 2_000, 1);
        assert!(row.agree, "full and incremental must pick the same layout");
        assert!(row.full_ms > 0.0 && row.inc_ms > 0.0);
        assert!(row.diag.cost_evals > 0);
        assert!(
            row.diag.dim_reuses > row.diag.dim_recounts,
            "at 4 dims most probes reuse cached dimensions: {} recounts vs {} reuses",
            row.diag.dim_recounts,
            row.diag.dim_reuses
        );
    }
}
