//! Fig 12: scalability — (a) dataset size, (b) query selectivity, on TPC-H.

use super::ExpConfig;
use crate::harness::{fmt_ms, run_all_indexes, IndexSet};
use flood_data::{DatasetKind, Workload, WorkloadKind};

/// (a) Query time as the dataset grows; Flood should scale sub-linearly.
pub fn run_sizes(cfg: &ExpConfig) {
    let kind = DatasetKind::TpcH;
    let base = cfg.rows(kind);
    let sizes: Vec<usize> = if cfg.full {
        vec![base / 16, base / 4, base, base * 4]
    } else {
        vec![base / 16, base / 4, base]
    };
    println!("\n--- Fig 12a: varying dataset size (tpc-h) ---");
    for n in sizes {
        let ds = crate::phases::time_phase("data-gen", || kind.generate(n, cfg.seed));
        let w = Workload::generate(
            WorkloadKind::OlapSkewed,
            &ds,
            cfg.queries,
            cfg.target_selectivity(),
            cfg.seed,
        );
        let results = run_all_indexes(
            &ds.table,
            &w.train,
            &w.test,
            Some(kind.agg_dim()),
            IndexSet {
                rtree: false,
                grid_file: true,
            },
            cfg.optimizer(n),
        );
        print!("n={n:<9}");
        for r in &results {
            print!(" {}={}", shorten(&r.index), fmt_ms(r.avg_query));
        }
        println!();
    }
}

/// (b) Query time as selectivity varies from 0.001% to 10%.
pub fn run_selectivity(cfg: &ExpConfig) {
    let kind = DatasetKind::TpcH;
    let ds = crate::phases::time_phase("data-gen", || kind.generate(cfg.rows(kind), cfg.seed));
    // The paper sweeps 0.001%–10%; three decades around the default 0.1%
    // already show the trend, --full restores the ends.
    let targets: &[f64] = if cfg.full {
        &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
    } else {
        &[1e-4, 1e-3, 1e-2]
    };
    println!("\n--- Fig 12b: varying query selectivity (tpc-h) ---");
    for &t in targets {
        let w = Workload::generate(WorkloadKind::OlapSkewed, &ds, cfg.queries, t, cfg.seed);
        let results = run_all_indexes(
            &ds.table,
            &w.train,
            &w.test,
            Some(kind.agg_dim()),
            IndexSet {
                rtree: false,
                grid_file: true,
            },
            cfg.optimizer(ds.table.len()),
        );
        print!("sel={t:<8.0e}");
        for r in &results {
            print!(" {}={}", shorten(&r.index), fmt_ms(r.avg_query));
        }
        println!();
    }
}

fn shorten(name: &str) -> String {
    name.replace(' ', "").chars().take(8).collect()
}

/// Both panels.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 12: scalability ===");
    run_sizes(cfg);
    run_selectivity(cfg);
}
