//! Adaptive re-learning under workload drift (§8, Shifting workloads; the
//! robustness axis Tsunami and the learned-multidim survey call out).
//!
//! A phased workload rotates its hot dimensions, selectivity, and center
//! of mass (`flood_data::workloads::drift`). Four contenders run the same
//! stream:
//!
//! - **full-scan** — the floor: immune to drift, slow everywhere;
//! - **frozen** — Flood's layout learned on phase 0 and never touched:
//!   the paper's static index, fast until the shift;
//! - **adapt-cold** — [`AdaptiveFlood`] with `share_cache: false`: detects
//!   degradation and re-learns, paying a from-scratch sample flatten per
//!   check and per re-learn;
//! - **adapt-shared** — [`AdaptiveFlood`] with the shared
//!   `EvaluatorCache` (the default): same decisions, but the data sample
//!   is flattened once and each degradation check's pricing work feeds the
//!   re-learn search that follows.
//!
//! Reported per phase: average *query* latency (adaptation excluded — it
//! is reported separately as the re-learn columns), re-learn counts, and
//! re-learn search cost. The shared-vs-cold re-learn time ratio is the
//! headline number BASELINES.md tracks.

use super::ExpConfig;
use crate::harness::{calibrated_cost_model, fmt_ms, learn_flood, run_workload};
use crate::phases::time_phase;
use crate::report;
use flood_baselines::FullScan;
use flood_core::{
    AdaptiveConfig, AdaptiveDiagnostics, AdaptiveFlood, FloodConfig, LayoutOptimizer,
};
use flood_data::workloads::drift::{DriftConfig, DriftMode, DriftingWorkload};
use flood_data::DatasetKind;
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, Table};
use std::time::{Duration, Instant};

/// Per-phase measurements for one adaptive contender.
struct AdaptivePhase {
    /// Mean per-query execution time (adaptation excluded).
    query_avg: Duration,
    /// Wall-clock spent observing + checking + re-learning + rebuilding.
    adapt_total: Duration,
    /// Re-learn search wall-clock this phase.
    relearn_wall: Duration,
    /// Layout swaps this phase.
    relearns: usize,
}

/// Drive one adaptive index through a phase, separating query time from
/// adaptation time.
fn run_adaptive_phase(a: &mut AdaptiveFlood, queries: &[RangeQuery]) -> AdaptivePhase {
    let d0 = a.diagnostics();
    let mut query_time = Duration::ZERO;
    let mut adapt_time = Duration::ZERO;
    for q in queries {
        let mut v = CountVisitor::default();
        let t0 = Instant::now();
        a.index().execute(q, None, &mut v);
        query_time += t0.elapsed();
        let t1 = Instant::now();
        a.observe(q);
        adapt_time += t1.elapsed();
    }
    crate::phases::record_phase("query-exec", query_time);
    crate::phases::record_phase("layout-opt", adapt_time);
    let d1 = a.diagnostics();
    AdaptivePhase {
        query_avg: query_time / queries.len().max(1) as u32,
        adapt_total: adapt_time,
        relearn_wall: d1
            .relearn_wall_total()
            .saturating_sub(d0.relearn_wall_total()),
        relearns: d1.relearns - d0.relearns,
    }
}

/// One full drift run (one mode), printed as a per-phase table. Returns the
/// final diagnostics of (cold, shared).
fn run_mode(
    cfg: &ExpConfig,
    table: &Table,
    drift: &DriftingWorkload,
) -> (AdaptiveDiagnostics, AdaptiveDiagnostics) {
    let n = table.len();
    let opt_cfg = cfg.optimizer(n);
    let optimizer = || LayoutOptimizer::with_config(calibrated_cost_model().clone(), opt_cfg);
    let qpp = drift.phases[0].queries.len();
    let adaptive_cfg = |share_cache: bool| AdaptiveConfig {
        window: (qpp / 3).clamp(12, 120),
        check_every: (qpp / 6).clamp(6, 60),
        degradation_factor: 1.25,
        share_cache,
    };

    // Contenders. The frozen index and both adaptives learn on the same
    // phase-0 training split; the full scan needs no tuning.
    let frozen = learn_flood(table, &drift.train, opt_cfg);
    let full = FullScan::build(table);
    let mut cold = time_phase("layout-opt", || {
        AdaptiveFlood::build(
            table,
            &drift.train,
            optimizer(),
            FloodConfig::default(),
            adaptive_cfg(false),
        )
    });
    let mut shared = time_phase("layout-opt", || {
        AdaptiveFlood::build(
            table,
            &drift.train,
            optimizer(),
            FloodConfig::default(),
            adaptive_cfg(true),
        )
    });

    println!(
        "{:<6} {:<10} {:>10} {:>10} {:>10} {:>12} {:>9} {:>14}",
        "phase",
        "hot-dims",
        "scan(ms)",
        "frozen(ms)",
        "cold(ms)",
        "shared(ms)",
        "relearns",
        "relearn c/s(ms)"
    );
    for (k, phase) in drift.phases.iter().enumerate() {
        let (scan_avg, _) = run_workload(&full, &phase.queries, None);
        let (frozen_avg, _) = run_workload(&frozen, &phase.queries, None);
        let pc = run_adaptive_phase(&mut cold, &phase.queries);
        let ps = run_adaptive_phase(&mut shared, &phase.queries);
        println!(
            "{:<6} {:<10} {:>10} {:>10} {:>10} {:>12} {:>7}/{:<1} {:>6.1}/{:<6.1}",
            phase.name,
            format!("{:?}", phase.hot_dims),
            fmt_ms(scan_avg),
            fmt_ms(frozen_avg),
            fmt_ms(pc.query_avg),
            fmt_ms(ps.query_avg),
            pc.relearns,
            ps.relearns,
            pc.relearn_wall.as_secs_f64() * 1e3,
            ps.relearn_wall.as_secs_f64() * 1e3,
        );
        let prefix = format!("drift.{}.p{k}", drift.mode.label());
        report::metric(&format!("{prefix}.fullscan_ms"), ms(scan_avg), "ms");
        report::metric(&format!("{prefix}.frozen_ms"), ms(frozen_avg), "ms");
        report::metric(&format!("{prefix}.cold_ms"), ms(pc.query_avg), "ms");
        report::metric(&format!("{prefix}.shared_ms"), ms(ps.query_avg), "ms");
        report::metric(
            &format!("{prefix}.relearns_cold"),
            pc.relearns as f64,
            "count",
        );
        report::metric(
            &format!("{prefix}.relearns_shared"),
            ps.relearns as f64,
            "count",
        );
        report::metric(&format!("{prefix}.adapt_cold_ms"), ms(pc.adapt_total), "ms");
        report::metric(
            &format!("{prefix}.adapt_shared_ms"),
            ms(ps.adapt_total),
            "ms",
        );
    }
    (cold.diagnostics(), shared.diagnostics())
}

/// Milliseconds as f64.
fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Controlled replay results: both modes do the *same* work over the same
/// sliding-window sequence, so the ratios isolate the caching subsystem
/// (the stream run above lets each mode make its own noisy threshold
/// decisions).
struct Replay {
    /// Windows replayed.
    windows: usize,
    /// Degradation-check pricing: one fixed layout priced per window.
    price_cold: Duration,
    /// Same pricing through the shared cache (per-query costs of a stable
    /// layout carry across windows — only queries that entered the window
    /// are priced fresh).
    price_shared: Duration,
    /// Re-learn: a full layout search per window, fresh flattens each time.
    learn_cold: Duration,
    /// Same searches through the shared cache.
    learn_shared: Duration,
}

/// Replay the stream's sliding windows through both modes with identical
/// work: every window is priced (the check path), and every window is
/// re-learned (the search path).
fn replay(cfg: &ExpConfig, table: &Table, drift: &DriftingWorkload) -> Replay {
    let opt_cfg = cfg.optimizer(table.len());
    let optimizer = LayoutOptimizer::with_config(calibrated_cost_model().clone(), opt_cfg);
    let stream: Vec<RangeQuery> = drift.stream().cloned().collect();
    let qpp = drift.phases[0].queries.len();
    let window = (qpp / 3).clamp(12, 120);
    let stride = (qpp / 6).clamp(6, 60);
    let windows: Vec<&[RangeQuery]> = (0..)
        .map(|i| i * stride)
        .take_while(|&s| s + window <= stream.len())
        .map(|s| &stream[s..s + window])
        .collect();
    let start = optimizer.optimize(table, &drift.train).layout;

    // Check pricing, cold: every check re-flattens (the pre-cache
    // `AdaptiveFlood::execute` behaviour this PR's bugfix removes).
    let t = Instant::now();
    for w in &windows {
        let _ = optimizer.evaluator_sampled(table, w).predict(&start);
    }
    let price_cold = t.elapsed();

    // Check pricing, shared: the layout is stable between re-learns, so
    // its per-query costs carry — only queries that entered the window
    // since the last check are priced fresh.
    let t = Instant::now();
    let mut shared = flood_core::EvaluatorCache::new();
    for w in &windows {
        let (queries, mut rng) = optimizer.sample_queries(w);
        let eval = shared.evaluator(&optimizer, table, &queries, &mut rng);
        eval.advance_epoch();
        let _ = eval.predict(&start);
    }
    let price_shared = t.elapsed();

    // Re-learn, cold: price + full search, two fresh flattens per window.
    let t = Instant::now();
    let mut layout = start.clone();
    for w in &windows {
        let _ = optimizer.evaluator_sampled(table, w).predict(&layout);
        layout = optimizer.optimize(table, w).layout;
    }
    let learn_cold = t.elapsed();

    // Re-learn, shared: the pricing evaluator feeds each search, masks and
    // per-query costs carry window to window.
    let t = Instant::now();
    let mut shared = flood_core::EvaluatorCache::new();
    let mut layout = start;
    for w in &windows {
        let (queries, mut rng) = optimizer.sample_queries(w);
        let eval = shared.evaluator(&optimizer, table, &queries, &mut rng);
        let _ = eval.predict(&layout);
        eval.advance_epoch();
        layout = optimizer.optimize_in(eval).layout;
    }
    let learn_shared = t.elapsed();

    crate::phases::record_phase(
        "layout-opt",
        price_cold + price_shared + learn_cold + learn_shared,
    );
    Replay {
        windows: windows.len(),
        price_cold,
        price_shared,
        learn_cold,
        learn_shared,
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== adaptive re-learning under workload drift (§8) ===");
    let n = cfg.rows(DatasetKind::Sales);
    let (table, _) = time_phase("data-gen", || {
        let ds = DatasetKind::Sales.generate(n, cfg.seed);
        (ds.table, ())
    });
    let qpp = (cfg.queries * 2).max(24);
    let modes: &[DriftMode] = if cfg.full {
        &[DriftMode::Abrupt, DriftMode::Gradual]
    } else {
        &[DriftMode::Abrupt]
    };
    for &mode in modes {
        let drift = time_phase("data-gen", || {
            DriftingWorkload::generate(
                &table,
                &DriftConfig {
                    phases: if cfg.full { 6 } else { 4 },
                    queries_per_phase: qpp,
                    filters_per_query: 2,
                    target_selectivity: cfg.target_selectivity(),
                    mode,
                    seed: cfg.seed,
                },
            )
        });
        println!(
            "\n--- {} drift: {} phases x {} queries, sales n={} ---",
            mode.label(),
            drift.phases.len(),
            qpp,
            n
        );
        let (dc, ds) = run_mode(cfg, &table, &drift);
        let (cold_ms, shared_ms) = (
            dc.relearn_wall_total().as_secs_f64() * 1e3,
            ds.relearn_wall_total().as_secs_f64() * 1e3,
        );
        let ratio = cold_ms / shared_ms.max(1e-9);
        println!(
            "\nre-learn searches: cold {} in {cold_ms:.1} ms, shared {} in {shared_ms:.1} ms \
             ({ratio:.2}x cheaper shared)",
            dc.relearn_wall.len(),
            ds.relearn_wall.len(),
        );
        println!(
            "shared-cache work: {} sample flatten(s), {} window flatten(s), {} window reuse(s), \
             {} cross-re-learn cache hits (cold re-flattened {} times)",
            ds.sample_flattens,
            ds.window_flattens,
            ds.window_reuses,
            ds.cache_hits_across_relearns,
            dc.sample_flattens,
        );
        let prefix = format!("drift.{}", mode.label());
        report::metric(&format!("{prefix}.relearn_cold_ms"), cold_ms, "ms");
        report::metric(&format!("{prefix}.relearn_shared_ms"), shared_ms, "ms");
        report::metric(&format!("{prefix}.relearn_speedup"), ratio, "x");
        report::metric(
            &format!("{prefix}.cross_relearn_hits"),
            ds.cache_hits_across_relearns as f64,
            "count",
        );
        // Embed the adaptive lifecycles' full telemetry in the --json
        // record and fold it into the process-global registry for
        // `repro --metrics`.
        let reg = flood_obs::Registry::new();
        dc.export(&reg, "adapt_cold");
        ds.export(&reg, "adapt_shared");
        report::embed_metrics_snapshot(&format!("{prefix}.metrics"), &reg.snapshot());
        flood_obs::metrics::global().absorb(&reg);

        // Controlled replays: identical check/re-learn work in both modes.
        let r = replay(cfg, &table, &drift);
        let price_ratio = r.price_cold.as_secs_f64() / r.price_shared.as_secs_f64().max(1e-12);
        let learn_ratio = r.learn_cold.as_secs_f64() / r.learn_shared.as_secs_f64().max(1e-12);
        println!(
            "check-pricing replay ({} sliding windows, stable layout): \
             cold {:.1} ms, shared {:.1} ms — {price_ratio:.1}x cheaper shared",
            r.windows,
            ms(r.price_cold),
            ms(r.price_shared),
        );
        println!(
            "re-learn replay ({} forced re-learns over sliding windows): \
             cold {:.1} ms, shared {:.1} ms — {learn_ratio:.2}x cheaper shared",
            r.windows,
            ms(r.learn_cold),
            ms(r.learn_shared),
        );
        report::metric(&format!("{prefix}.price_cold_ms"), ms(r.price_cold), "ms");
        report::metric(
            &format!("{prefix}.price_shared_ms"),
            ms(r.price_shared),
            "ms",
        );
        report::metric(&format!("{prefix}.price_speedup"), price_ratio, "x");
        report::metric(&format!("{prefix}.replay_cold_ms"), ms(r.learn_cold), "ms");
        report::metric(
            &format!("{prefix}.replay_shared_ms"),
            ms(r.learn_shared),
            "ms",
        );
        report::metric(&format!("{prefix}.replay_speedup"), learn_ratio, "x");
    }
    println!(
        "\nthe frozen layout keeps phase-0 tuning; the adaptives re-learn when the cost \
         model prices the window as degraded. see BASELINES.md for reference numbers."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift loop end-to-end at tiny scale: the adaptives must actually
    /// re-learn on the rotated phases, and shared mode must flatten the
    /// data sample exactly once.
    #[test]
    fn adaptives_relearn_and_share_the_sample() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 12,
            ..Default::default()
        };
        let table = DatasetKind::Sales
            .generate(cfg.rows(DatasetKind::Sales), cfg.seed)
            .table;
        let drift = DriftingWorkload::generate(
            &table,
            &DriftConfig {
                phases: 3,
                queries_per_phase: 24,
                filters_per_query: 2,
                target_selectivity: cfg.target_selectivity(),
                mode: DriftMode::Abrupt,
                seed: cfg.seed,
            },
        );
        let (dc, ds) = run_mode(&cfg, &table, &drift);
        assert!(
            ds.relearns >= 1,
            "rotated hot dims must trigger a re-learn: {ds:?}"
        );
        assert!(dc.relearns >= 1, "cold mode adapts too: {dc:?}");
        assert_eq!(ds.sample_flattens, 1, "shared flattens once: {ds:?}");
        assert!(
            dc.sample_flattens > ds.sample_flattens,
            "cold re-flattens per check/re-learn: {dc:?}"
        );
        assert!(ds.cache_hits_across_relearns > 0);
        assert_eq!(dc.cache_hits_across_relearns, 0);
    }
}
