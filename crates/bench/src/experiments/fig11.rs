//! Fig 11: the component ablation — Simple Grid → +Sort Dim → +Flattening
//! → +Learning.
//!
//! The baseline "Simple Grid" is a d-dimensional histogram over all
//! filtered dimensions with columns proportional to each dimension's
//! selectivity (§7.4). "+Sort Dim" sorts the last dimension instead of
//! gridding it, reallocating its columns to the rest. "+Flattening" swaps
//! uniform column spacing for learned CDFs. "+Learning" runs the full
//! layout optimizer.

use super::ExpConfig;
use crate::harness::{dims_by_selectivity, fmt_ms, learn_flood, measure, RunResult};
use flood_core::{Flattening, FloodBuilder, Layout};
use flood_data::DatasetKind;
use flood_store::{RangeQuery, Table};

/// The four ablation variants for one dataset.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<(String, RunResult)> {
    let (ds, w) = cfg.dataset_and_workload(kind);
    let table = &ds.table;
    let agg = Some(kind.agg_dim());
    let dims = filtered_by_selectivity(table, &w.train);
    let target_cells = (table.len() / 1_024).max(16) as f64;

    let mut out = Vec::new();

    // 1. Simple Grid: histogram over all filtered dims, uniform spacing,
    //    columns proportional to selectivity.
    let cols = proportional_cols(table, &w.train, &dims, target_cells, dims.len());
    let idx = FloodBuilder::new()
        .layout(Layout::histogram(dims.clone(), cols))
        .flattening(Flattening::Uniform)
        .build(table);
    out.push((
        "Simple Grid".to_string(),
        measure(&idx, &w.test, agg, Default::default()),
    ));

    // 2. +Sort Dim: last dim becomes the sort dimension; its columns are
    //    reallocated to the remaining dims.
    if dims.len() >= 2 {
        let cols = proportional_cols(table, &w.train, &dims, target_cells, dims.len() - 1);
        let idx = FloodBuilder::new()
            .layout(Layout::new(dims.clone(), cols.clone()))
            .flattening(Flattening::Uniform)
            .build(table);
        out.push((
            "+Sort Dim".to_string(),
            measure(&idx, &w.test, agg, Default::default()),
        ));

        // 3. +Flattening: learned CDF column spacing.
        let idx = FloodBuilder::new()
            .layout(Layout::new(dims.clone(), cols))
            .flattening(Flattening::Learned)
            .build(table);
        out.push((
            "+Flattening".to_string(),
            measure(&idx, &w.test, agg, Default::default()),
        ));
    }

    // 4. +Learning: the full optimizer.
    let flood = learn_flood(table, &w.train, cfg.optimizer(table.len()));
    out.push((
        "+Learning".to_string(),
        measure(&flood, &w.test, agg, Default::default()),
    ));
    out
}

/// Filtered dims, most selective first (the ablation's fixed ordering).
fn filtered_by_selectivity(table: &Table, train: &[RangeQuery]) -> Vec<usize> {
    dims_by_selectivity(table, train)
        .into_iter()
        .filter(|&d| train.iter().any(|q| q.filters(d)))
        .collect()
}

/// Columns proportional to each dimension's (inverse) selectivity over the
/// first `k` dims of `dims`, scaled so total cells ≈ `target_cells`.
fn proportional_cols(
    table: &Table,
    train: &[RangeQuery],
    dims: &[usize],
    target_cells: f64,
    k: usize,
) -> Vec<usize> {
    let n = table.len().max(1);
    let step = (n / 2_000).max(1);
    // Average per-dim selectivity fraction (1.0 when unfiltered).
    let sel: Vec<f64> = dims[..k]
        .iter()
        .map(|&d| {
            let mut total = 0.0;
            let mut cnt = 0;
            for q in train {
                if let Some((lo, hi)) = q.bound(d) {
                    let mut hits = 0usize;
                    let mut seen = 0usize;
                    let mut r = 0;
                    while r < n {
                        let v = table.value(r, d);
                        if v >= lo && v <= hi {
                            hits += 1;
                        }
                        seen += 1;
                        r += step;
                    }
                    total += hits as f64 / seen.max(1) as f64;
                    cnt += 1;
                }
            }
            if cnt == 0 {
                1.0
            } else {
                (total / cnt as f64).max(1e-4)
            }
        })
        .collect();
    // log-space shares ∝ log(1/sel), normalized to log(target_cells).
    let shares: Vec<f64> = sel.iter().map(|&s| (1.0 / s).ln().max(0.1)).collect();
    let sum: f64 = shares.iter().sum();
    let budget = target_cells.ln();
    shares
        .iter()
        .map(|&sh| ((sh / sum * budget).exp().round() as usize).clamp(1, 4_096))
        .collect()
}

/// Print all four datasets.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 11: component ablation ===");
    for kind in DatasetKind::ALL {
        let rows = run_dataset(cfg, kind);
        println!("\n--- {} ---", kind.name());
        println!("{:<14} {:>14} {:>10}", "variant", "avg query(ms)", "SO");
        for (name, r) in &rows {
            println!(
                "{:<14} {:>14} {:>10.2}",
                name,
                fmt_ms(r.avg_query),
                r.scan_overhead()
            );
        }
    }
}
