//! Tiered storage: query latency when the table is several times larger
//! than the memory budget.
//!
//! The dataset is sealed into checksummed cold segments on disk
//! (`FileBackend`) with a `SegmentCache` budget of **a quarter of the
//! cold bytes** (override with `FLOOD_MEM_BUDGET`), so at steady state at
//! least ~75% of segments are non-resident and every workload pass faults
//! segments back in through the LRU. The *resident* reference is the same
//! kernel with an unlimited budget and a warmed cache — the measured gap
//! is purely the cost of faulting cold segments, not a different scan.
//!
//! Reported per selectivity: resident p50, cold p50, and the degradation
//! ratio (ARCHITECTURE.md commits to ≤5× at ≥50% cold on release builds;
//! CI gates `tiered.degradation.p50_x` from the `--json` record). Cache
//! behaviour (faults, hits, evictions, residency) is published through
//! `flood-obs` gauges under the `tier` subsystem and lands in
//! `repro --metrics` output. A final delta phase buffers fresh inserts and
//! compacts them into new sealed segments, reporting the cold-bytes
//! growth.

use super::ExpConfig;
use crate::phases::time_phase;
use crate::report;
use flood_data::{DatasetKind, Workload, WorkloadKind};
use flood_store::{
    CountVisitor, FileBackend, MultiDimIndex, RangeQuery, StorageBackend, TierConfig, TieredDelta,
    TieredScan, BLOCK_LEN,
};
use std::sync::Arc;
use std::time::Instant;

/// What one tiered run measured (returned for the smoke test's asserts).
pub struct TieredSummary {
    /// Rows sealed.
    pub rows: usize,
    /// Bytes of sealed cold segments.
    pub cold_bytes: usize,
    /// The cache budget the cold run used.
    pub budget_bytes: usize,
    /// `cold_bytes / budget_bytes` — the acceptance floor is ≥4×.
    pub data_over_budget_x: f64,
    /// Fraction of segments non-resident after the cold run.
    pub cold_frac: f64,
    /// Segment faults during the cold run.
    pub faults: u64,
    /// Cache hits during the cold run.
    pub hits: u64,
    /// Evictions during the cold run.
    pub evictions: u64,
    /// `(selectivity, resident p50 ns, cold p50 ns)` per workload.
    pub p50: Vec<(f64, u64, u64)>,
    /// Median degradation ratio across the selectivity sweep.
    pub degradation_p50_x: f64,
    /// Rows appended and sealed by the delta phase.
    pub appended: usize,
    /// Cold bytes after compaction (> `cold_bytes`).
    pub cold_bytes_after_append: usize,
}

/// Drive every query once (COUNT, no aggregate) and return per-query
/// latencies.
fn drive(scan: &TieredScan, queries: &[RangeQuery]) -> Vec<u64> {
    let mut ns = Vec::with_capacity(queries.len());
    for q in queries {
        let mut v = CountVisitor::default();
        let t = Instant::now();
        scan.execute(q, None, &mut v);
        ns.push(t.elapsed().as_nanos() as u64);
    }
    ns
}

/// Exact (sorted, nearest-rank) p50.
fn exact_p50(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[(ns.len() - 1) / 2]
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    xs[(xs.len() - 1) / 2]
}

/// Run the tiered measurement; the returned summary carries every number
/// the report emits.
pub fn run_tiered(cfg: &ExpConfig) -> TieredSummary {
    let ds = time_phase("data-gen", || {
        DatasetKind::Osm.generate(cfg.rows(DatasetKind::Osm), cfg.seed)
    });
    let rows = ds.table.len();

    // Seal twice over one on-disk backend family: the cold run under the
    // constrained budget, the resident reference with an unlimited one.
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FileBackend::new_temp().expect("temp dir for cold segments"));
    let resident = time_phase("index-build", || {
        TieredScan::seal(
            &ds.table,
            backend.clone(),
            TierConfig {
                budget_bytes: usize::MAX,
                ..Default::default()
            },
        )
        .expect("seal resident reference")
    });
    let cold_bytes = resident.data().cold_bytes();
    // A quarter of the data resident by default; FLOOD_MEM_BUDGET overrides
    // (the same knob the differential suites use to force cold coverage).
    let cfg_cold = TierConfig {
        budget_bytes: cold_bytes / 4,
        ..Default::default()
    }
    .from_env();
    let budget_bytes = cfg_cold.budget_bytes;
    let cold = time_phase("index-build", || {
        TieredScan::seal(&ds.table, backend.clone(), cfg_cold).expect("seal cold run")
    });

    // Selectivity sweep, one workload per point (the paper's default 0.1%
    // plus two wider ones so full-block exact accepts and probe-heavy
    // shapes both appear).
    let sweep = [0.001, 0.01, 0.1];
    let workloads: Vec<(f64, Workload)> = sweep
        .iter()
        .map(|&sel| {
            let w = time_phase("data-gen", || {
                Workload::generate(WorkloadKind::OlapSkewed, &ds, cfg.queries, sel, cfg.seed)
            });
            (sel, w)
        })
        .collect();

    // Warm the resident cache completely: after this pass its budget never
    // evicts, so the reference run is fully in-memory by construction.
    drive(&resident, &workloads[0].1.test);

    let t0 = Instant::now();
    let mut p50 = Vec::new();
    let mut ratios = Vec::new();
    for (sel, w) in &workloads {
        let r = exact_p50(drive(&resident, &w.test));
        // One un-timed cold pass first: steady-state LRU churn, not a
        // first-touch cliff, is the regime under test.
        drive(&cold, &w.test);
        let c = exact_p50(drive(&cold, &w.test));
        ratios.push(c as f64 / r.max(1) as f64);
        p50.push((*sel, r, c));
    }
    crate::phases::record_phase("query-exec", t0.elapsed());

    let cache = cold.data().cache();
    let n_segs = cold.data().n_segments() * cold.data().dims();
    let cold_frac = 1.0 - cache.resident_segments() as f64 / n_segs.max(1) as f64;
    let (faults, hits, evictions) = (cache.faults(), cache.hits(), cache.evictions());
    cache.publish_gauges(flood_obs::metrics::global(), "tier");

    // Delta phase: buffer 1% fresh rows, compact into new sealed segments.
    let appended = (rows / 100).max(2 * BLOCK_LEN);
    let mut delta = TieredDelta::new(cold.data().clone());
    let t0 = Instant::now();
    let dims = ds.table.dims();
    for i in 0..appended {
        let row: Vec<u64> = (0..dims)
            .map(|d| ((i * 37 + d * 11) % 10_000) as u64)
            .collect();
        delta.insert(&row).expect("buffer insert");
    }
    delta
        .compact()
        .expect("compact fresh rows into cold segments");
    crate::phases::record_phase("index-build", t0.elapsed());
    let cold_bytes_after_append = delta.base().cold_bytes();

    TieredSummary {
        rows,
        cold_bytes,
        budget_bytes,
        data_over_budget_x: cold_bytes as f64 / budget_bytes.max(1) as f64,
        cold_frac,
        faults,
        hits,
        evictions,
        p50,
        degradation_p50_x: median_f64(ratios),
        appended,
        cold_bytes_after_append,
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== tiered storage (larger-than-RAM tables) ===");
    let s = run_tiered(cfg);
    println!(
        "{} rows sealed to {} KiB cold; budget {} KiB ({:.1}x data/budget), {:.0}% segments cold",
        s.rows,
        s.cold_bytes / 1024,
        s.budget_bytes / 1024,
        s.data_over_budget_x,
        s.cold_frac * 100.0,
    );
    println!(
        "{:<12} {:>16} {:>14} {:>12}",
        "selectivity", "resident p50(us)", "cold p50(us)", "degradation"
    );
    for (sel, r, c) in &s.p50 {
        println!(
            "{:<12} {:>16.1} {:>14.1} {:>11.2}x",
            format!("{:.3}%", sel * 100.0),
            *r as f64 / 1_000.0,
            *c as f64 / 1_000.0,
            *c as f64 / (*r).max(1) as f64,
        );
    }
    println!(
        "cache: {} faults, {} hits, {} evictions; delta: {} rows appended, cold {} -> {} KiB. \
         budget: cold p50 <= 5x resident at >=50% cold on release builds \
         (CI gates tiered.degradation.p50_x).",
        s.faults,
        s.hits,
        s.evictions,
        s.appended,
        s.cold_bytes / 1024,
        s.cold_bytes_after_append / 1024,
    );
    report::metric("tiered.degradation.p50_x", s.degradation_p50_x, "x");
    report::metric("tiered.data_over_budget_x", s.data_over_budget_x, "x");
    report::metric("tiered.cold_frac", s.cold_frac, "frac");
    report::metric("tiered.faults", s.faults as f64, "count");
    report::metric("tiered.evictions", s.evictions as f64, "count");
    for (sel, r, c) in &s.p50 {
        let tag = format!("{:.3}", sel * 100.0).replace('.', "_");
        report::metric(
            &format!("tiered.resident.p50_us.sel{tag}"),
            *r as f64 / 1_000.0,
            "us",
        );
        report::metric(
            &format!("tiered.cold.p50_us.sel{tag}"),
            *c as f64 / 1_000.0,
            "us",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tiered harness end to end at tiny scale: data is genuinely
    /// larger than the budget, the cold run faults and evicts, both sides
    /// answer every query, and the delta phase grows the cold tier. The
    /// ≤5× degradation budget itself is release-mode and CI-gated — here
    /// the ratio just has to be finite and positive.
    #[test]
    fn tiered_harness_measures_cold_regime() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 6,
            ..Default::default()
        };
        let s = run_tiered(&cfg);
        assert!(s.rows >= 1_000);
        assert!(
            s.data_over_budget_x >= 3.9,
            "the cold run must be genuinely larger than RAM: {:.1}x",
            s.data_over_budget_x
        );
        assert!(
            s.cold_frac >= 0.5,
            "most segments must be cold at steady state: {:.2}",
            s.cold_frac
        );
        assert!(s.faults > 0, "the cold run must fault segments in");
        assert!(s.evictions > 0, "the LRU must evict under a 1/4 budget");
        assert_eq!(s.p50.len(), 3);
        for (sel, r, c) in &s.p50 {
            assert!(*r > 0 && *c > 0, "sel {sel}: both sides measured");
        }
        assert!(s.degradation_p50_x.is_finite() && s.degradation_p50_x > 0.0);
        assert!(s.appended > 0);
        assert!(
            s.cold_bytes_after_append > s.cold_bytes,
            "compaction must seal new cold segments"
        );
    }
}
