//! Compressed-domain scan speed: packed-predicate evaluation with block
//! skipping vs the decode-first kernel, across selectivities.
//!
//! Two table shapes bracket the optimization's range:
//!
//! * **sorted** — the filter column is the sort key, so compressed blocks
//!   have tight, disjoint `[min, max]` spans and low-selectivity predicates
//!   dismiss almost every block from metadata alone (the regime a Flood
//!   layout puts its primary dimensions in).
//! * **unsorted** — every block spans the whole domain, so nothing can be
//!   skipped and the comparison isolates the word-parallel probe path
//!   against per-value decode.
//!
//! Both modes run the identical `FullScan` index over the identical
//! compressed table; only [`ScanMode`] differs. Counts are asserted equal.

use super::ExpConfig;
use crate::phases::time_phase;
use crate::report;
use flood_baselines::FullScan;
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, ScanMode, SumVisitor, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Selectivities in per-mille (0.1%, 1%, 10%).
const SELECTIVITIES_PERMILLE: &[usize] = &[1, 10, 100];

struct Shape {
    label: &'static str,
    /// Filter on this dimension.
    filter_dim: usize,
    table: Table,
    /// Sorted copy of the filter column, for quantile → bound lookups.
    sorted_filter: Vec<u64>,
}

fn build_shapes(cfg: &ExpConfig) -> Vec<Shape> {
    let n = (400_000.0 * cfg.scale) as usize;
    let n = n.max(2_000);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5ca_5ca);
    let domain = 1u64 << 32;
    let mut key: Vec<u64> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
    let agg: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000)).collect();
    let shuffled = key.clone();
    key.sort_unstable();
    let sorted_key = key.clone();
    let mut sorted_table = Table::from_columns(vec![key, agg.clone()]);
    sorted_table.compress();
    let mut sorted_shuffled = shuffled.clone();
    sorted_shuffled.sort_unstable();
    let mut unsorted_table = Table::from_columns(vec![shuffled, agg]);
    unsorted_table.compress();
    vec![
        Shape {
            label: "sorted",
            filter_dim: 0,
            table: sorted_table,
            sorted_filter: sorted_key,
        },
        Shape {
            label: "unsorted",
            filter_dim: 0,
            table: unsorted_table,
            sorted_filter: sorted_shuffled,
        },
    ]
}

/// Queries hitting exactly `permille`/1000 of the rows: bounds are values at
/// the matching quantile positions of the sorted filter column.
fn queries(shape: &Shape, permille: usize, count: usize, seed: u64) -> Vec<RangeQuery> {
    let n = shape.sorted_filter.len();
    let span = (n * permille / 1000).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ permille as u64);
    (0..count)
        .map(|_| {
            let lo_idx = rng.gen_range(0..n - span + 1);
            let (lo, hi) = (
                shape.sorted_filter[lo_idx],
                shape.sorted_filter[lo_idx + span - 1],
            );
            RangeQuery::all(shape.table.dims()).with_range(shape.filter_dim, lo, hi)
        })
        .collect()
}

/// Run `qs` through `index`; returns (total count, total sum, wall ns).
fn run_workload(index: &FullScan, qs: &[RangeQuery]) -> (u64, u64, u64) {
    let t0 = Instant::now();
    let mut count = 0u64;
    let mut sum = 0u64;
    for q in qs {
        let mut c = CountVisitor::default();
        index.execute(q, None, &mut c);
        count += c.count;
        let mut s = SumVisitor::default();
        index.execute(q, Some(1), &mut s);
        sum = sum.wrapping_add(s.sum);
    }
    (count, sum, t0.elapsed().as_nanos() as u64)
}

/// Print the comparison; returns (shape, permille, decode ms, packed ms).
pub fn compare(cfg: &ExpConfig) -> Vec<(&'static str, usize, f64, f64)> {
    let shapes = time_phase("data-gen", || build_shapes(cfg));
    let mut rows = Vec::new();
    for shape in &shapes {
        let (mut packed, mut decode) = time_phase("index-build", || {
            let packed = FullScan::build(&shape.table);
            let decode = FullScan::build(&shape.table);
            (packed, decode)
        });
        packed.set_scan_mode(ScanMode::Packed);
        decode.set_scan_mode(ScanMode::DecodeFirst);
        for &permille in SELECTIVITIES_PERMILLE {
            let qs = queries(shape, permille, cfg.queries, cfg.seed);
            let (run_packed, run_decode) = time_phase("query-exec", || {
                (run_workload(&packed, &qs), run_workload(&decode, &qs))
            });
            let (pc, psum, pns) = run_packed;
            let (dc, dsum, dns) = run_decode;
            assert_eq!((pc, psum), (dc, dsum), "modes must agree on results");
            // One representative query's block accounting.
            let mut v = CountVisitor::default();
            let stats = packed.execute(&qs[0], None, &mut v);
            let blocks = stats.blocks_skipped + stats.blocks_accepted + stats.blocks_probed;
            let skipped_frac = if blocks == 0 {
                0.0
            } else {
                stats.blocks_skipped as f64 / blocks as f64
            };
            let (d_ms, p_ms) = (dns as f64 / 1e6, pns as f64 / 1e6);
            let speedup = if p_ms > 0.0 { d_ms / p_ms } else { 0.0 };
            println!(
                "{:>9}  sel {:>5.1}%  decode-first {:>9.2} ms  packed {:>9.2} ms  \
                 speedup {:>5.2}x  blocks skipped {:>5.1}%",
                shape.label,
                permille as f64 / 10.0,
                d_ms,
                p_ms,
                speedup,
                skipped_frac * 100.0,
            );
            let key = format!("scanspeed.{}.sel{permille}", shape.label);
            report::metric(&format!("{key}.decode_ms"), d_ms, "ms");
            report::metric(&format!("{key}.packed_ms"), p_ms, "ms");
            report::metric(&format!("{key}.speedup"), speedup, "x");
            report::metric(&format!("{key}.blocks_skipped_frac"), skipped_frac, "frac");
            rows.push((shape.label, permille, d_ms, p_ms));
        }
    }
    rows
}

/// Entry point for `repro scanspeed`.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== §7.1+: compressed-domain scans — packed vs decode-first ===");
    println!(
        "(FullScan over a compressed 2-column table; selectivity per-mille sweep \
         {SELECTIVITIES_PERMILLE:?}, {} queries each; counts+sums asserted equal)",
        cfg.queries
    );
    let rows = compare(cfg);
    let best = rows
        .iter()
        .filter(|(label, permille, _, _)| *label == "sorted" && *permille <= 10)
        .map(|&(_, _, d, p)| if p > 0.0 { d / p } else { 0.0 })
        .fold(0.0f64, f64::max);
    println!("best ≤1%-selectivity speedup on the sorted shape: {best:.2}x");
}
