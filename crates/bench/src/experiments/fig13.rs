//! Fig 13: scaling the number of dimensions on uniform synthetic data
//! (§7.5): query time per index, and the ratio vs a full scan (the curse of
//! dimensionality).
//!
//! Workload per the paper: the number of filtered dimensions varies
//! uniformly from 1 to d, filters land on the first k dimensions, and
//! per-dimension selectivity is equal with overall selectivity 0.1%.

use super::ExpConfig;
use crate::harness::{fmt_ms, run_all_indexes, IndexSet, RunResult};
use flood_data::datasets::uniform;
use flood_data::workloads::{DimFilter, QueryBuilder, QueryTemplate};

/// Build the paper's dimensional workload: templates for k = 1..=d filtered
/// dims at equal weight.
pub fn dimensional_workload(
    table: &flood_store::Table,
    n: usize,
    target: f64,
    seed: u64,
) -> flood_data::Workload {
    let d = table.dims();
    let templates: Vec<QueryTemplate> = (1..=d)
        .map(|k| {
            let per_dim = target.powf(1.0 / k as f64);
            QueryTemplate::new(
                &format!("k{k}"),
                (0..k).map(|dim| DimFilter::range(dim, per_dim)).collect(),
            )
        })
        .collect();
    let weights = vec![1.0; templates.len()];
    let mut b = QueryBuilder::new(table, seed);
    b.workload("dims", &templates, &weights, n, None)
}

/// Run the sweep; returns per-d index results.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 13: scaling dimensions (uniform synthetic) ===");
    let dims: Vec<usize> = if cfg.full {
        vec![2, 4, 6, 9, 12, 15, 18]
    } else {
        vec![2, 4, 6, 9]
    };
    let n = cfg.rows(flood_data::DatasetKind::Osm);
    for d in dims {
        let table = crate::phases::time_phase("data-gen", || uniform::generate(n, d, cfg.seed));
        let w = dimensional_workload(&table, cfg.queries, cfg.target_selectivity(), cfg.seed);
        let results = run_all_indexes(
            &table,
            &w.train,
            &w.test,
            None,
            IndexSet {
                rtree: false,
                grid_file: d <= 6, // directory grows exponentially with d
            },
            cfg.optimizer(n),
        );
        let full_scan = results
            .iter()
            .find(|r| r.index == "Full Scan")
            .expect("full scan always runs")
            .avg_query;
        print!("d={d:<3}");
        for r in &results {
            print!(" {}={}", shorten(r), fmt_ms(r.avg_query));
        }
        println!();
        print!("     ratio vs full scan:");
        for r in &results {
            if r.index != "Full Scan" {
                print!(
                    " {}={:.1}x",
                    shorten(r),
                    full_scan.as_secs_f64() / r.avg_query.as_secs_f64().max(1e-12)
                );
            }
        }
        println!();
    }
}

fn shorten(r: &RunResult) -> String {
    r.index.replace(' ', "").chars().take(8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_workload_covers_k_1_through_d() {
        let t = uniform::generate(3_000, 4, 1);
        let w = dimensional_workload(&t, 200, 0.001, 1);
        let mut seen = [false; 5];
        for q in &w.train {
            let k = q.num_filtered();
            assert!((1..=4).contains(&k));
            // Filters land on the first k dimensions (paper §7.5).
            for d in 0..k {
                assert!(q.filters(d), "dims 0..k must be filtered");
            }
            seen[k] = true;
        }
        assert!(seen[1..=4].iter().all(|&s| s), "every k should appear");
    }

    #[test]
    fn per_dim_selectivity_shrinks_with_k() {
        let t = uniform::generate(5_000, 3, 2);
        let w = dimensional_workload(&t, 100, 0.001, 2);
        // A k=1 query's single range must be far narrower than a k=3
        // query's per-dim ranges (0.001 vs 0.1 of the domain).
        let width = |q: &flood_store::RangeQuery, d: usize| {
            let (lo, hi) = q.bound(d).expect("filtered");
            (hi - lo) as f64 / uniform::DOMAIN as f64
        };
        let k1: Vec<f64> = w
            .train
            .iter()
            .filter(|q| q.num_filtered() == 1)
            .map(|q| width(q, 0))
            .collect();
        let k3: Vec<f64> = w
            .train
            .iter()
            .filter(|q| q.num_filtered() == 3)
            .map(|q| width(q, 0))
            .collect();
        if !(k1.is_empty() || k3.is_empty()) {
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(avg(&k1) < avg(&k3) / 5.0, "{} vs {}", avg(&k1), avg(&k3));
        }
    }
}
