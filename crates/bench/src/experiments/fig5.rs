//! Fig 5: the per-point scan weight w_s is not constant — it varies with the
//! number of scanned points and the average scan run length (locality), the
//! motivation for learned weight models (§4.1.2).

use super::ExpConfig;
use flood_core::cost::calibration::{random_layout, CalibrationConfig};
use flood_core::{FloodConfig, FloodIndex};
use flood_data::DatasetKind;
use flood_store::CountVisitor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collected `(ws, points scanned, avg run length)` samples.
pub struct WsSamples {
    /// One entry per query per layout.
    pub samples: Vec<(f64, f64, f64)>,
}

/// Gather w_s measurements across random layouts.
pub fn collect(cfg: &ExpConfig) -> WsSamples {
    let (ds, w) = cfg.dataset_and_workload(DatasetKind::TpcH);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cal_cfg = CalibrationConfig {
        max_cells_log2: 12,
        ..Default::default()
    };
    let n_layouts = if cfg.full { 10 } else { 5 };
    let mut samples = Vec::new();
    for _ in 0..n_layouts {
        let layout = random_layout(ds.table.dims(), &mut rng, &cal_cfg);
        let index = FloodIndex::build(&ds.table, layout, FloodConfig::default());
        for q in &w.test {
            let mut v = CountVisitor::default();
            let (stats, times) = index.execute_profiled(q, None, &mut v);
            let ns = (stats.points_scanned + stats.points_in_exact_ranges) as f64;
            if ns < 1.0 {
                continue;
            }
            let ws = times.scan_ns as f64 / ns;
            samples.push((ws, ns, stats.avg_run_length()));
        }
    }
    WsSamples { samples }
}

/// Print w_s binned against both features.
pub fn run(cfg: &ExpConfig) {
    let data = collect(cfg);
    println!("\n=== Fig 5: w_s is not constant ===");
    print_binned("num scanned points", &data.samples, |s| s.1);
    print_binned("avg scan run length", &data.samples, |s| s.2);
    let (min, max) = data
        .samples
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(mn, mx), s| {
            (mn.min(s.0), mx.max(s.0))
        });
    println!(
        "w_s range across queries: {min:.2} – {max:.2} ns/point ({:.1}x spread)",
        max / min.max(1e-9)
    );
}

fn print_binned(label: &str, samples: &[(f64, f64, f64)], key: impl Fn(&(f64, f64, f64)) -> f64) {
    println!("\nw_s vs {label} (log10 bins):");
    println!("{:<18} {:>8} {:>14}", "bin", "queries", "avg w_s (ns)");
    let mut bins: std::collections::BTreeMap<i32, (f64, usize)> = Default::default();
    for s in samples {
        let k = key(s).max(1.0).log10().floor() as i32;
        let e = bins.entry(k).or_insert((0.0, 0));
        e.0 += s.0;
        e.1 += 1;
    }
    for (k, (sum, n)) in bins {
        println!("10^{:<15} {:>8} {:>14.2}", k, n, sum / n as f64);
    }
}
