//! Fig 16: sampling the query workload — learning time and resulting query
//! time as the optimizer's query-sample size varies (§7.7). "Since queries
//! within each type have similar characteristics … Flood only requires a
//! few queries of each type to learn a good layout."

use super::ExpConfig;
use flood_core::{FloodBuilder, LayoutOptimizer, OptimizerConfig};
use flood_data::DatasetKind;
use std::time::Instant;

/// One measurement row.
pub struct QuerySampleRow {
    /// Query-sample size used for learning.
    pub sample: usize,
    /// Mean layout-learning time (s).
    pub learn_s: f64,
    /// Mean test query time (ms) and standard deviation over trials.
    pub query_ms: (f64, f64),
}

/// Run one dataset's sweep.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<QuerySampleRow> {
    let (ds, w) = cfg.dataset_and_workload(kind);
    let n = ds.table.len();
    // The paper's point is that ~5 queries per type suffice; the default
    // sweep tops out at 50 learning queries, --full at the whole train set.
    let top = if cfg.full { w.train.len() } else { 50 };
    let mut samples: Vec<usize> = [5usize, 10, 25, top]
        .iter()
        .copied()
        .filter(|&s| s <= w.train.len())
        .collect();
    samples.dedup();
    let trials = if cfg.full { 3 } else { 2 };
    let mut out = Vec::new();
    for s in samples {
        let mut learns = Vec::new();
        let mut queries = Vec::new();
        for trial in 0..trials {
            let opt_cfg = OptimizerConfig {
                query_sample: s,
                seed: cfg.seed.wrapping_add(100 + trial as u64),
                ..cfg.optimizer(n)
            };
            let optimizer = LayoutOptimizer::with_config(
                crate::harness::calibrated_cost_model().clone(),
                opt_cfg,
            );
            let t0 = Instant::now();
            let learned = optimizer.optimize(&ds.table, &w.train);
            learns.push(t0.elapsed().as_secs_f64());
            let index = FloodBuilder::new().layout(learned.layout).build(&ds.table);
            // Through run_workload so --threads and phase accounting apply.
            let (avg, _) = crate::harness::run_workload(&index, &w.test, None);
            queries.push(avg.as_secs_f64() * 1e3);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let m = mean(&queries);
        let std =
            (queries.iter().map(|q| (q - m) * (q - m)).sum::<f64>() / queries.len() as f64).sqrt();
        out.push(QuerySampleRow {
            sample: s,
            learn_s: mean(&learns),
            query_ms: (m, std),
        });
    }
    out
}

/// Print the sweep — the smallest and largest dataset by default, all four
/// with `--full` (every dataset tells the same story: a handful of learning
/// queries already finds the good layout).
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 16: query-sample size vs learning & query time ===");
    let kinds: &[DatasetKind] = if cfg.full {
        &DatasetKind::ALL
    } else {
        &[DatasetKind::Sales, DatasetKind::TpcH]
    };
    for &kind in kinds {
        println!("\n--- {} ---", kind.name());
        println!(
            "{:>10} {:>12} {:>18}",
            "queries", "learn (s)", "query (ms ± std)"
        );
        for row in run_dataset(cfg, kind) {
            println!(
                "{:>10} {:>12.3} {:>12.3} ± {:.3}",
                row.sample, row.learn_s, row.query_ms.0, row.query_ms.1
            );
        }
    }
}
