//! Observability overhead: what does `flood-obs` instrumentation cost on
//! the query path?
//!
//! Two [`FloodServer`]s are built from the same table, workload, and seed
//! — byte-identical layouts — differing only in `ServeConfig::metrics`.
//! The same closed-loop traffic is then driven against both in
//! **interleaved trials** (off/on, on/off, …) so slow machine-state drift
//! (frequency scaling, page cache, a noisy neighbour on a 1-vCPU runner)
//! lands on both sides equally. Each trial reports an exact
//! sort-and-index p50 — deliberately *not* the `flood-obs` histogram, so
//! the instrument under test is not also the measuring device — and the
//! headline number is the **median** per-trial ratio, robust to a single
//! preempted trial.
//!
//! The budget the design doc commits to (ARCHITECTURE.md, Observability):
//! metrics on = two clock reads plus a handful of relaxed atomic RMWs per
//! query, ≤5% p50 penalty on release builds. CI gates on the reported
//! `obs.overhead.p50_pct` metric.

use super::ExpConfig;
use crate::harness::{calibrated_cost_model, exec_threads};
use crate::phases::time_phase;
use crate::report;
use flood_core::{AdaptiveConfig, FloodConfig, LayoutOptimizer};
use flood_data::DatasetKind;
use flood_serve::{FloodServer, ServeConfig};
use flood_store::{CountVisitor, RangeQuery};
use std::time::Instant;

/// What one obs run measured (returned for the smoke test's asserts).
pub struct ObsSummary {
    /// Median per-trial exact p50, metrics on, nanoseconds.
    pub p50_on_ns: u64,
    /// Median per-trial exact p50, metrics off, nanoseconds.
    pub p50_off_ns: u64,
    /// Median per-trial (on/off − 1) × 100 — the CI-gated number.
    pub overhead_pct: f64,
    /// Interleaved trials run.
    pub trials: usize,
    /// Queries the instrumented server's own counter saw (cross-checked
    /// against the samples we drove).
    pub queries_counted: u64,
}

/// Drive `samples` closed-loop requests (cycling `queries`) and return the
/// per-request latencies.
fn drive(server: &FloodServer, queries: &[RangeQuery], samples: usize) -> Vec<u64> {
    let mut ns = Vec::with_capacity(samples);
    'outer: loop {
        for q in queries {
            let mut v = CountVisitor::default();
            let t = Instant::now();
            server.execute(q, None, &mut v);
            ns.push(t.elapsed().as_nanos() as u64);
            if ns.len() >= samples {
                break 'outer;
            }
        }
    }
    ns
}

/// Exact (sorted, nearest-rank) p50 — the control-side estimator, kept
/// independent of the histogram under test.
fn exact_p50(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[(ns.len() - 1) / 2]
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    xs[(xs.len() - 1) / 2]
}

fn median_u64(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[(xs.len() - 1) / 2]
}

/// Run the overhead measurement; the returned summary carries every number
/// the report emits.
pub fn run_obs(cfg: &ExpConfig) -> ObsSummary {
    let (ds, w) = cfg.dataset_and_workload(DatasetKind::Sales);
    let n = ds.table.len();
    let threads = match exec_threads() {
        1 => 0,
        t => t,
    };
    let serve_cfg = |metrics: bool| ServeConfig {
        adaptive: AdaptiveConfig {
            // A huge window/cadence: adaptation must never fire inside a
            // measured trial, so both servers do identical work per query
            // (execute + observe) and differ only in telemetry.
            window: 120,
            check_every: usize::MAX / 2,
            degradation_factor: 1.25,
            share_cache: true,
        },
        batch: 32,
        threads,
        metrics,
    };
    let build = |metrics: bool| {
        FloodServer::build(
            &ds.table,
            &w.train,
            LayoutOptimizer::with_config(calibrated_cost_model().clone(), cfg.optimizer(n)),
            FloodConfig::default(),
            serve_cfg(metrics),
        )
    };
    let off = time_phase("layout-opt", || build(false));
    let on = time_phase("layout-opt", || build(true));

    // Odd trial count so the median is a real trial; 9 tolerates four
    // preempted/noisy trials on a 1-vCPU runner.
    let trials = 9usize;
    let per_trial = (cfg.queries * 20).clamp(200, 2_000);
    let t0 = Instant::now();
    // Warm both paths (page cache, branch predictors, lazy allocations)
    // before anything is recorded.
    drive(&off, &w.test, per_trial.min(200));
    drive(&on, &w.test, per_trial.min(200));

    let mut p50_off = Vec::with_capacity(trials);
    let mut p50_on = Vec::with_capacity(trials);
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        // Alternate which server goes first so any monotone machine drift
        // cancels across trials instead of biasing one side.
        let (a, b) = if t % 2 == 0 { (&off, &on) } else { (&on, &off) };
        let ns_a = exact_p50(drive(a, &w.test, per_trial));
        let ns_b = exact_p50(drive(b, &w.test, per_trial));
        let (o, i) = if t % 2 == 0 {
            (ns_a, ns_b)
        } else {
            (ns_b, ns_a)
        };
        p50_off.push(o);
        p50_on.push(i);
        ratios.push(i as f64 / o.max(1) as f64);
    }
    crate::phases::record_phase("query-exec", t0.elapsed());

    let overhead_pct = (median_f64(ratios) - 1.0) * 100.0;
    let snap = on
        .metrics_snapshot()
        .expect("instrumented server has metrics");
    let queries_counted = snap.counter("serve", "queries").expect("queries counter");
    assert!(
        off.metrics_snapshot().is_none(),
        "the control server must carry zero telemetry"
    );
    // Expose the instrumented server's counters through `repro --metrics`.
    if let Some(m) = on.metrics() {
        flood_obs::metrics::global().absorb(m.registry());
    }
    ObsSummary {
        p50_on_ns: median_u64(p50_on),
        p50_off_ns: median_u64(p50_off),
        overhead_pct,
        trials,
        queries_counted,
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== observability overhead (flood-obs on the query path) ===");
    let s = run_obs(cfg);
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "trials", "p50 off(ns)", "p50 on(ns)", "penalty"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>9.2}%",
        s.trials, s.p50_off_ns, s.p50_on_ns, s.overhead_pct,
    );
    println!(
        "median of {} interleaved trials; instrumented server counted {} queries. \
         budget: ≤5% p50 on release builds (CI gates obs.overhead.p50_pct).",
        s.trials, s.queries_counted,
    );
    report::metric("obs.overhead.p50_pct", s.overhead_pct, "%");
    report::metric("obs.on.p50_ns", s.p50_on_ns as f64, "ns");
    report::metric("obs.off.p50_ns", s.p50_off_ns as f64, "ns");
    report::metric("obs.trials", s.trials as f64, "count");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The overhead harness end to end at tiny scale: both servers serve,
    /// the instrumented one counts every driven request, and the headline
    /// ratio is a finite number. The ≤5% budget itself is only meaningful
    /// on release builds — CI gates it from the `repro obs --json` record —
    /// so here the bound is a loose debug-mode sanity ceiling.
    #[test]
    fn overhead_harness_measures_and_counts() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 8,
            ..Default::default()
        };
        let s = run_obs(&cfg);
        assert_eq!(s.trials, 9);
        assert!(s.p50_on_ns > 0 && s.p50_off_ns > 0);
        assert!(s.overhead_pct.is_finite());
        assert!(
            s.overhead_pct < 100.0,
            "metrics on the hot path must stay a few atomics, not a lock: {:.1}%",
            s.overhead_pct
        );
        // warm-up (200) + 9 trials × per-trial samples all hit the counter.
        let per_trial = (cfg.queries * 20).clamp(200, 2_000) as u64;
        assert_eq!(s.queries_counted, 200 + 9 * per_trial);
    }
}
