//! Fig 8: index size vs query time (the Pareto frontier). Baselines sweep
//! their page size; Flood sweeps its cell budget; the paper's point is that
//! Flood sits below-left of everything else.

use super::ExpConfig;
use crate::harness::{fmt_bytes, fmt_ms, learn_flood, measure};
use flood_baselines::{Hyperoctree, KdTree, UbTree, ZOrderIndex};
use flood_core::FloodBuilder;
use flood_data::DatasetKind;
use flood_store::MultiDimIndex;
use std::time::Instant;

/// Run the sweep on one dataset and print (size, time) series per index.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) {
    let (ds, w) = cfg.dataset_and_workload(kind);
    let table = &ds.table;
    let dims = crate::harness::dims_by_selectivity(table, &w.train);
    let filtered: Vec<usize> = dims
        .iter()
        .copied()
        .filter(|&d| w.train.iter().any(|q| q.filters(d)))
        .collect();
    let agg = Some(ds.kind.agg_dim());
    let pages = if cfg.full {
        vec![64usize, 256, 1024, 4096, 16_384]
    } else {
        vec![256usize, 1_024, 4_096]
    };

    println!("\n--- {}: size vs query time ---", ds.name());
    println!("{:<14} {:>10} {:>14}", "index", "size", "avg query(ms)");
    for &p in &pages {
        let idx = ZOrderIndex::build_with_page_size(table, filtered.clone(), p);
        report(&idx, &w.test, agg);
        let idx = UbTree::build_with_page_size(table, filtered.clone(), p);
        report(&idx, &w.test, agg);
        let idx = Hyperoctree::build_with_page_size(table, filtered.clone(), p);
        report(&idx, &w.test, agg);
        let idx = KdTree::build_with_page_size(table, filtered.clone(), p);
        report(&idx, &w.test, agg);
    }
    // Flood: sweep the total-cell budget around the learned layout.
    let flood = learn_flood(table, &w.train, cfg.optimizer(table.len()));
    let learned = flood.layout().clone();
    report(&flood, &w.test, agg);
    for factor in [0.25f64, 4.0] {
        let k = learned.cols().len().max(1) as f64;
        let scaled: Vec<usize> = learned
            .cols()
            .iter()
            .map(|&c| ((c as f64 * factor.powf(1.0 / k)).round() as usize).max(1))
            .collect();
        if scaled == learned.cols() {
            continue;
        }
        let t0 = Instant::now();
        let idx = FloodBuilder::new()
            .layout(learned.with_cols(scaled))
            .build(table);
        let _ = t0.elapsed();
        report(&idx, &w.test, agg);
    }
}

fn report(idx: &(dyn MultiDimIndex + Sync), test: &[flood_store::RangeQuery], agg: Option<usize>) {
    let r = measure(idx, test, agg, Default::default());
    println!(
        "{:<14} {:>10} {:>14}",
        r.index,
        fmt_bytes(r.index_size),
        fmt_ms(r.avg_query)
    );
}

/// All four datasets.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 8: index size vs query time (Pareto frontier) ===");
    for kind in DatasetKind::ALL {
        run_dataset(cfg, kind);
    }
}
