//! §7.1 sanity check: our column store's full-scan throughput vs an ideal
//! tight loop over raw `Vec<u64>` columns (the stand-in for the paper's
//! MonetDB comparison — both run single-threaded, uncompressed scans).
//! The paper reports its store within 5% of MonetDB; ours should be within
//! a few percent of the raw loop.

use super::ExpConfig;
use flood_data::{DatasetKind, Workload, WorkloadKind};
use flood_store::{scan_full, CountVisitor, ScanStats};
use std::time::Instant;

/// Run the comparison; returns (store ns/row, raw ns/row).
#[allow(clippy::needless_range_loop)] // the raw loop indexes parallel columns
pub fn compare(cfg: &ExpConfig) -> (f64, f64) {
    let kind = DatasetKind::TpcH;
    let ds = crate::phases::time_phase("data-gen", || kind.generate(cfg.rows(kind), cfg.seed));
    let w = Workload::generate(
        WorkloadKind::OlapUniform,
        &ds,
        if cfg.full { 150 } else { 50 },
        cfg.target_selectivity(),
        cfg.seed,
    );
    // Raw columns for the ideal-loop variant.
    let raw: Vec<Vec<u64>> = (0..ds.table.dims())
        .map(|d| ds.table.column(d).to_vec())
        .collect();

    // Our store.
    let t0 = Instant::now();
    let mut total_store = 0u64;
    for q in &w.test {
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_full(&ds.table, q, None, &mut v, &mut s);
        total_store += v.count;
    }
    let store_ns = t0.elapsed().as_nanos() as f64 / (ds.table.len() as f64 * w.test.len() as f64);

    // Ideal loop: same access pattern, hand-rolled.
    let t0 = Instant::now();
    let mut total_raw = 0u64;
    for q in &w.test {
        let filtered = q.filtered_dims();
        let mut count = 0u64;
        'rows: for r in 0..ds.table.len() {
            for &d in &filtered {
                let v = raw[d][r];
                let (lo, hi) = q.bound(d).expect("filtered");
                if v < lo || v > hi {
                    continue 'rows;
                }
            }
            count += 1;
        }
        total_raw += count;
    }
    let raw_ns = t0.elapsed().as_nanos() as f64 / (ds.table.len() as f64 * w.test.len() as f64);
    assert_eq!(total_store, total_raw, "scan results must agree");
    (store_ns, raw_ns)
}

/// Print the ratio.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== §7.1: column-store scan throughput sanity ===");
    let (store, raw) = compare(cfg);
    println!("our store: {store:.3} ns/row/query; ideal raw loop: {raw:.3} ns/row/query");
    println!(
        "overhead: {:+.1}% (paper reports within 5% of MonetDB)",
        (store / raw - 1.0) * 100.0
    );
}
