//! Fig 15: sampling the dataset — learning time and resulting query time as
//! the optimizer's data-sample size varies (§7.7).

use super::ExpConfig;
use flood_core::{FloodBuilder, LayoutOptimizer, OptimizerConfig};
use flood_data::DatasetKind;
use std::time::Instant;

/// One measurement row.
pub struct SampleRow {
    /// Data-sample size used.
    pub sample: usize,
    /// Mean layout-learning time (s).
    pub learn_s: f64,
    /// Mean test query time (ms) and its standard deviation over trials.
    pub query_ms: (f64, f64),
}

/// Run one dataset's sweep.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<SampleRow> {
    let (ds, w) = cfg.dataset_and_workload(kind);
    let n = ds.table.len();
    // The paper sweeps up to the full dataset; learning time grows
    // linearly with the sample while query time stays flat, so the sweep
    // caps at a large-but-bounded sample unless --full.
    let top = if cfg.full { n } else { (n / 8).min(12_000) };
    let samples: Vec<usize> = [n / 200, n / 20, top]
        .iter()
        .copied()
        .filter(|&s| s >= 100)
        .collect();
    let trials = if cfg.full { 3 } else { 2 };
    let mut out = Vec::new();
    for s in samples {
        let mut learns = Vec::new();
        let mut queries = Vec::new();
        for trial in 0..trials {
            let opt_cfg = OptimizerConfig {
                data_sample: s,
                seed: cfg.seed.wrapping_add(trial as u64),
                ..cfg.optimizer(n)
            };
            let optimizer = LayoutOptimizer::with_config(
                crate::harness::calibrated_cost_model().clone(),
                opt_cfg,
            );
            let t0 = Instant::now();
            let learned = optimizer.optimize(&ds.table, &w.train);
            learns.push(t0.elapsed().as_secs_f64());
            let index = FloodBuilder::new().layout(learned.layout).build(&ds.table);
            // Through run_workload so --threads and phase accounting apply.
            let (avg, _) = crate::harness::run_workload(&index, &w.test, None);
            queries.push(avg.as_secs_f64() * 1e3);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let m = mean(&queries);
        let std =
            (queries.iter().map(|q| (q - m) * (q - m)).sum::<f64>() / queries.len() as f64).sqrt();
        out.push(SampleRow {
            sample: s,
            learn_s: mean(&learns),
            query_ms: (m, std),
        });
    }
    out
}

/// Print the sweep — the smallest and largest dataset by default, all four
/// with `--full` (each dataset repeats the same shape: learning time grows
/// with the sample, query time stays flat almost immediately).
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 15: data-sample size vs learning & query time ===");
    let kinds: &[DatasetKind] = if cfg.full {
        &DatasetKind::ALL
    } else {
        &[DatasetKind::Sales, DatasetKind::TpcH]
    };
    for &kind in kinds {
        println!("\n--- {} ---", kind.name());
        println!(
            "{:>10} {:>12} {:>18}",
            "sample", "learn (s)", "query (ms ± std)"
        );
        for row in run_dataset(cfg, kind) {
            println!(
                "{:>10} {:>12.3} {:>12.3} ± {:.3}",
                row.sample, row.learn_s, row.query_ms.0, row.query_ms.1
            );
        }
    }
}
