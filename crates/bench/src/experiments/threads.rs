//! Thread scaling (§8 "further optimizations", Fig 15/16 territory):
//! single-query latency with partitioned scans, and batched-query
//! throughput, at 1/2/4/8 workers.
//!
//! Runs on the high-dimensionality generator (12 dims, mixed archetypes)
//! so parallelism is exercised beyond the 2–3-dim stand-ins: wide filter
//! lists, skewed cell populations, unindexed residual checks. Flood (grid
//! over two selective dims) and the Full Scan yardstick are measured; the
//! speedup columns are relative to the 1-thread row of the same index.
//! Absolute speedups depend on the machine's core count — see BASELINES.md
//! for reference numbers and machine notes.

use super::ExpConfig;
use crate::harness::fmt_ms;
use crate::phases::{record_phase, time_phase};
use flood_baselines::FullScan;
use flood_core::{FloodBuilder, Layout};
use flood_data::datasets::highdim;
use flood_data::workloads::QueryBuilder;
use flood_exec::QueryExecutor;
use flood_store::{CountVisitor, PartitionedScan, RangeQuery};
use std::time::{Duration, Instant};

/// Worker counts swept, per the thread-scaling protocol.
pub const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// One index's scaling row at a worker count.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Workers used.
    pub threads: usize,
    /// Average single-query latency (partitioned scan).
    pub latency: Duration,
    /// Batched throughput over the whole workload, queries/second.
    pub batch_qps: f64,
}

/// Measure one partitioned index across the thread grid.
pub fn scaling_points(
    index: &dyn PartitionedScan,
    queries: &[RangeQuery],
    grid: &[usize],
) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &threads in grid {
        let exec = QueryExecutor::with_threads(threads);
        // Single-query latency: each query's scan split across the pool.
        let t0 = Instant::now();
        for q in queries {
            let (_, stats) = exec.execute::<CountVisitor>(index, q, None);
            std::hint::black_box(stats);
        }
        let latency_wall = t0.elapsed();
        record_phase("query-exec", latency_wall);
        let latency = latency_wall / queries.len().max(1) as u32;

        // Batched throughput: the whole workload scheduled at once.
        let t0 = Instant::now();
        let results = exec.execute_batch::<CountVisitor, _>(index, queries, None);
        let batch_wall = t0.elapsed();
        std::hint::black_box(&results);
        let batch_qps = queries.len() as f64 / batch_wall.as_secs_f64().max(1e-12);
        record_phase("query-exec", batch_wall);
        out.push(ScalingPoint {
            threads,
            latency,
            batch_qps,
        });
    }
    out
}

fn print_points(name: &str, points: &[ScalingPoint]) {
    let base = points.first().expect("grid is non-empty");
    println!("\n{name}");
    println!(
        "{:>8} {:>12} {:>9} {:>12} {:>9}",
        "threads", "query(ms)", "speedup", "batch(q/s)", "speedup"
    );
    for p in points {
        println!(
            "{:>8} {:>12} {:>8.2}x {:>12.0} {:>8.2}x",
            p.threads,
            fmt_ms(p.latency),
            base.latency.as_secs_f64() / p.latency.as_secs_f64().max(1e-12),
            p.batch_qps,
            p.batch_qps / base.batch_qps.max(1e-12),
        );
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    let d = if cfg.full { 16 } else { 12 };
    let n = (120_000.0 * if cfg.full { 2.0 } else { 1.0 } * cfg.scale) as usize;
    println!("\n=== thread scaling: parallel + batched execution (highdim d={d}, n={n}) ===");
    let table = time_phase("data-gen", || highdim::generate(n, d, cfg.seed));
    let templates = highdim::templates(d, cfg.target_selectivity());
    let weights = vec![1.0; templates.len()];
    let mut qb = QueryBuilder::new(&table, cfg.seed);
    let w = qb.workload(
        "highdim",
        &templates,
        &weights,
        cfg.queries,
        Some(cfg.target_selectivity()),
    );

    // Flood over two selective uniform dims, sorted by a third; remaining
    // dims are residual per-point checks — the wide-table scan shape.
    let flood = time_phase("index-build", || {
        FloodBuilder::new()
            .layout(Layout::new(vec![0, 2, 5], vec![16, 16]))
            .build(&table)
    });
    print_points(
        "Flood (grid 0,2 / sort 5)",
        &scaling_points(&flood, &w.test, &THREAD_GRID),
    );

    let full = time_phase("index-build", || FullScan::build(&table));
    print_points(
        "Full Scan (yardstick)",
        &scaling_points(&full, &w.test, &THREAD_GRID),
    );

    println!(
        "\nspeedups are relative to 1 thread on this machine \
         ({} hardware threads available)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_cover_grid_and_agree_across_threads() {
        let table = highdim::generate(4_000, 10, 1);
        let index = FullScan::build(&table);
        let queries: Vec<RangeQuery> = (0..6)
            .map(|i| RangeQuery::all(10).with_range(0, 0, u64::MAX / (i + 2)))
            .collect();
        let points = scaling_points(&index, &queries, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].threads, 1);
        for p in &points {
            assert!(p.batch_qps > 0.0);
            assert!(p.latency > Duration::ZERO);
        }
    }
}
