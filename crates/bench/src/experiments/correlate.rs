//! Correlation-aware layouts (Tsunami/COAX **extension** — beyond the
//! Flood paper): soft-FD collapse and exact-envelope tightening, on vs off.
//!
//! The [`highdim::correlated`] generator plants two host dimensions, each
//! with two dependents (`dep ≈ f(host) + noise`), plus independents. Every
//! workload template filters at least one dependent, so with correlation
//! **off** the optimizer must spend its cell budget across redundant
//! dimensions and projects rectangles over a diagonal support; with
//! correlation **on** the dependents collapse out of the grid, their
//! predicates route through the hosts, and the index tightens projections
//! through exact per-column envelopes.
//!
//! Three sweeps, each reporting median per-query latency for both modes:
//!
//! * **strength**: noise width from collapse-grade to undetectable — the
//!   speedup should shrink to ~1× as the dependency dissolves;
//! * **on/off ratio** at the strongest settings — the headline numbers
//!   (`correlate.clean.speedup` is gated ≥ 1.5× in CI; `strong` adds 1%
//!   broken rows on top and is recorded alongside — the calibrated cost
//!   model re-measures the machine each run, so learned layouts and
//!   ratios wobble more than `clean`'s);
//! * **outlier sensitivity**: broken-row rates from 0 to past the
//!   detection budget — exploitation must degrade gracefully, never
//!   diverge.
//!
//! Every query is executed in both modes and the counts are asserted
//! equal — result identity is enforced, not assumed.

use super::ExpConfig;
use crate::harness::{calibrated_cost_model, percentiles_from_ns};
use crate::phases::time_phase;
use crate::report::metric;
use flood_core::{CorrelationConfig, FloodBuilder, FloodIndex, LayoutOptimizer};
use flood_data::datasets::highdim;
use flood_data::workloads::QueryBuilder;
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, Table};
use std::time::Instant;

/// One generator setting in the sweep.
struct Setting {
    name: &'static str,
    noise_frac: f64,
    outlier_rate: f64,
}

const SWEEP: &[Setting] = &[
    // Strength sweep (1% broken rows throughout).
    Setting {
        name: "strong",
        noise_frac: 0.005,
        outlier_rate: 0.01,
    },
    Setting {
        name: "medium",
        noise_frac: 0.05,
        outlier_rate: 0.01,
    },
    Setting {
        name: "weak",
        noise_frac: 0.30,
        outlier_rate: 0.01,
    },
    // Outlier sensitivity at collapse-grade noise.
    Setting {
        name: "clean",
        noise_frac: 0.005,
        outlier_rate: 0.0,
    },
    Setting {
        name: "dirty",
        noise_frac: 0.005,
        outlier_rate: 0.05,
    },
];

/// Learn a layout and build the index with correlation on or off — both
/// the optimizer's collapse/re-weight pass and the index's envelope
/// tightening follow the same switch.
fn learn_build(
    table: &Table,
    train: &[RangeQuery],
    cfg: &ExpConfig,
    enabled: bool,
) -> (FloodIndex, String, Vec<usize>, Vec<usize>) {
    let mut ocfg = cfg.optimizer(table.len());
    // The stock experiment budget samples ~2% of the rows — enough for the
    // paper experiments' 4–6 indexed dims, but too coarse to justify fine
    // host grids once collapsing concentrates the cell budget on 2–3 dims.
    // Both modes get the same roomier sample so the comparison stays fair.
    ocfg.data_sample = (table.len() / 8).clamp(1_000, 20_000);
    ocfg.correlation.enabled = enabled;
    let optimizer = LayoutOptimizer::with_config(calibrated_cost_model().clone(), ocfg);
    let learned = time_phase("layout-opt", || optimizer.optimize(table, train));
    let ccfg = CorrelationConfig {
        enabled,
        ..Default::default()
    };
    let index = time_phase("index-build", || {
        FloodBuilder::new()
            .layout(learned.layout.clone())
            .correlation(ccfg)
            .build(table)
    });
    (
        index,
        learned.layout.to_string(),
        learned.collapsed,
        learned.reweighted,
    )
}

/// Median per-query latency (best of `reps` per query), mean points
/// scanned, and the per-query counts for the result-identity check.
fn measure(index: &FloodIndex, test: &[RangeQuery], reps: usize) -> (u64, u64, Vec<u64>) {
    let mut med_ns = Vec::with_capacity(test.len());
    let mut counts = Vec::with_capacity(test.len());
    let mut scanned = 0u64;
    for q in test {
        let mut best = u64::MAX;
        let mut count = 0;
        for rep in 0..reps.max(1) {
            let mut v = CountVisitor::default();
            let t0 = Instant::now();
            let stats = index.execute(q, None, &mut v);
            best = best.min(t0.elapsed().as_nanos() as u64);
            count = v.count;
            if rep == 0 {
                scanned += stats.points_scanned;
            }
        }
        med_ns.push(best);
        counts.push(count);
    }
    (
        percentiles_from_ns(&med_ns).p50,
        scanned / test.len().max(1) as u64,
        counts,
    )
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    let d = 8;
    let n = (80_000.0 * if cfg.full { 2.0 } else { 1.0 } * cfg.scale) as usize;
    let reps = if cfg.full { 7 } else { 5 };
    println!("\n=== correlate: soft-FD collapse on/off (highdim::correlated d={d}, n={n}) ===");
    println!(
        "{:>8} {:>7} {:>9} {:>12} {:>12} {:>9} {:>9} {:>9}  layout (on)",
        "setting",
        "noise",
        "outliers",
        "on p50(µs)",
        "off p50(µs)",
        "speedup",
        "on scan",
        "off scan"
    );

    for s in SWEEP {
        let table = time_phase("data-gen", || {
            highdim::correlated(n, d, cfg.seed, s.noise_frac, s.outlier_rate)
        });
        let templates = highdim::correlated_templates(d, cfg.target_selectivity());
        let weights = vec![1.0; templates.len()];
        let mut qb = QueryBuilder::new(&table, cfg.seed);
        let w = qb.workload(
            "correlated",
            &templates,
            &weights,
            cfg.queries,
            Some(cfg.target_selectivity()),
        );

        let (on, on_layout, collapsed, reweighted) = learn_build(&table, &w.train, cfg, true);
        let (off, _, _, _) = learn_build(&table, &w.train, cfg, false);

        let t0 = Instant::now();
        let (on_p50, on_scanned, on_counts) = measure(&on, &w.test, reps);
        let (off_p50, off_scanned, off_counts) = measure(&off, &w.test, reps);
        crate::phases::record_phase("query-exec", t0.elapsed());

        // Result identity: collapsing + envelope tightening must never
        // change what a query returns, outliers and all.
        assert_eq!(
            on_counts, off_counts,
            "correlation-on diverged from off at setting {}",
            s.name
        );

        let speedup = off_p50 as f64 / (on_p50 as f64).max(1.0);
        let mut collapsed_note = if collapsed.is_empty() {
            String::new()
        } else {
            format!("  [collapsed {collapsed:?}]")
        };
        if !reweighted.is_empty() {
            collapsed_note.push_str(&format!("  [reweighted {reweighted:?}]"));
        }
        println!(
            "{:>8} {:>7.3} {:>8.0}% {:>12.1} {:>12.1} {:>8.2}x {:>9} {:>9}  {on_layout}{collapsed_note}",
            s.name,
            s.noise_frac,
            s.outlier_rate * 100.0,
            on_p50 as f64 / 1e3,
            off_p50 as f64 / 1e3,
            speedup,
            on_scanned,
            off_scanned,
        );
        metric(
            &format!("correlate.{}.on_us", s.name),
            on_p50 as f64 / 1e3,
            "us",
        );
        metric(
            &format!("correlate.{}.off_us", s.name),
            off_p50 as f64 / 1e3,
            "us",
        );
        metric(&format!("correlate.{}.speedup", s.name), speedup, "x");
        metric(
            &format!("correlate.{}.collapsed_dims", s.name),
            collapsed.len() as f64,
            "dims",
        );
    }
    println!(
        "\nresults are asserted identical between modes on every query; \
         speedups are medians on this machine (see BASELINES.md)"
    );
}
