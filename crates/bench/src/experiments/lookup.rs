//! §6 lookup-latency comparison: time to *identify* the relevant cells /
//! pages, excluding scanning — "Flood with flattening takes 0.46ms to
//! identify relevant grid cells (excluding refinement), while the k-d tree
//! and hyperoctree take 8.9ms (20×) and 1.8ms (4×) to identify matching
//! pages".
//!
//! Flood's side is its projection phase (per the paper, refinement
//! excluded); the trees' side is their traversal time, measured as
//! TT − ST with scan-kernel timing enabled.

use super::ExpConfig;
use crate::harness::{dims_by_selectivity, learn_flood, measure};
use flood_baselines::{Hyperoctree, KdTree};
use flood_data::DatasetKind;
use flood_store::scan::set_scan_timing;
use flood_store::CountVisitor;

/// Run the comparison on TPC-H; returns (name, identification ms/query).
pub fn compare(cfg: &ExpConfig) -> Vec<(String, f64)> {
    let (ds, w) = cfg.dataset_and_workload(DatasetKind::TpcH);
    let dims = dims_by_selectivity(&ds.table, &w.train);
    let filtered: Vec<usize> = dims
        .iter()
        .copied()
        .filter(|&d| w.train.iter().any(|q| q.filters(d)))
        .collect();
    let mut out = Vec::new();

    // Flood: projection time only.
    let flood = learn_flood(&ds.table, &w.train, cfg.optimizer(ds.table.len()));
    let mut projection_ns = 0u64;
    for q in &w.test {
        let mut v = CountVisitor::default();
        let (_, times) = flood.execute_profiled(q, None, &mut v);
        projection_ns += times.projection_ns;
    }
    out.push((
        "Flood".to_string(),
        projection_ns as f64 / 1e6 / w.test.len().max(1) as f64,
    ));

    // Trees: traversal time = TT − ST.
    let kd = KdTree::build(&ds.table, filtered.clone());
    let oct = Hyperoctree::build(&ds.table, filtered);
    set_scan_timing(true);
    for (name, r) in [
        ("K-d tree", measure(&kd, &w.test, None, Default::default())),
        (
            "Hyperoctree",
            measure(&oct, &w.test, None, Default::default()),
        ),
    ] {
        let st_ms = r.stats.scan_ns as f64 / 1e6 / r.queries.max(1) as f64;
        let tt_ms = r.avg_query.as_secs_f64() * 1e3;
        out.push((name.to_string(), (tt_ms - st_ms).max(0.0)));
    }
    set_scan_timing(false);
    out
}

/// Print it.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== §6: cell/page identification latency (tpc-h) ===");
    let rows = compare(cfg);
    let flood = rows
        .iter()
        .find(|(n, _)| n == "Flood")
        .expect("Flood present")
        .1;
    println!("{:<14} {:>16} {:>10}", "index", "identify (ms)", "vs Flood");
    for (name, it) in &rows {
        println!("{name:<14} {it:>16.4} {:>9.1}x", it / flood.max(1e-9));
    }
}
