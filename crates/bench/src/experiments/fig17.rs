//! Fig 17: per-cell CDF models (§7.8) — (a) PLM vs RMI vs binary search on
//! OSM timestamps and staggered-uniform data; (b) the δ size/speed tradeoff.

use super::ExpConfig;
use flood_data::datasets::osm;
use flood_learned::plm::PiecewiseLinearModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Staggered uniform data: "uniform over identically sized but disjoint
/// intervals".
pub fn staggered_uniform(n: usize, intervals: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = 1_000_000u64;
    let gap = 9_000_000u64;
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            let i = rng.gen_range(0..intervals as u64);
            i * (width + gap) + rng.gen_range(0..width)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Average lookup time (ns) of `lookup(probe)` over the probe set.
fn time_lookups(probes: &[u64], mut lookup: impl FnMut(u64) -> usize) -> f64 {
    let t0 = Instant::now();
    let mut sink = 0usize;
    for &p in probes {
        sink = sink.wrapping_add(lookup(p));
    }
    let elapsed = t0.elapsed().as_nanos() as f64 / probes.len().max(1) as f64;
    std::hint::black_box(sink);
    elapsed
}

fn probes(values: &[u64], n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| values[rng.gen_range(0..values.len())])
        .collect()
}

/// (a) Compare the three per-cell model options on one sorted value set.
pub fn compare(values: &[u64], label: &str, n_probes: usize, seed: u64) {
    let p = probes(values, n_probes, seed);
    let plm = PiecewiseLinearModel::build_default(values);
    let rmi = Rmi::build(values, RmiConfig::default());
    let t_plm = time_lookups(&p, |v| plm.lookup_lb(v, |i| values[i]));
    let t_rmi = time_lookups(&p, |v| rmi.lookup_lb(v, |i| values[i]));
    let t_bin = time_lookups(&p, |v| values.partition_point(|&x| x < v));
    println!(
        "{label:<22} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>10}",
        t_plm,
        t_rmi,
        t_bin,
        plm.num_segments(),
        crate::harness::fmt_bytes(plm.size_bytes()),
    );
}

/// `base × scale`, floored so models still have something to learn.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(2_000)
}

/// Human label for a value count ("30k", "1.0M").
fn fmt_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else {
        format!("{}k", n / 1_000)
    }
}

/// Run both panels.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 17a: per-cell model lookup time (ns) ===");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "dataset", "PLM", "RMI", "binary", "segments", "PLM size"
    );
    let n_probes = if cfg.full {
        200_000
    } else {
        scaled(50_000, cfg.scale)
    };
    // OSM timestamps (paper: 30k / 6M / 105M). The learned models' win over
    // binary search is a cache effect — it appears once the array outgrows
    // the LLC — so --full adds a 16M-value point.
    let mut osm_sizes = vec![
        scaled(30_000, cfg.scale),
        scaled(300_000, cfg.scale),
        scaled(1_000_000, cfg.scale),
    ];
    if cfg.full {
        osm_sizes.push(16_000_000);
    }
    // Tiny --scale values can collapse sizes onto scaled()'s floor; the
    // sizes are ascending, so one dedup keeps each row distinct.
    osm_sizes.dedup();
    for n in osm_sizes {
        let ts = crate::phases::time_phase("data-gen", || {
            let table = osm::generate(n, cfg.seed);
            let mut ts: Vec<u64> = (0..table.len())
                .map(|r| table.value(r, osm::COL_TIMESTAMP))
                .collect();
            ts.sort_unstable();
            ts
        });
        compare(&ts, &format!("osm-{}", fmt_count(n)), n_probes, cfg.seed);
    }
    // Staggered uniform (paper: 500k / 10M).
    let mut st_sizes = vec![scaled(500_000, cfg.scale), scaled(1_000_000, cfg.scale)];
    if cfg.full {
        st_sizes.push(10_000_000);
    }
    st_sizes.dedup();
    for n in st_sizes {
        let vals = crate::phases::time_phase("data-gen", || staggered_uniform(n, 20, cfg.seed));
        compare(
            &vals,
            &format!("staggered-{}", fmt_count(n)),
            n_probes,
            cfg.seed,
        );
    }

    let plm_n = scaled(300_000, cfg.scale);
    println!(
        "\n=== Fig 17b: δ tradeoff (PLM size vs lookup time, osm-{}) ===",
        fmt_count(plm_n)
    );
    let ts = crate::phases::time_phase("data-gen", || {
        let table = osm::generate(plm_n, cfg.seed);
        let mut ts: Vec<u64> = (0..table.len())
            .map(|r| table.value(r, osm::COL_TIMESTAMP))
            .collect();
        ts.sort_unstable();
        ts
    });
    let p = probes(&ts, n_probes, cfg.seed);
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "delta", "segments", "size", "lookup(ns)"
    );
    for delta in [2.0, 10.0, 50.0, 200.0, 1_000.0] {
        let plm = PiecewiseLinearModel::build(&ts, delta);
        let t = time_lookups(&p, |v| plm.lookup_lb(v, |i| ts[i]));
        println!(
            "{delta:>8} {:>10} {:>12} {t:>10.1}",
            plm.num_segments(),
            crate::harness::fmt_bytes(plm.size_bytes()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_uniform_is_sorted_with_gaps() {
        let v = staggered_uniform(10_000, 20, 7);
        assert_eq!(v.len(), 10_000);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        // Every value sits inside one of the 20 disjoint intervals.
        for &x in v.iter().step_by(97) {
            let within = x % 10_000_000;
            assert!(within < 1_000_000, "value {x} falls in a gap");
        }
    }
}
