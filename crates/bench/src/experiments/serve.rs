//! Serving under live adaptation: latency percentiles in steady state and
//! *across* a layout swap (`flood-serve`; §8's concurrency + shifting
//! workloads, composed).
//!
//! A seed-deterministic load generator (the drift workload) drives a
//! [`FloodServer`] three ways:
//!
//! 1. **steady state** — closed-loop per-request traffic on the trained
//!    phase, measured per request;
//! 2. **across a swap** — the workload shifts to the next drift phase and
//!    a background thread re-learns + rebuilds + publishes while the
//!    foreground keeps serving closed-loop; every request that lands
//!    inside the swap window is measured. The claim under test is that
//!    the epoch-swap design keeps the serving path free of
//!    synchronization stalls — readers never wait on the publisher. Two
//!    effects that are *not* the swap protocol's doing must be
//!    controlled for. First, the workload: during the window the server
//!    answers shifted queries on the not-yet-replaced layout, so the
//!    **stale** row (same queries, same old layout, idle) is the real
//!    "before" — comparing against tuned steady state would charge the
//!    swap for the drift degradation it exists to fix. Second, the CPU:
//!    with fewer cores than threads the re-learn steals timeslices and a
//!    preempted query measures the scheduling quantum, so the
//!    **contended** control replays the same queries against a pinned
//!    pre-swap snapshot while a dummy thread applies re-learn-shaped
//!    pressure (memory streaming + allocation churn) — equal contention,
//!    none of the swap machinery. The headline ratio is during-swap p99
//!    over contended p99: anything well above 1 would be a stall the
//!    swap protocol itself introduced;
//! 3. **open loop** — the full drift stream through batched admission
//!    ([`FloodServer::serve_stream`]) with the adaptation turn polled
//!    between batches, reporting throughput and the swaps the background
//!    loop published on its own.
//!
//! Wall-clock percentiles are inherently run-to-run noisy; the reported
//! shape (swap ≈ contended, not ≫) is the regression signal BASELINES.md
//! records.

use super::ExpConfig;
use crate::harness::{calibrated_cost_model, exec_threads};
use crate::phases::time_phase;
use crate::report;
use flood_core::{AdaptiveConfig, FloodConfig, LayoutOptimizer};
use flood_data::workloads::drift::{DriftConfig, DriftMode, DriftingWorkload};
use flood_data::DatasetKind;
use flood_serve::{FloodServer, ServeConfig};
use flood_store::{CountVisitor, RangeQuery};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Latency percentiles over one measured window, nanoseconds.
#[derive(Debug, Clone, Copy)]
struct Percentiles {
    p50: u64,
    p99: u64,
    p999: u64,
    samples: usize,
}

impl Percentiles {
    /// Derive percentiles through the shared `flood-obs` histogram — the
    /// same estimator the server reports at runtime, so bench tables and
    /// `metrics_snapshot()` can never disagree on methodology. (Accuracy
    /// vs an exact sort is pinned in `harness::tests`.)
    fn from_ns(ns: Vec<u64>) -> Self {
        assert!(!ns.is_empty(), "percentiles need at least one sample");
        let s = crate::harness::percentiles_from_ns(&ns);
        Percentiles {
            p50: s.p50,
            p99: s.p99,
            p999: s.p999,
            samples: s.count as usize,
        }
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// What one serve run measured (returned for the smoke test's asserts).
pub struct ServeSummary {
    steady: Percentiles,
    steady_qps: f64,
    /// Shifted queries on the stale layout, idle — the workload control.
    stale: Percentiles,
    /// Shifted queries on the (pinned) stale layout under a dummy burner —
    /// the contention control.
    contended: Percentiles,
    swap: Percentiles,
    swap_wall: Duration,
    /// during-swap p99 / contended p99 — the headline ratio (≈1 means the
    /// swap protocol adds no stalls beyond CPU sharing).
    pub p99_ratio: f64,
    /// during-swap p99 / stale-idle p99 — contention included.
    pub p99_ratio_idle: f64,
    pub openloop_qps: f64,
    /// Swaps published across the whole run (1 forced + background).
    pub swaps: u64,
    pub submitted: u64,
    pub completed: u64,
    /// The server's full telemetry at end of run (embedded in `--json`).
    pub metrics: Option<flood_obs::MetricsSnapshot>,
}

/// Closed-loop measurement: serve `queries` cycled until `min_samples`
/// requests have been timed (or `until` reports done, whichever is later).
fn closed_loop(
    server: &FloodServer,
    queries: &[RangeQuery],
    min_samples: usize,
    until: Option<&AtomicBool>,
) -> (Vec<u64>, Duration) {
    let mut ns = Vec::with_capacity(min_samples);
    let t0 = Instant::now();
    'outer: loop {
        for q in queries {
            let mut v = CountVisitor::default();
            let t = Instant::now();
            server.execute(q, None, &mut v);
            ns.push(t.elapsed().as_nanos() as u64);
            let done_waiting = until.map(|f| f.load(Ordering::Acquire)).unwrap_or(true);
            if ns.len() >= min_samples && done_waiting {
                break 'outer;
            }
        }
    }
    (ns, t0.elapsed())
}

/// The contention control: replay `queries` against a pinned pre-swap
/// snapshot (same stale layout the during-swap window served from) while
/// a background thread does re-learn-*shaped* work — streaming over a
/// table-sized buffer and churning short-lived allocations, so CPU time,
/// cache eviction, and allocator pressure all match a real search, with
/// none of the swap machinery. Collects `samples` latencies (matching the
/// during-swap window's count) and then stops the burner.
fn contended_loop(
    index: &flood_core::FloodIndex,
    queries: &[RangeQuery],
    rows: usize,
    samples: usize,
) -> Vec<u64> {
    use flood_store::MultiDimIndex;
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (done_ref,) = (&done,);
        scope.spawn(move || {
            // Same order of memory as the flattened data sample the
            // optimizer streams over.
            let mut resident: Vec<u64> = (0..rows as u64 * 3).collect();
            let mut acc = 0u64;
            while !done_ref.load(Ordering::Acquire) {
                for v in &mut resident {
                    *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    acc ^= *v;
                }
                // The search's per-candidate scratch: short-lived vectors.
                let scratch: Vec<u64> = (0..4096).map(|i| acc.wrapping_add(i)).collect();
                acc ^= scratch[scratch.len() / 2];
                std::hint::black_box(acc);
            }
        });
        let mut ns = Vec::with_capacity(samples);
        'outer: loop {
            for q in queries {
                let mut v = CountVisitor::default();
                let t = Instant::now();
                index.execute(q, None, &mut v);
                ns.push(t.elapsed().as_nanos() as u64);
                if ns.len() >= samples {
                    break 'outer;
                }
            }
        }
        done.store(true, Ordering::Release);
        ns
    })
}

/// Run the serving experiment; the returned summary carries every number
/// the report emits.
pub fn run_serve(cfg: &ExpConfig) -> ServeSummary {
    let n = cfg.rows(DatasetKind::Sales);
    let (table, _) = time_phase("data-gen", || {
        (DatasetKind::Sales.generate(n, cfg.seed).table, ())
    });
    let qpp = (cfg.queries * 2).max(24);
    let drift = time_phase("data-gen", || {
        DriftingWorkload::generate(
            &table,
            &DriftConfig {
                phases: 3,
                queries_per_phase: qpp,
                filters_per_query: 2,
                target_selectivity: cfg.target_selectivity(),
                mode: DriftMode::Abrupt,
                seed: cfg.seed,
            },
        )
    });
    // --threads N wins; otherwise size from the environment
    // (FLOOD_THREADS, as the CI smoke sets).
    let threads = match exec_threads() {
        1 => 0,
        n => n,
    };
    let server = time_phase("layout-opt", || {
        FloodServer::build(
            &table,
            &drift.train,
            LayoutOptimizer::with_config(calibrated_cost_model().clone(), cfg.optimizer(n)),
            FloodConfig::default(),
            ServeConfig {
                adaptive: AdaptiveConfig {
                    window: (qpp / 3).clamp(12, 120),
                    check_every: (qpp / 6).clamp(6, 60),
                    degradation_factor: 1.25,
                    share_cache: true,
                },
                batch: 32,
                threads,
                metrics: true,
            },
        )
    });

    // 1. Steady state: closed-loop on the trained phase.
    let min_samples = (cfg.queries * 40).clamp(400, 4_000);
    let (steady_ns, steady_wall) =
        closed_loop(&server, &drift.phases[0].queries, min_samples, None);
    crate::phases::record_phase("query-exec", steady_wall);
    let steady = Percentiles::from_ns(steady_ns);
    let steady_qps = steady.samples as f64 / steady_wall.as_secs_f64();

    // 2a. Workload control: the shifted (phase-1) queries on the stale
    // phase-0 layout, idle. This is what serving looks like right before
    // the swap — the fair "before" for the during-swap rows.
    let shifted = &drift.phases[1].queries;
    let stale_samples = (min_samples / 4).max(200);
    let (stale_ns, stale_wall) = closed_loop(&server, shifted, stale_samples, None);
    crate::phases::record_phase("query-exec", stale_wall);
    let stale = Percentiles::from_ns(stale_ns);

    // 2b. Across the swap: a background thread re-learns, rebuilds, and
    // publishes while the foreground keeps serving phase-1 traffic. Only
    // requests inside the swap window are kept. The epoch-0 snapshot is
    // pinned first so the contention control below can replay against the
    // exact layout this window served from.
    let pinned = server.snapshot();
    let swap_done = AtomicBool::new(false);
    let (swap_ns_all, swap_wall) = std::thread::scope(|scope| {
        let (server, swap_done) = (&server, &swap_done);
        let publisher = scope.spawn(move || {
            let t0 = Instant::now();
            server.force_relearn(shifted);
            swap_done.store(true, Ordering::Release);
            t0.elapsed()
        });
        let (ns, _) = closed_loop(server, shifted, 1, Some(swap_done));
        let wall = publisher.join().expect("publisher panicked");
        (ns, wall)
    });
    crate::phases::record_phase("layout-opt", swap_wall);
    let swap = Percentiles::from_ns(swap_ns_all);

    // 2c. Contention control: same queries, same (pinned) stale layout,
    // same sample count, equal CPU pressure — no swap machinery. The fair
    // denominator for the swap percentiles.
    let t0 = Instant::now();
    let contended_ns = contended_loop(pinned.index(), shifted, n, swap.samples);
    crate::phases::record_phase("query-exec", t0.elapsed());
    drop(pinned);
    let contended = Percentiles::from_ns(contended_ns);
    let p99_ratio = ms(swap.p99) / ms(contended.p99).max(1e-12);
    let p99_ratio_idle = ms(swap.p99) / ms(stale.p99).max(1e-12);

    // 3. Open loop: the whole drift stream through batched admission,
    // adaptation polled between batches.
    let stream: Vec<RangeQuery> = drift.stream().cloned().collect();
    let t0 = Instant::now();
    let mut open_served = 0usize;
    for chunk in stream.chunks(32) {
        open_served += server
            .serve_batch::<CountVisitor>(chunk, None)
            .results
            .len();
        server.maybe_adapt();
    }
    let open_wall = t0.elapsed();
    crate::phases::record_phase("query-exec", open_wall);
    let openloop_qps = open_served as f64 / open_wall.as_secs_f64();

    let diag = server.diagnostics();
    // Snapshot the server's telemetry and fold it into the process-global
    // registry so `repro --metrics` exposes the serve counters too.
    let metrics = server.metrics_snapshot();
    if let Some(m) = server.metrics() {
        flood_obs::metrics::global().absorb(m.registry());
    }
    ServeSummary {
        steady,
        steady_qps,
        stale,
        contended,
        swap,
        swap_wall,
        p99_ratio,
        p99_ratio_idle,
        openloop_qps,
        swaps: diag.swaps,
        submitted: diag.submitted,
        completed: diag.completed,
        metrics,
    }
}

/// Run the experiment at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== serving under live adaptation (flood-serve) ===");
    let s = run_serve(cfg);
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "window", "p50(ms)", "p99(ms)", "p999(ms)", "samples", "q/s"
    );
    println!(
        "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>12.0}",
        "steady",
        ms(s.steady.p50),
        ms(s.steady.p99),
        ms(s.steady.p999),
        s.steady.samples,
        s.steady_qps,
    );
    println!(
        "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>12}",
        "stale (shifted)",
        ms(s.stale.p50),
        ms(s.stale.p99),
        ms(s.stale.p999),
        s.stale.samples,
        "-",
    );
    println!(
        "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>12}",
        "contended",
        ms(s.contended.p50),
        ms(s.contended.p99),
        ms(s.contended.p999),
        s.contended.samples,
        "-",
    );
    println!(
        "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>12}",
        "during-swap",
        ms(s.swap.p50),
        ms(s.swap.p99),
        ms(s.swap.p999),
        s.swap.samples,
        "-",
    );
    println!(
        "\nswap window: {:.1} ms (re-learn + rebuild + publish, off the serving path)",
        s.swap_wall.as_secs_f64() * 1e3,
    );
    println!(
        "during-swap p99 = {:.2}x contended p99 (equal CPU pressure — the swap protocol's \
         own cost) and {:.2}x stale-idle p99 (contention included)",
        s.p99_ratio, s.p99_ratio_idle,
    );
    println!(
        "open loop: {:.0} q/s over the full drift stream ({} swaps published, \
         {}/{} requests completed)",
        s.openloop_qps, s.swaps, s.completed, s.submitted,
    );

    report::metric("serve.steady.p50_ms", ms(s.steady.p50), "ms");
    report::metric("serve.steady.p99_ms", ms(s.steady.p99), "ms");
    report::metric("serve.steady.p999_ms", ms(s.steady.p999), "ms");
    report::metric("serve.steady.qps", s.steady_qps, "q/s");
    report::metric("serve.stale.p50_ms", ms(s.stale.p50), "ms");
    report::metric("serve.stale.p99_ms", ms(s.stale.p99), "ms");
    report::metric("serve.contended.p50_ms", ms(s.contended.p50), "ms");
    report::metric("serve.contended.p99_ms", ms(s.contended.p99), "ms");
    report::metric("serve.swap.p50_ms", ms(s.swap.p50), "ms");
    report::metric("serve.swap.p99_ms", ms(s.swap.p99), "ms");
    report::metric("serve.swap.p999_ms", ms(s.swap.p999), "ms");
    report::metric("serve.swap.samples", s.swap.samples as f64, "count");
    report::metric("serve.swap.wall_ms", s.swap_wall.as_secs_f64() * 1e3, "ms");
    report::metric("serve.p99_ratio", s.p99_ratio, "x");
    report::metric("serve.p99_ratio_idle", s.p99_ratio_idle, "x");
    report::metric("serve.openloop.qps", s.openloop_qps, "q/s");
    report::metric("serve.swaps", s.swaps as f64, "count");
    if let Some(snap) = &s.metrics {
        report::embed_metrics_snapshot("serve.metrics", snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving loop end to end at tiny scale: requests are measured in
    /// both windows, the forced swap publishes, and nothing is dropped.
    #[test]
    fn serve_measures_both_windows_and_drops_nothing() {
        let cfg = ExpConfig {
            scale: 0.05,
            queries: 8,
            ..Default::default()
        };
        let s = run_serve(&cfg);
        assert!(s.steady.samples >= 400);
        assert!(s.swap.samples >= 1, "the swap window must be observed");
        assert!(
            s.contended.samples >= 1,
            "the contention control must be observed"
        );
        assert_eq!(
            s.contended.samples, s.swap.samples,
            "the control replays the swap window's sample count"
        );
        assert!(s.stale.samples >= 200);
        assert!(s.steady.p50 > 0 && s.swap.p50 > 0 && s.contended.p50 > 0 && s.stale.p50 > 0);
        assert!(s.p99_ratio > 0.0 && s.p99_ratio_idle > 0.0);
        assert!(s.swaps >= 1, "the forced swap must publish");
        assert_eq!(s.submitted, s.completed, "zero dropped requests");
        // The embedded telemetry agrees with the server's own diagnostics.
        let snap = s.metrics.as_ref().expect("serve runs with metrics on");
        assert_eq!(snap.counter("serve", "queries"), Some(s.submitted));
        assert_eq!(snap.counter("adapt", "swaps"), Some(s.swaps));
    }
}
