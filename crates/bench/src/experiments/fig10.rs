//! Fig 10: 30 random query workloads on TPC-H. Baselines stay tuned for
//! the original workload; Flood retrains its layout per workload and should
//! win at the median.

use super::ExpConfig;
use crate::harness::{dims_by_selectivity, fmt_ms, learn_flood, measure};
use flood_baselines::{GridFile, Hyperoctree, KdTree, UbTree, ZOrderIndex};
use flood_data::workloads::random_workload;
use flood_data::{DatasetKind, Workload, WorkloadKind};
use std::time::Duration;

/// One workload's outcome.
pub struct Round {
    /// Flood's average query time.
    pub flood: Duration,
    /// Best non-Flood average query time.
    pub best_other: Duration,
    /// Time Flood spent re-learning + rebuilding.
    pub retrain: Duration,
}

/// Run the rounds; returns one entry per random workload.
pub fn rounds(cfg: &ExpConfig) -> Vec<Round> {
    let kind = DatasetKind::TpcH;
    let ds = crate::phases::time_phase("data-gen", || kind.generate(cfg.rows(kind), cfg.seed));
    let tuned_for = Workload::generate(
        WorkloadKind::OlapSkewed,
        &ds,
        cfg.queries,
        cfg.target_selectivity(),
        cfg.seed,
    );
    let dims = dims_by_selectivity(&ds.table, &tuned_for.train);
    let filtered: Vec<usize> = dims
        .iter()
        .copied()
        .filter(|&d| tuned_for.train.iter().any(|q| q.filters(d)))
        .collect();
    let mut fixed: Vec<crate::harness::DynIndex> = vec![
        Box::new(ZOrderIndex::build(&ds.table, filtered.clone())),
        Box::new(UbTree::build(&ds.table, filtered.clone())),
        Box::new(Hyperoctree::build(&ds.table, filtered.clone())),
        Box::new(KdTree::build(&ds.table, filtered.clone())),
    ];
    if let Ok(gf) = GridFile::build(&ds.table, filtered.clone()) {
        fixed.push(Box::new(gf));
    }
    let agg = Some(kind.agg_dim());
    // The paper runs 30 random workloads; 6 already show the median story
    // at default scale.
    let n_rounds = if cfg.full { 30 } else { 6 };
    let keys = kind.key_dims();

    let mut out = Vec::new();
    for round in 0..n_rounds {
        let w = random_workload(
            &ds.table,
            &keys,
            cfg.queries,
            cfg.target_selectivity(),
            cfg.seed.wrapping_add(round as u64 * 1_000 + 17),
        );
        let t0 = std::time::Instant::now();
        let flood = learn_flood(&ds.table, &w.train, cfg.optimizer(ds.table.len()));
        let retrain = t0.elapsed();
        let flood_r = measure(&flood, &w.test, agg, Default::default());
        let best_other = fixed
            .iter()
            .map(|idx| measure(&**idx, &w.test, agg, Default::default()).avg_query)
            .min()
            .expect("baselines present");
        out.push(Round {
            flood: flood_r.avg_query,
            best_other,
            retrain,
        });
    }
    out
}

/// Print per-round times and the median improvement.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 10: random query workloads (TPC-H) ===");
    let rounds = rounds(cfg);
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>10}",
        "round", "flood (ms)", "best other(ms)", "speedup", "retrain(s)"
    );
    let mut speedups: Vec<f64> = Vec::new();
    for (i, r) in rounds.iter().enumerate() {
        let s = r.best_other.as_secs_f64() / r.flood.as_secs_f64().max(1e-12);
        speedups.push(s);
        println!(
            "{:<8} {:>12} {:>14} {:>11.2}x {:>10.2}",
            i,
            fmt_ms(r.flood),
            fmt_ms(r.best_other),
            s,
            r.retrain.as_secs_f64()
        );
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = speedups[speedups.len() / 2];
    let wins = speedups.iter().filter(|&&s| s > 1.0).count();
    println!(
        "median speedup vs best tuned baseline: {median:.2}x ({wins}/{} rounds won)",
        speedups.len()
    );
}
