//! Table 1: dataset and query characteristics.

use super::ExpConfig;
use flood_data::DatasetKind;

/// Print the Table 1 equivalent at the configured scale.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Table 1: dataset and query characteristics ===");
    println!("(paper sizes: sales 30M / tpc-h 300M / osm 105M / perfmon 230M)");
    println!(
        "{:<10} {:>10} {:>9} {:>11} {:>10}",
        "dataset", "records", "queries", "dimensions", "size (MB)"
    );
    for kind in DatasetKind::ALL {
        let (ds, w) = cfg.dataset_and_workload(kind);
        println!(
            "{:<10} {:>10} {:>9} {:>11} {:>10.2}",
            ds.name(),
            ds.table.len(),
            w.len(),
            ds.table.dims(),
            ds.table.size_bytes() as f64 / (1 << 20) as f64,
        );
    }
}
