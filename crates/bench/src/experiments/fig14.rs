//! Fig 14: the index-time / scan-time tradeoff as the number of cells
//! grows, and whether the learned optimum lands at the minimum (§7.6).
//!
//! We fix the learned layout's ordering and scale its column counts
//! proportionally, measuring per-phase times via Flood's profiled
//! execution; the optimizer's chosen cell count is reported alongside.

use super::ExpConfig;
use crate::harness::learn_flood;
use flood_core::{FloodBuilder, FloodIndex};
use flood_data::DatasetKind;
use flood_store::CountVisitor;

/// One sweep point.
pub struct SweepPoint {
    /// Total cells of this layout.
    pub cells: usize,
    /// Average total query time (ms).
    pub total_ms: f64,
    /// Average scan time (ms).
    pub scan_ms: f64,
    /// Average index (projection + refinement) time (ms).
    pub index_ms: f64,
    /// Scan overhead.
    pub so: f64,
}

/// Measure one index over the test split with phase timing.
fn profile(index: &FloodIndex, test: &[flood_store::RangeQuery]) -> (f64, f64, f64, f64) {
    let mut scan = 0u64;
    let mut idx = 0u64;
    let mut total = 0u64;
    let mut stats = flood_store::ScanStats::default();
    for q in test {
        let mut v = CountVisitor::default();
        let (s, t) = index.execute_profiled(q, None, &mut v);
        scan += t.scan_ns;
        idx += t.index_ns();
        total += t.total_ns();
        stats.merge(&s);
    }
    let n = test.len().max(1) as f64;
    (
        total as f64 / 1e6 / n,
        scan as f64 / 1e6 / n,
        idx as f64 / 1e6 / n,
        stats.scan_overhead().unwrap_or(f64::NAN),
    )
}

/// Run the sweep; returns the points and the learned layout's cell count.
pub fn sweep(cfg: &ExpConfig) -> (Vec<SweepPoint>, usize) {
    let kind = DatasetKind::TpcH;
    let (ds, w) = cfg.dataset_and_workload(kind);
    let flood = learn_flood(&ds.table, &w.train, cfg.optimizer(ds.table.len()));
    let learned = flood.layout().clone();
    let learned_cells = learned.num_cells();

    let factors: &[f64] = if cfg.full {
        &[1.0 / 64.0, 1.0 / 16.0, 0.25, 1.0, 4.0, 16.0, 64.0]
    } else {
        &[1.0 / 16.0, 0.25, 1.0, 4.0, 16.0]
    };
    let k = learned.cols().len().max(1) as f64;
    let mut points = Vec::new();
    for &f in factors {
        let per_dim = f.powf(1.0 / k);
        let cols: Vec<usize> = learned
            .cols()
            .iter()
            .map(|&c| ((c as f64 * per_dim).round() as usize).clamp(1, 8_192))
            .collect();
        let layout = learned.with_cols(cols);
        let cells = layout.num_cells();
        let index = if f == 1.0 {
            // Reuse the already built learned index.
            None
        } else {
            Some(FloodBuilder::new().layout(layout).build(&ds.table))
        };
        let idx_ref = index.as_ref().unwrap_or(&flood);
        let (total_ms, scan_ms, index_ms, so) = profile(idx_ref, &w.test);
        points.push(SweepPoint {
            cells,
            total_ms,
            scan_ms,
            index_ms,
            so,
        });
    }
    points.sort_by_key(|p| p.cells);
    points.dedup_by_key(|p| p.cells);
    (points, learned_cells)
}

/// Print the cost surface.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 14: cells vs query/scan/index time (tpc-h) ===");
    let (points, learned_cells) = sweep(cfg);
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>8}",
        "cells", "query(ms)", "scan(ms)", "index(ms)", "SO"
    );
    for p in &points {
        let marker = if p.cells == learned_cells {
            "  <- learned optimum"
        } else {
            ""
        };
        println!(
            "{:>10} {:>12.3} {:>10.3} {:>10.3} {:>8.2}{marker}",
            p.cells, p.total_ms, p.scan_ms, p.index_ms, p.so
        );
    }
    let best = points
        .iter()
        .min_by(|a, b| a.total_ms.partial_cmp(&b.total_ms).expect("finite"))
        .expect("non-empty sweep");
    println!(
        "sweep minimum at {} cells ({:.3} ms); learned layout chose {} cells",
        best.cells, best.total_ms, learned_cells
    );
}
