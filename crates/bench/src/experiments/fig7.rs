//! Fig 7: overall query time of every index on every dataset, with
//! baselines tuned per workload and Flood's layout learned automatically.

use super::ExpConfig;
use crate::harness::{print_results, run_all_indexes, IndexSet, RunResult};
use flood_data::DatasetKind;

/// Run the full comparison on one dataset.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<RunResult> {
    let (ds, w) = cfg.dataset_and_workload(kind);
    // Mirror the paper's panels: the R*-tree ran out of memory on tpc-h and
    // perfmon; the Grid File never finished building on osm and perfmon.
    let set = IndexSet {
        rtree: matches!(kind, DatasetKind::Sales | DatasetKind::Osm),
        grid_file: matches!(kind, DatasetKind::Sales | DatasetKind::TpcH),
    };
    run_all_indexes(
        &ds.table,
        &w.train,
        &w.test,
        Some(ds.kind.agg_dim()),
        set,
        cfg.optimizer(ds.table.len()),
    )
}

/// Print all four panels plus the headline speedups.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 7: overall query time (all indexes × all datasets) ===");
    for kind in DatasetKind::ALL {
        let results = run_dataset(cfg, kind);
        print_results(&format!("{}: query time", kind.name()), &results);
        summarize(&results);
    }
}

/// Print Flood's speedup over the best and worst non-Flood index.
pub fn summarize(results: &[RunResult]) {
    let flood = results
        .iter()
        .find(|r| r.index == "Flood")
        .expect("Flood always runs");
    let others: Vec<&RunResult> = results.iter().filter(|r| r.index != "Flood").collect();
    let best = others
        .iter()
        .min_by_key(|r| r.avg_query)
        .expect("baselines present");
    let worst = others
        .iter()
        .max_by_key(|r| r.avg_query)
        .expect("baselines present");
    let f = flood.avg_query.as_secs_f64().max(1e-12);
    println!(
        "  Flood vs next best ({}): {:.2}x; vs worst ({}): {:.1}x",
        best.index,
        best.avg_query.as_secs_f64() / f,
        worst.index,
        worst.avg_query.as_secs_f64() / f,
    );
}
