//! Table 3: cost-model robustness — weights calibrated on one dataset are
//! used to learn layouts for every other dataset; resulting query times
//! should sit within ~10% of the self-calibrated diagonal (§7.6).

use super::ExpConfig;
use crate::harness::measure;
use flood_core::cost::calibration::{calibrate_cached, CalibrationConfig};
use flood_core::{CostModel, FloodBuilder, LayoutOptimizer};
use flood_data::DatasetKind;

/// Run the 4×4 matrix; returns `times[train_idx][layout_idx]` in ms.
pub fn matrix(cfg: &ExpConfig) -> Vec<Vec<f64>> {
    // Generate all datasets + workloads once.
    let pairs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| cfg.dataset_and_workload(k))
        .collect();

    // Calibrate a cost model per dataset.
    let cal_cfg = CalibrationConfig {
        n_layouts: if cfg.full { 10 } else { 4 },
        max_cells_log2: 12,
        seed: cfg.seed,
        ..Default::default()
    };
    let models: Vec<CostModel> = pairs
        .iter()
        .map(|(ds, w)| {
            let (weights, _) = crate::phases::time_phase("calibration", || {
                calibrate_cached(&ds.table, &w.train, cal_cfg)
            });
            CostModel::new(weights)
        })
        .collect();

    // Learn layouts with every model, run on the target's test split.
    let mut out = vec![vec![0.0f64; pairs.len()]; models.len()];
    for (mi, model) in models.iter().enumerate() {
        for (di, (ds, w)) in pairs.iter().enumerate() {
            let optimizer =
                LayoutOptimizer::with_config(model.clone(), cfg.optimizer(ds.table.len()));
            let learned = optimizer.optimize(&ds.table, &w.train);
            let index = FloodBuilder::new().layout(learned.layout).build(&ds.table);
            let r = measure(&index, &w.test, Some(ds.kind.agg_dim()), Default::default());
            out[mi][di] = r.avg_query.as_secs_f64() * 1e3;
        }
    }
    out
}

/// Print the matrix with %-difference annotations vs the diagonal.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Table 3: cost-model transfer across datasets ===");
    let times = matrix(cfg);
    print!("{:<22}", "models trained on ↓");
    for k in DatasetKind::ALL {
        print!(" {:>16}", k.name());
    }
    println!();
    for (mi, row) in times.iter().enumerate() {
        print!("{:<22}", DatasetKind::ALL[mi].name());
        for (di, &ms) in row.iter().enumerate() {
            let diag = times[di][di];
            if mi == di {
                print!(" {ms:>16.3}");
            } else {
                let pct = (ms - diag) / diag * 100.0;
                print!(" {:>9.3} ({pct:+.0}%)", ms);
            }
        }
        println!();
    }
}
