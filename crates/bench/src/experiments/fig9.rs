//! Fig 9: representative workload variants (FD/MD/OO/O/Ou/O1/O2/ST) on
//! TPC-H and OSM. Baselines stay tuned for the Fig 7 (skewed OLAP)
//! workload; Flood re-learns its layout per variant — the paper's point is
//! that self-optimization wins when the admin can't retune everything.

use super::ExpConfig;
use crate::harness::{dims_by_selectivity, fmt_ms, learn_flood, measure, RunResult};
use flood_baselines::{GridFile, Hyperoctree, KdTree, UbTree, ZOrderIndex};
use flood_data::{DatasetKind, Workload, WorkloadKind};

/// Workload variants per dataset, mirroring the figure's x-axes.
pub fn variants(kind: DatasetKind) -> Vec<WorkloadKind> {
    match kind {
        DatasetKind::TpcH => vec![
            WorkloadKind::FewerDims,
            WorkloadKind::ManyDims,
            WorkloadKind::Mixed,
            WorkloadKind::OlapSkewed,
            WorkloadKind::OlapUniform,
            WorkloadKind::OltpSingleKey,
            WorkloadKind::OltpTwoKeys,
            WorkloadKind::SingleType,
        ],
        _ => vec![
            WorkloadKind::FewerDims,
            WorkloadKind::Mixed,
            WorkloadKind::OlapSkewed,
            WorkloadKind::OlapUniform,
            WorkloadKind::OltpSingleKey,
            WorkloadKind::SingleType,
        ],
    }
}

/// Run one dataset's panel; returns (variant label, per-index results).
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<(String, Vec<RunResult>)> {
    let ds = crate::phases::time_phase("data-gen", || kind.generate(cfg.rows(kind), cfg.seed));
    // 14 variant panels × 6 indexes re-measure here; at default scale a
    // smaller per-variant query budget keeps the whole figure in seconds.
    let n_queries = if cfg.full {
        cfg.queries
    } else {
        cfg.queries.min(60)
    };
    let tuned_for = Workload::generate(
        WorkloadKind::OlapSkewed,
        &ds,
        n_queries,
        cfg.target_selectivity(),
        cfg.seed,
    );
    // Baselines: built once, tuned for the OLAP workload.
    let dims = dims_by_selectivity(&ds.table, &tuned_for.train);
    let filtered: Vec<usize> = dims
        .iter()
        .copied()
        .filter(|&d| tuned_for.train.iter().any(|q| q.filters(d)))
        .collect();
    let mut fixed: Vec<crate::harness::DynIndex> = vec![
        Box::new(ZOrderIndex::build(&ds.table, filtered.clone())),
        Box::new(UbTree::build(&ds.table, filtered.clone())),
        Box::new(Hyperoctree::build(&ds.table, filtered.clone())),
        Box::new(KdTree::build(&ds.table, filtered.clone())),
    ];
    if let Ok(gf) = GridFile::build(&ds.table, filtered.clone()) {
        fixed.push(Box::new(gf));
    }

    let agg = Some(kind.agg_dim());
    let mut out = Vec::new();
    for v in variants(kind) {
        let w = Workload::generate(v, &ds, n_queries, cfg.target_selectivity(), cfg.seed ^ 7);
        let mut results: Vec<RunResult> = fixed
            .iter()
            .map(|idx| measure(&**idx, &w.test, agg, Default::default()))
            .collect();
        // Flood re-learns for each variant.
        let flood = learn_flood(&ds.table, &w.train, cfg.optimizer(ds.table.len()));
        results.push(measure(&flood, &w.test, agg, Default::default()));
        out.push((v.label().to_string(), results));
    }
    out
}

/// Print both panels.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Fig 9: representative workload variants ===");
    if !cfg.full && cfg.queries > 60 {
        println!("(capping at 60 queries per variant at default scale; --full uses all)");
    }
    for kind in [DatasetKind::TpcH, DatasetKind::Osm] {
        let rows = run_dataset(cfg, kind);
        println!("\n--- {} ---", kind.name());
        let names: Vec<String> = rows[0].1.iter().map(|r| r.index.clone()).collect();
        print!("{:<10}", "workload");
        for n in &names {
            print!(" {n:>12}");
        }
        println!(" (avg ms)");
        for (label, results) in &rows {
            print!("{label:<10}");
            for r in results {
                print!(" {:>12}", fmt_ms(r.avg_query));
            }
            println!();
        }
    }
}
