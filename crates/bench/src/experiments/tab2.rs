//! Table 2: the performance breakdown — scan overhead (SO), time per
//! scanned point (TPS), scan time (ST), index time (IT), total time (TT).
//!
//! Scan-kernel timing is enabled for this experiment so ST is measured
//! inside every index's scan kernels and IT falls out as TT − ST.

use super::ExpConfig;
use crate::harness::{run_all_indexes, IndexSet, RunResult};
use flood_data::DatasetKind;
use flood_store::scan::set_scan_timing;

/// Run the breakdown for one dataset.
pub fn run_dataset(cfg: &ExpConfig, kind: DatasetKind) -> Vec<RunResult> {
    let (ds, w) = cfg.dataset_and_workload(kind);
    set_scan_timing(true);
    let results = run_all_indexes(
        &ds.table,
        &w.train,
        &w.test,
        Some(ds.kind.agg_dim()),
        IndexSet::default(),
        cfg.optimizer(ds.table.len()),
    );
    set_scan_timing(false);
    results
}

/// Print the Table 2 columns for every dataset.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Table 2: performance breakdown ===");
    println!("SO = points touched / matched; TPS = ns per scanned point;");
    println!("ST = scan ms/query; IT = index (projection+refinement) ms/query; TT = total.");
    for kind in DatasetKind::ALL {
        let results = run_dataset(cfg, kind);
        println!("\n--- {} ---", kind.name());
        println!(
            "{:<14} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "index", "SO", "TPS", "ST(ms)", "IT(ms)", "TT(ms)"
        );
        for r in &results {
            let n_q = r.queries.max(1) as f64;
            let touched = (r.stats.points_scanned + r.stats.points_in_exact_ranges) as f64;
            let st_ms = r.stats.scan_ns as f64 / 1e6 / n_q;
            let tt_ms = r.avg_query.as_secs_f64() * 1e3;
            let it_ms = (tt_ms - st_ms).max(0.0);
            let tps = if touched > 0.0 {
                r.stats.scan_ns as f64 / touched
            } else {
                f64::NAN
            };
            println!(
                "{:<14} {:>8.2} {:>8.2} {:>10.3} {:>10.4} {:>10.3}",
                r.index,
                r.scan_overhead(),
                tps,
                st_ms,
                it_ms,
                tt_ms
            );
        }
    }
}
