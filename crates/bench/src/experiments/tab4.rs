//! Table 4: index creation time — Flood split into learning (layout
//! optimization) and loading (building the primary index), baselines as a
//! single build.

use super::ExpConfig;
use flood_baselines::{
    ClusteredIndex, GridFile, Hyperoctree, KdTree, RStarTree, UbTree, ZOrderIndex,
};
use flood_core::{FloodBuilder, LayoutOptimizer};
use flood_data::DatasetKind;
use std::time::Instant;

/// Print creation times for every index on every dataset.
pub fn run(cfg: &ExpConfig) {
    println!("\n=== Table 4: index creation time (seconds) ===");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "index", "sales", "tpc-h", "osm", "perfmon"
    );
    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("Flood Learning".into(), Vec::new()),
        ("Flood Loading".into(), Vec::new()),
        ("Flood Total".into(), Vec::new()),
        ("Clustered".into(), Vec::new()),
        ("Z Order".into(), Vec::new()),
        ("UB tree".into(), Vec::new()),
        ("Hyperoctree".into(), Vec::new()),
        ("K-d tree".into(), Vec::new()),
        ("Grid File".into(), Vec::new()),
        ("R* tree".into(), Vec::new()),
    ];
    for kind in DatasetKind::ALL {
        let (ds, w) = cfg.dataset_and_workload(kind);
        let table = &ds.table;
        let dims = crate::harness::dims_by_selectivity(table, &w.train);
        let filtered: Vec<usize> = dims
            .iter()
            .copied()
            .filter(|&d| w.train.iter().any(|q| q.filters(d)))
            .collect();

        // Flood: learning + loading.
        let optimizer = LayoutOptimizer::with_config(
            crate::harness::calibrated_cost_model().clone(),
            cfg.optimizer(table.len()),
        );
        let t0 = Instant::now();
        let learned = optimizer.optimize(table, &w.train);
        let learn = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _flood = FloodBuilder::new().layout(learned.layout).build(table);
        let load = t0.elapsed().as_secs_f64();
        rows[0].1.push(learn);
        rows[1].1.push(load);
        rows[2].1.push(learn + load);

        let time = |f: &dyn Fn()| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        };
        let key = filtered[0];
        rows[3].1.push(time(&|| {
            let _ = ClusteredIndex::build(table, key);
        }));
        rows[4].1.push(time(&|| {
            let _ = ZOrderIndex::build(table, filtered.clone());
        }));
        rows[5].1.push(time(&|| {
            let _ = UbTree::build(table, filtered.clone());
        }));
        rows[6].1.push(time(&|| {
            let _ = Hyperoctree::build(table, filtered.clone());
        }));
        rows[7].1.push(time(&|| {
            let _ = KdTree::build(table, filtered.clone());
        }));
        let t0 = Instant::now();
        let gf_ok = GridFile::build(table, filtered.clone()).is_ok();
        rows[8].1.push(if gf_ok {
            t0.elapsed().as_secs_f64()
        } else {
            f64::NAN
        });
        rows[9].1.push(time(&|| {
            let _ = RStarTree::build(table, filtered.clone());
        }));
    }
    for (name, times) in rows {
        print!("{name:<16}");
        for t in times {
            if t.is_nan() {
                print!(" {:>10}", "N/A");
            } else {
                print!(" {t:>10.2}");
            }
        }
        println!();
    }
}
