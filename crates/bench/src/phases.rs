//! Per-phase wall-clock accounting for the repro harness.
//!
//! Every experiment funnels its expensive work through five named phases —
//! `data-gen`, `calibration`, `layout-opt`, `index-build`, `query-exec` —
//! so a single summary table shows where a run's time went and `--verbose`
//! streams progress as each phase starts and finishes. The registry is
//! process-global (the `repro` binary is single-threaded per experiment)
//! and can be reset between experiments to attribute time per experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Canonical phase names, in pipeline order (used to sort the summary).
pub const PHASE_ORDER: &[&str] = &[
    "data-gen",
    "calibration",
    "layout-opt",
    "index-build",
    "query-exec",
];

static VERBOSE: AtomicBool = AtomicBool::new(false);
static TOTALS: Mutex<Vec<(String, Duration, usize)>> = Mutex::new(Vec::new());

/// Enable/disable `--verbose` progress lines on stderr.
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

/// Whether verbose progress output is enabled.
pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

/// Print a progress line to stderr when `--verbose` is on.
pub fn progress(msg: &str) {
    if verbose() {
        eprintln!("  [progress] {msg}");
    }
}

/// Run `f`, attributing its wall-clock to `name` in the phase registry.
/// Nested phases each record their own time (the outer phase includes the
/// inner one's — the summary is a where-does-time-go guide, not a
/// partition).
pub fn time_phase<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if verbose() {
        eprintln!("  [phase] {name} ...");
    }
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed();
    record_phase(name, dt);
    if verbose() {
        eprintln!("  [phase] {name} done in {:.2}s", dt.as_secs_f64());
    }
    out
}

/// Add `dt` to phase `name` without wrapping a closure (for call sites that
/// already measured the interval themselves).
pub fn record_phase(name: &str, dt: Duration) {
    let mut totals = TOTALS.lock().expect("phase registry lock");
    if let Some(slot) = totals.iter_mut().find(|(n, _, _)| n == name) {
        slot.1 += dt;
        slot.2 += 1;
    } else {
        totals.push((name.to_string(), dt, 1));
    }
}

/// Snapshot of `(phase, total, count)` rows, canonical phases first.
pub fn phase_totals() -> Vec<(String, Duration, usize)> {
    let mut rows = TOTALS.lock().expect("phase registry lock").clone();
    let rank = |n: &str| {
        PHASE_ORDER
            .iter()
            .position(|&p| p == n)
            .unwrap_or(PHASE_ORDER.len())
    };
    rows.sort_by_key(|(n, _, _)| rank(n));
    rows
}

/// Clear the registry (start attributing a fresh experiment).
pub fn reset_phases() {
    TOTALS.lock().expect("phase registry lock").clear();
}

/// Print the phase summary table to stdout; no-op when nothing was recorded.
pub fn print_phase_summary() {
    let rows = phase_totals();
    if rows.is_empty() {
        return;
    }
    println!("\n-- phase summary --");
    println!("{:<14} {:>10} {:>8}", "phase", "total (s)", "calls");
    for (name, total, count) in rows {
        println!("{:<14} {:>10.2} {:>8}", name, total.as_secs_f64(), count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and other lib tests record real phases
    // concurrently, so assert only on names unique to this test and never
    // on total row counts or global emptiness.
    #[test]
    fn registry_records_merges_and_resets() {
        let find = |name: &str| {
            phase_totals()
                .into_iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, total, count)| (total, count))
        };
        time_phase("test-exec", || std::thread::sleep(Duration::from_millis(2)));
        record_phase("test-exec", Duration::from_millis(5));
        record_phase("test-gen", Duration::from_millis(1));
        let (total, count) = find("test-exec").expect("phase recorded");
        assert_eq!(count, 2, "two recordings merged");
        assert!(total >= Duration::from_millis(7));
        assert!(find("test-gen").is_some());
        // Canonical phases sort ahead of ad-hoc names like ours.
        let rows = phase_totals();
        let pos = |n: &str| rows.iter().position(|(name, _, _)| name == n);
        if let (Some(canon), Some(adhoc)) = (pos("data-gen"), pos("test-exec")) {
            assert!(canon < adhoc);
        }
        reset_phases();
        assert!(find("test-exec").is_none());
        assert!(find("test-gen").is_none());
    }

    #[test]
    fn verbose_flag_round_trips() {
        set_verbose(true);
        assert!(verbose());
        progress("covered: progress line while verbose");
        set_verbose(false);
        assert!(!verbose());
    }
}
