//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale F] [--queries N] [--seed N] [--full]
//!
//! experiments:
//!   tab1 tab2 tab3 tab4
//!   fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//!   colstore lookup
//!   all          # everything above, in order
//! ```
//!
//! `--scale` multiplies the default dataset sizes (1.0 ≈ 60k–400k rows per
//! dataset); `--full` switches sweeps to the paper-sized grids. Absolute
//! numbers differ from the paper's testbed; the reproduction target is the
//! *shape* of each result (see EXPERIMENTS.md).

use flood_bench::experiments::{self as exp, ExpConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        eprintln!("usage: repro <experiment> [--scale F] [--queries N] [--seed N] [--full]");
        eprintln!("experiments: tab1 tab2 tab3 tab4 fig5 fig7..fig17 colstore lookup all");
        return ExitCode::FAILURE;
    };
    let mut cfg = ExpConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number")
            }
            "--queries" => {
                cfg.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries needs a number")
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--full" => cfg.full = true,
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "# repro {which} (scale={}, queries={}, seed={}, full={})",
        cfg.scale, cfg.queries, cfg.seed, cfg.full
    );
    let t0 = std::time::Instant::now();
    match which.as_str() {
        "tab1" => exp::tab1::run(&cfg),
        "fig5" => exp::fig5::run(&cfg),
        "fig7" => exp::fig7::run(&cfg),
        "fig8" => exp::fig8::run(&cfg),
        "fig9" => exp::fig9::run(&cfg),
        "fig10" => exp::fig10::run(&cfg),
        "tab2" => exp::tab2::run(&cfg),
        "fig11" => exp::fig11::run(&cfg),
        "fig12" => exp::fig12::run(&cfg),
        "fig13" => exp::fig13::run(&cfg),
        "fig14" => exp::fig14::run(&cfg),
        "tab3" => exp::tab3::run(&cfg),
        "tab4" => exp::tab4::run(&cfg),
        "fig15" => exp::fig15::run(&cfg),
        "fig16" => exp::fig16::run(&cfg),
        "fig17" => exp::fig17::run(&cfg),
        "colstore" => exp::colstore::run(&cfg),
        "costmodel" => exp::costmodel::run(&cfg),
        "lookup" => exp::lookup::run(&cfg),
        "all" => {
            exp::tab1::run(&cfg);
            exp::colstore::run(&cfg);
            exp::fig5::run(&cfg);
            exp::fig7::run(&cfg);
            exp::fig8::run(&cfg);
            exp::fig9::run(&cfg);
            exp::fig10::run(&cfg);
            exp::tab2::run(&cfg);
            exp::fig11::run(&cfg);
            exp::fig12::run(&cfg);
            exp::fig13::run(&cfg);
            exp::fig14::run(&cfg);
            exp::tab3::run(&cfg);
            exp::tab4::run(&cfg);
            exp::fig15::run(&cfg);
            exp::fig16::run(&cfg);
            exp::fig17::run(&cfg);
            exp::costmodel::run(&cfg);
            exp::lookup::run(&cfg);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            return ExitCode::FAILURE;
        }
    }
    println!("\n[{which} done in {:.1}s]", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
