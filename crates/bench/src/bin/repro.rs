//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale F] [--queries N] [--seed N] [--threads N] \
//!       [--json PATH] [--metrics PATH] [--full] [--verbose]
//! repro list
//! ```
//!
//! `--scale` multiplies the default dataset sizes (1.0 ≈ 30k–200k rows per
//! dataset); `--threads N` runs every workload through the `flood-exec`
//! pool with N workers (1 = the serial path); `--full` switches sweeps to
//! the paper-sized grids; `--json PATH` writes a machine-readable perf
//! record (per-experiment wall-clock, phase timings, and key metrics —
//! the artifact CI uploads on every push); `--metrics PATH` dumps the
//! process-global `flood-obs` registry as Prometheus text exposition after
//! the run (every workload bridges its scan counters in; serve/drift/obs
//! fold in their servers' full telemetry); `--verbose`
//! streams per-phase progress to stderr. Absolute numbers differ from the
//! paper's testbed; the reproduction target is the *shape* of each result.
//! A per-phase wall-clock summary (data gen, calibration, layout
//! optimization, index builds, query execution) prints after every run.

use flood_bench::experiments::{self as exp, ExpConfig};
use flood_bench::phases;
use flood_bench::report::{self, ExperimentRecord, PerfReport};
use std::process::ExitCode;

/// CLI name, what it reproduces, entry point.
type Experiment = (&'static str, &'static str, fn(&ExpConfig));

/// Every experiment, in paper order.
const EXPERIMENTS: &[Experiment] = &[
    ("tab1", "Table 1: dataset summary", exp::tab1::run),
    (
        "colstore",
        "§3: column-store scan kernels",
        exp::colstore::run,
    ),
    ("fig5", "Fig 5: w_s is not constant", exp::fig5::run),
    (
        "fig7",
        "Fig 7: query time, all indexes x datasets",
        exp::fig7::run,
    ),
    ("fig8", "Fig 8: index size vs query time", exp::fig8::run),
    ("fig9", "Fig 9: workload variants", exp::fig9::run),
    ("fig10", "Fig 10: 30 random workloads", exp::fig10::run),
    ("tab2", "Table 2: performance breakdown", exp::tab2::run),
    ("fig11", "Fig 11: component ablation", exp::fig11::run),
    (
        "fig12",
        "Fig 12: dataset size & selectivity scaling",
        exp::fig12::run,
    ),
    ("fig13", "Fig 13: scaling dimensions", exp::fig13::run),
    (
        "fig14",
        "Fig 14: cells vs query time surface",
        exp::fig14::run,
    ),
    ("tab3", "Table 3: cost-model transfer", exp::tab3::run),
    ("tab4", "Table 4: loading/learning time", exp::tab4::run),
    ("fig15", "Fig 15: data-sample size sweep", exp::fig15::run),
    ("fig16", "Fig 16: query-sample size sweep", exp::fig16::run),
    ("fig17", "Fig 17: per-cell CDF models", exp::fig17::run),
    (
        "costmodel",
        "§4.1.2: cost-model accuracy",
        exp::costmodel::run,
    ),
    (
        "lookup",
        "§6: cell identification latency",
        exp::lookup::run,
    ),
    (
        "threads",
        "§8: thread scaling — parallel + batched execution",
        exp::threads::run,
    ),
    (
        "optcost",
        "Fig 15/16: optimizer search cost, full vs incremental stats",
        exp::optcost::run,
    ),
    (
        "drift",
        "§8: adaptive re-learning under workload drift",
        exp::drift::run,
    ),
    (
        "serve",
        "§8: serving under live adaptation — latency across layout swaps",
        exp::serve::run,
    ),
    (
        "scanspeed",
        "§7.1+: compressed-domain scans — packed predicates vs decode-first",
        exp::scanspeed::run,
    ),
    (
        "obs",
        "flood-obs: instrumentation overhead on the query path",
        exp::obs::run,
    ),
    (
        "tiered",
        "tiered storage: larger-than-RAM tables under a memory budget",
        exp::tiered::run,
    ),
    (
        "correlate",
        "Tsunami/COAX ext: correlation-aware layouts — soft-FD collapse on/off",
        exp::correlate::run,
    ),
];

fn print_experiment_list() {
    eprintln!("experiments:");
    for (name, about, _) in EXPERIMENTS {
        eprintln!("  {name:<10} {about}");
    }
    eprintln!("  {:<10} everything above, in paper order", "all");
}

fn usage() {
    eprintln!(
        "usage: repro <experiment> [--scale F] [--queries N] [--seed N] [--threads N] \
         [--json PATH] [--metrics PATH] [--full] [--verbose]"
    );
    eprintln!("       repro list");
    print_experiment_list();
}

/// Parse a flag value, reporting the flag name on failure instead of
/// panicking.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: cannot parse {v:?} as a number"))
}

/// Parsed command line: experiment config, the worker count (applied once
/// to the harness-global executor knob
/// [`flood_bench::harness::set_exec_threads`] rather than carried in
/// [`ExpConfig`]), and the optional `--json` / `--metrics` output paths.
#[allow(clippy::type_complexity)]
fn parse_config(
    args: &[String],
) -> Result<(ExpConfig, usize, Option<String>, Option<String>), String> {
    let mut cfg = ExpConfig::default();
    let mut threads = 1usize;
    let mut json: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = parse_value("--scale", it.next())?;
                if !(cfg.scale.is_finite() && cfg.scale > 0.0) {
                    return Err(format!("--scale must be positive, got {}", cfg.scale));
                }
            }
            "--queries" => {
                cfg.queries = parse_value("--queries", it.next())?;
                if cfg.queries == 0 {
                    return Err("--queries must be at least 1".to_string());
                }
            }
            "--seed" => cfg.seed = parse_value("--seed", it.next())?,
            "--threads" => {
                threads = parse_value("--threads", it.next())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => {
                let path = it.next().ok_or("--json needs a file path")?;
                json = Some(path.clone());
            }
            "--metrics" => {
                let path = it.next().ok_or("--metrics needs a file path")?;
                metrics = Some(path.clone());
            }
            "--full" => cfg.full = true,
            "--verbose" | "-v" => phases::set_verbose(true),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((cfg, threads, json, metrics))
}

/// Serialize and write the perf report; a write failure is an error exit,
/// not a panic (CI must notice a missing artifact).
fn write_report(path: &str, report: &PerfReport) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| format!("cannot serialize perf report: {e}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("perf report written to {path}");
    Ok(())
}

/// Write the process-global metrics registry as Prometheus text
/// exposition; same error contract as [`write_report`].
fn write_metrics(path: &str) -> Result<(), String> {
    let text = flood_obs::metrics::global().prometheus_text();
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("metrics exposition written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        usage();
        return ExitCode::FAILURE;
    };
    if which == "list" || which == "--help" || which == "-h" {
        usage();
        return ExitCode::SUCCESS;
    }
    let (cfg, threads, json, metrics) = match parse_config(&args[1..]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    flood_bench::harness::set_exec_threads(threads);
    println!(
        "# repro {which} (scale={}, queries={}, seed={}, threads={}, full={})",
        cfg.scale, cfg.queries, cfg.seed, threads, cfg.full
    );
    let t0 = std::time::Instant::now();
    let mut records: Vec<ExperimentRecord> = Vec::new();
    if which == "all" {
        for (name, _, run) in EXPERIMENTS {
            // Attribute phase time per experiment, not across the suite.
            phases::reset_phases();
            report::take_metrics();
            let t = std::time::Instant::now();
            run(&cfg);
            records.push(report::experiment_record(name, t.elapsed().as_secs_f64()));
            phases::print_phase_summary();
            println!("\n[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
        }
    } else {
        let Some((_, _, run)) = EXPERIMENTS.iter().find(|(name, _, _)| *name == which) else {
            eprintln!("unknown experiment: {which}\n");
            print_experiment_list();
            return ExitCode::FAILURE;
        };
        report::take_metrics();
        run(&cfg);
        records.push(report::experiment_record(
            &which,
            t0.elapsed().as_secs_f64(),
        ));
        phases::print_phase_summary();
    }
    if let Some(path) = json {
        let perf = PerfReport {
            schema_version: report::SCHEMA_VERSION,
            scale: cfg.scale,
            queries: cfg.queries,
            seed: cfg.seed,
            threads,
            full: cfg.full,
            experiments: records,
        };
        if let Err(e) = write_report(&path, &perf) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = metrics {
        if let Err(e) = write_metrics(&path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("\n[{which} done in {:.1}s]", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
