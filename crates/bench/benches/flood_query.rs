//! Criterion bench: end-to-end Flood query execution vs baselines on a
//! TPC-H-style workload (a micro-scale Fig 7).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flood_baselines::{Hyperoctree, KdTree, ZOrderIndex};
use flood_core::{FloodBuilder, Layout};
use flood_data::{DatasetKind, Workload, WorkloadKind};
use flood_store::{CountVisitor, MultiDimIndex};

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::TpcH.generate(200_000, 5);
    let w = Workload::generate(WorkloadKind::OlapSkewed, &ds, 50, 0.001, 5);
    let dims: Vec<usize> = (0..6).collect();

    let flood = FloodBuilder::new()
        .layout(Layout::new(vec![0, 3, 2, 1], vec![16, 3, 4]))
        .build(&ds.table);
    let zorder = ZOrderIndex::build(&ds.table, dims.clone());
    let octree = Hyperoctree::build(&ds.table, dims.clone());
    let kd = KdTree::build(&ds.table, dims);

    let indexes: Vec<(&str, &dyn MultiDimIndex)> = vec![
        ("flood", &flood),
        ("zorder", &zorder),
        ("octree", &octree),
        ("kdtree", &kd),
    ];
    let mut group = c.benchmark_group("flood_query");
    for (name, idx) in indexes {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % w.test.len();
                let mut v = CountVisitor::default();
                idx.execute(black_box(&w.test[i]), None, &mut v);
                black_box(v.count)
            })
        });
    }
    group.finish();

    // Build-time comparison.
    let mut group = c.benchmark_group("flood_build");
    group.sample_size(10);
    group.bench_function("flood_100k", |b| {
        let small = DatasetKind::TpcH.generate(100_000, 5);
        b.iter(|| {
            black_box(
                FloodBuilder::new()
                    .layout(Layout::new(vec![0, 3, 2, 1], vec![16, 3, 4]))
                    .build(&small.table),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
