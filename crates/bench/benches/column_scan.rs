//! Criterion bench: column-store scan kernels — plain vs block-delta
//! compressed access, filtered vs exact scans, cumulative-column SUMs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flood_store::{
    scan_exact, scan_filtered, CountVisitor, RangeQuery, ScanStats, SumVisitor, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(n: usize, compress: bool) -> Table {
    let mut rng = StdRng::seed_from_u64(11);
    let mut t = Table::from_columns(vec![
        (0..n).map(|_| rng.gen_range(0..10_000u64)).collect(),
        (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect(),
    ]);
    if compress {
        t.compress();
    }
    t
}

fn bench(c: &mut Criterion) {
    let n = 1_000_000usize;
    let q = RangeQuery::all(2).with_range(0, 1_000, 2_000);

    let mut group = c.benchmark_group("column_scan");
    group.throughput(Throughput::Elements(n as u64));
    for (label, compress) in [("plain", false), ("compressed", true)] {
        let t = table(n, compress);
        group.bench_with_input(BenchmarkId::new("filtered", label), &t, |b, t| {
            b.iter(|| {
                let mut v = CountVisitor::default();
                let mut s = ScanStats::default();
                scan_filtered(t, black_box(&q), 0, t.len(), None, &mut v, &mut s);
                black_box(v.count)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_sum", label), &t, |b, t| {
            b.iter(|| {
                let mut v = SumVisitor::default();
                let mut s = ScanStats::default();
                scan_exact(t, 0, t.len(), Some(1), None, &mut v, &mut s);
                black_box(v.sum)
            })
        });
    }
    // Cumulative column: the O(1) SUM fast path.
    let t = table(n, false);
    let cum = t.cumulative_sum(1);
    group.bench_function("exact_sum/cumulative", |b| {
        b.iter(|| {
            let mut v = SumVisitor::default();
            let mut s = ScanStats::default();
            scan_exact(&t, 0, t.len(), Some(1), Some(&cum), &mut v, &mut s);
            black_box(v.sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
