//! Criterion bench: Morton encoding and BIGMIN — the Z-order/UB-tree inner
//! loops ("Indexes based on Z-order incur the cost of computing Z-values",
//! Table 2 discussion).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flood_baselines::morton::MortonEncoder;
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("morton");
    for &d in &[2usize, 4, 6] {
        let mut rng = StdRng::seed_from_u64(1);
        let cols: Vec<Vec<u64>> = (0..d)
            .map(|_| {
                (0..10_000)
                    .map(|_| rng.gen_range(0..1_000_000u64))
                    .collect()
            })
            .collect();
        let t = Table::from_columns(cols);
        let enc = MortonEncoder::new(&t, (0..d).collect());

        group.bench_with_input(BenchmarkId::new("encode_row", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % t.len();
                black_box(enc.encode_row(&t, black_box(i)))
            })
        });

        let q = {
            let mut q = RangeQuery::all(d);
            for dim in 0..d.min(3) {
                q = q.with_range(dim, 100_000, 400_000);
            }
            q
        };
        let (lo, hi) = enc.normalized_rect(&q);
        let (zlo, zhi) = enc.z_range(&lo, &hi);
        let probes: Vec<u64> = (0..1_000)
            .map(|_| rng.gen_range(zlo..=zhi))
            .filter(|&z| !enc.z_in_rect(z, &lo, &hi))
            .collect();
        if !probes.is_empty() {
            group.bench_with_input(BenchmarkId::new("bigmin", d), &d, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % probes.len();
                    black_box(enc.bigmin(black_box(probes[i]), &lo, &hi))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
