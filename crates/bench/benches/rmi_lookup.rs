//! Criterion bench: RMI CDF evaluation and rectified lookups — the
//! flattening hot path (§5.1) and the clustered baseline's endpoint search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flood_learned::cdf::CdfModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmi");
    for &n in &[100_000usize, 1_000_000] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..u64::MAX >> 16)).collect();
        keys.sort_unstable();
        let rmi = Rmi::build(&keys, RmiConfig::default());
        let probes: Vec<u64> = (0..1_000).map(|_| keys[rng.gen_range(0..n)]).collect();

        group.bench_with_input(BenchmarkId::new("cdf", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(rmi.cdf(black_box(probes[i])))
            })
        });
        group.bench_with_input(BenchmarkId::new("lookup_lb", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(rmi.lookup_lb(black_box(probes[i]), |j| keys[j]))
            })
        });
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(Rmi::build(&keys, RmiConfig::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
