//! Criterion bench: parallel vs serial query execution.
//!
//! Two axes on a scan-bound workload (1M rows, ~10% selectivity, the
//! regime where §7's profile says scanning dominates):
//!
//! * `single/*` — one query, scan partitioned across N workers
//!   (`QueryExecutor::execute`) vs the serial `MultiDimIndex::execute`.
//! * `batch/*` — 32 queries scheduled across the pool
//!   (`QueryExecutor::execute_batch`) vs a serial loop.
//!
//! Speedups track the machine's core count; BASELINES.md records reference
//! numbers with machine notes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flood_baselines::FullScan;
use flood_core::{FloodBuilder, FloodIndex, Layout};
use flood_exec::QueryExecutor;
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, ScanStats, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1_000_000;
const DOMAIN: u64 = 1 << 20;

fn table() -> Table {
    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    Table::from_columns(vec![
        (0..N).map(|_| rng.gen_range(0..DOMAIN)).collect(),
        (0..N).map(|_| rng.gen_range(0..DOMAIN)).collect(),
        (0..N).map(|_| rng.gen_range(0..1_000u64)).collect(),
    ])
}

fn flood(t: &Table) -> FloodIndex {
    FloodBuilder::new()
        .layout(Layout::new(vec![0, 1, 2], vec![16, 16]))
        .build(t)
}

/// ~10% selectivity on dim 0 — wide enough that the scan dominates.
fn query() -> RangeQuery {
    RangeQuery::all(3).with_range(0, 0, DOMAIN / 10)
}

fn batch() -> Vec<RangeQuery> {
    (0..32u64)
        .map(|i| {
            let lo = i * (DOMAIN / 40);
            RangeQuery::all(3).with_range(0, lo, lo + DOMAIN / 12)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let t = table();
    let full = FullScan::build(&t);
    let fl = flood(&t);
    let q = query();
    let qs = batch();

    let mut group = c.benchmark_group("parallel_scan");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("single/serial_fullscan", |b| {
        b.iter(|| {
            let mut v = CountVisitor::default();
            let s = full.execute(black_box(&q), None, &mut v);
            black_box((v.count, s.points_scanned))
        })
    });
    group.bench_function("single/serial_flood", |b| {
        b.iter(|| {
            let mut v = CountVisitor::default();
            let s = fl.execute(black_box(&q), None, &mut v);
            black_box((v.count, s.points_scanned))
        })
    });
    for threads in [2usize, 4] {
        let exec = QueryExecutor::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("single/pool_fullscan", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let (v, s): (CountVisitor, ScanStats) =
                        exec.execute(black_box(&full), &q, None);
                    black_box((v.count, s.points_scanned))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single/pool_flood", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let (v, s): (CountVisitor, ScanStats) = exec.execute(black_box(&fl), &q, None);
                    black_box((v.count, s.points_scanned))
                })
            },
        );
    }

    group.bench_function("batch/serial_flood", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &qs {
                let mut v = CountVisitor::default();
                fl.execute(black_box(q), None, &mut v);
                total += v.count;
            }
            black_box(total)
        })
    });
    for threads in [2usize, 4] {
        let exec = QueryExecutor::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("batch/pool_flood", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let out = exec.execute_batch::<CountVisitor, _>(black_box(&fl), &qs, None);
                    black_box(out.iter().map(|(v, _)| v.count).sum::<u64>())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
