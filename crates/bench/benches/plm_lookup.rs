//! Criterion bench: per-cell PLM lookups vs binary search (Fig 17's core
//! measurement at micro-benchmark precision).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flood_learned::plm::PiecewiseLinearModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn skewed_sorted(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0f64..1.0);
            (x * x * x * 1e12) as u64
        })
        .collect();
    v.sort_unstable();
    v
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("plm_lookup");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let values = skewed_sorted(n, 7);
        let plm = PiecewiseLinearModel::build_default(&values);
        let mut rng = StdRng::seed_from_u64(9);
        let probes: Vec<u64> = (0..1_000).map(|_| values[rng.gen_range(0..n)]).collect();

        group.bench_with_input(BenchmarkId::new("plm", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(plm.lookup_lb(black_box(probes[i]), |j| values[j]))
            })
        });
        group.bench_with_input(BenchmarkId::new("binary_search", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                let p = black_box(probes[i]);
                black_box(values.partition_point(|&x| x < p))
            })
        });
    }
    group.finish();

    // δ sweep (Fig 17b).
    let values = skewed_sorted(100_000, 7);
    let mut rng = StdRng::seed_from_u64(9);
    let probes: Vec<u64> = (0..1_000)
        .map(|_| values[rng.gen_range(0..values.len())])
        .collect();
    let mut group = c.benchmark_group("plm_delta");
    for &delta in &[2.0f64, 10.0, 50.0, 200.0, 1000.0] {
        let plm = PiecewiseLinearModel::build(&values, delta);
        group.bench_with_input(BenchmarkId::from_parameter(delta as u64), &delta, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(plm.lookup_lb(black_box(probes[i]), |j| values[j]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
