//! Criterion bench: packed-domain scans vs decode-first, selectivity sweep.
//!
//! One compressed table, two physical orders:
//!
//! * `sorted/*` — filter column is the sort key: tight per-block `[min, max]`
//!   spans, so low selectivity turns into wholesale block skipping.
//! * `unsorted/*` — every block spans the domain: no skipping possible, the
//!   comparison isolates the word-parallel (SWAR) probe path.
//!
//! Each point runs both [`ScanMode`]s over the identical `FullScan` so the
//! delta is purely the kernel. BASELINES.md records reference numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flood_baselines::FullScan;
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, ScanMode, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 400_000;
const DOMAIN: u64 = 1 << 32;

/// (sorted?, selectivity per-mille) → (index, query at that selectivity).
fn setup(sorted: bool, permille: u64) -> (FullScan, FullScan, RangeQuery) {
    let mut rng = StdRng::seed_from_u64(0xb10c);
    let mut key: Vec<u64> = (0..N).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let mut quantiles = key.clone();
    quantiles.sort_unstable();
    if sorted {
        key = quantiles.clone();
    }
    let agg: Vec<u64> = (0..N).map(|_| rng.gen_range(0..1_000)).collect();
    let mut t = Table::from_columns(vec![key, agg]);
    t.compress();
    // Bounds from quantile positions: the query matches permille/1000 rows.
    let span = (N * permille as usize / 1000).max(1);
    let lo_idx = (N - span) / 2;
    let q = RangeQuery::all(2).with_range(0, quantiles[lo_idx], quantiles[lo_idx + span - 1]);
    let mut packed = FullScan::build(&t);
    packed.set_scan_mode(ScanMode::Packed);
    let mut decode = FullScan::build(&t);
    decode.set_scan_mode(ScanMode::DecodeFirst);
    (packed, decode, q)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_scan");
    group.throughput(Throughput::Elements(N as u64));
    for sorted in [true, false] {
        let shape = if sorted { "sorted" } else { "unsorted" };
        for permille in [1u64, 10, 100] {
            let (packed, decode, q) = setup(sorted, permille);
            for (mode, index) in [("packed", &packed), ("decode_first", &decode)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{shape}/{mode}"), permille),
                    &permille,
                    |b, _| {
                        b.iter(|| {
                            let mut v = CountVisitor::default();
                            let s = index.execute(black_box(&q), None, &mut v);
                            black_box((v.count, s.points_scanned))
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
