//! The `repro` binary's command-line contract: bad input never panics, it
//! prints the experiment list and exits non-zero; `list` documents every
//! experiment.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: repro"));
}

#[test]
fn list_shows_every_experiment_and_succeeds() {
    let out = repro(&["list"]);
    assert!(out.status.success());
    let err = stderr(&out);
    for name in [
        "tab1",
        "tab2",
        "tab3",
        "tab4",
        "fig5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "colstore",
        "costmodel",
        "lookup",
        "threads",
        "optcost",
        "drift",
        "serve",
        "scanspeed",
        "obs",
        "tiered",
        "correlate",
        "all",
    ] {
        assert!(err.contains(name), "`repro list` must mention {name}");
    }
}

#[test]
fn unknown_experiment_prints_list_and_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown experiment: fig99"));
    assert!(err.contains("experiments:"), "must print the list: {err}");
}

#[test]
fn bad_scale_values_fail_without_panicking() {
    for bad in [
        &["fig5", "--scale", "abc"][..],
        &["fig5", "--scale", "-1"],
        &["fig5", "--scale", "0"],
        &["fig5", "--scale"],
        &["fig5", "--queries", "0"],
        &["fig5", "--seed", "x"],
        &["fig5", "--threads", "0"],
        &["fig5", "--threads", "two"],
        &["fig5", "--threads"],
    ] {
        let out = repro(bad);
        assert!(!out.status.success(), "{bad:?} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("error:") && !err.contains("panicked"),
            "{bad:?} must report a parse error, got: {err}"
        );
    }
}

#[test]
fn json_flag_writes_a_parseable_perf_report() {
    let dir = std::env::temp_dir().join(format!("repro-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.json");
    let path_s = path.to_str().expect("utf-8 path");
    // fig5 is the cheapest experiment; tiny scale keeps this fast even in
    // debug builds.
    let out = repro(&[
        "fig5",
        "--scale",
        "0.02",
        "--queries",
        "4",
        "--json",
        path_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&path).expect("report written");
    for needle in [
        "\"schema_version\"",
        "\"experiments\"",
        "\"name\": \"fig5\"",
        "\"wall_s\"",
        "\"phases\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Round-trips through the vendored JSON parser.
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    drop(value);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_flag_requires_a_path() {
    let out = repro(&["fig5", "--json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--json needs a file path"));
}

#[test]
fn metrics_flag_writes_prometheus_exposition() {
    let dir = std::env::temp_dir().join(format!("repro-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.prom");
    let path_s = path.to_str().expect("utf-8 path");
    // `obs` folds its instrumented server's registry into the global one,
    // so the exposition carries serve + scan series end to end.
    let out = repro(&[
        "obs",
        "--scale",
        "0.02",
        "--queries",
        "4",
        "--metrics",
        path_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&path).expect("exposition written");
    for needle in [
        "# TYPE flood_scan_points_scanned_total counter",
        "flood_scan_points_scanned_total ",
        "flood_serve_queries_total ",
        "# TYPE flood_serve_query_ns summary",
        "flood_serve_query_ns{quantile=\"0.5\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_requires_a_path() {
    let out = repro(&["fig5", "--metrics"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--metrics needs a file path"));
}

#[test]
fn metrics_write_failure_is_an_error_exit() {
    let out = repro(&[
        "fig5",
        "--scale",
        "0.02",
        "--queries",
        "4",
        "--metrics",
        "/nonexistent-dir/metrics.prom",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot write"), "{}", stderr(&out));
}

#[test]
fn json_write_failure_is_an_error_exit() {
    let out = repro(&[
        "fig5",
        "--scale",
        "0.02",
        "--queries",
        "4",
        "--json",
        "/nonexistent-dir/bench.json",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot write"), "{}", stderr(&out));
}

#[test]
fn unknown_flag_fails() {
    let out = repro(&["fig5", "--bogus"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag: --bogus"));
}

#[test]
fn threads_zero_prints_usage_and_fails() {
    let out = repro(&["threads", "--threads", "0"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("--threads must be at least 1"), "{err}");
    assert!(err.contains("usage: repro"), "bad flags must print usage");
}
