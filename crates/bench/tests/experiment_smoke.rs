//! Every experiment completes — the regression net for the "tractable
//! repro suite" guarantee.
//!
//! Tests run unoptimized, so each experiment executes at a tiny scale with
//! a generous per-experiment budget; the release-mode `repro` binary at its
//! default scale (the <10 s per experiment target) is exercised by the CI
//! smoke job and its numbers are recorded in BASELINES.md. The budget here
//! only catches order-of-magnitude regressions (an accidentally quadratic
//! loop, a removed cache), not seconds-level drift.

use flood_bench::experiments::{self as exp, ExpConfig};
use flood_bench::phases;
use std::time::{Duration, Instant};

/// Tiny but non-degenerate: a few thousand rows, enough queries for every
/// workload template to appear.
fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.02,
        queries: 8,
        ..Default::default()
    }
}

/// Generous debug-mode budget per experiment.
const BUDGET: Duration = Duration::from_secs(180);

fn assert_completes(name: &str, run: fn(&ExpConfig)) {
    let cfg = tiny();
    let t0 = Instant::now();
    run(&cfg);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < BUDGET,
        "{name} took {elapsed:?} at tiny scale (budget {BUDGET:?}) — \
         an order-of-magnitude perf regression"
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            assert_completes(stringify!($name), exp::$name::run);
        }
    )*};
}

smoke!(
    tab1, tab2, tab3, tab4, fig5, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
    fig16, fig17, colstore, costmodel, lookup, threads, optcost, drift, serve, scanspeed, obs,
    tiered, correlate,
);

/// The harness attributes wall-clock to named phases while experiments run.
#[test]
fn experiments_record_phase_timings() {
    phases::reset_phases();
    exp::fig7::run_dataset(&tiny(), flood_data::DatasetKind::Sales);
    let rows = phases::phase_totals();
    let phase = |n: &str| rows.iter().find(|(name, _, _)| name == n);
    for want in ["data-gen", "layout-opt", "index-build", "query-exec"] {
        let (_, total, count) = phase(want).unwrap_or_else(|| panic!("{want} phase recorded"));
        assert!(*count > 0);
        assert!(*total > Duration::ZERO);
    }
}
