//! The Flood index: build (layout → storage order → per-cell models) and
//! query execution (projection → refinement → scan), §3 and §5.
//!
//! Execution is organized in the paper's three explicit phases so that
//! per-phase timings — needed to calibrate the cost model (§4.1.1) and to
//! produce Table 2's IT/ST breakdown — fall out of normal operation.

use crate::config::{FloodConfig, Refinement};
use crate::correlation::{CorrSupport, HostSlot};
use crate::flatten::Flattener;
use crate::grid::Grid;
use crate::layout::Layout;
use flood_learned::plm::PiecewiseLinearModel;
use flood_store::index_trait::{MultiDimIndex, PartitionedScan, ScanPlan};
use flood_store::{
    partition_ranges, scan_checked_dims, scan_checked_dims_packed, scan_exact, CumulativeColumn,
    RangeChunk, RangeQuery, ScanMode, ScanStats, Table, Visitor,
};
use std::time::Instant;

/// Per-phase wall-clock timings of one query (nanoseconds).
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimes {
    /// Time locating intersecting cells and their physical ranges.
    pub projection_ns: u64,
    /// Time narrowing ranges over the sort dimension.
    pub refinement_ns: u64,
    /// Time scanning and filtering points.
    pub scan_ns: u64,
}

impl PhaseTimes {
    /// Total indexing time (projection + refinement) — Table 2's IT.
    pub fn index_ns(&self) -> u64 {
        self.projection_ns + self.refinement_ns
    }

    /// Total query time.
    pub fn total_ns(&self) -> u64 {
        self.projection_ns + self.refinement_ns + self.scan_ns
    }
}

/// Build-phase timings (Table 4's loading time).
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildTimes {
    /// Time spent training flattening CDFs.
    pub flatten_ns: u64,
    /// Time spent assigning cells and sorting the data.
    pub sort_ns: u64,
    /// Time spent building per-cell refinement models.
    pub models_ns: u64,
}

/// One cell's physical range after projection, before/after refinement.
#[derive(Debug, Clone, Copy)]
struct CellRange {
    cell: u32,
    start: u32,
    end: u32,
    /// Bit i set ⇒ grid ordering position i sits on a boundary column and
    /// its dimension must be checked per point.
    boundary_mask: u32,
}

/// A learned multi-dimensional clustered in-memory index (§3).
#[derive(Debug)]
pub struct FloodIndex {
    cfg: FloodConfig,
    layout: Layout,
    grid: Grid,
    flattener: Flattener,
    /// The data, re-ordered into Flood's storage order.
    data: Table,
    /// `cell_starts[c]..cell_starts[c+1]` is cell `c`'s physical range.
    cell_starts: Vec<u32>,
    /// Per-cell PLM over the sort dimension (None for small/empty cells).
    cell_models: Vec<Option<PiecewiseLinearModel>>,
    /// Pre-built cumulative SUM columns, keyed by dimension.
    cumulatives: Vec<(usize, CumulativeColumn)>,
    /// Soft-FD support (Tsunami/COAX extension): exact full-table
    /// envelopes + outlier rows per collapse-grade dependency whose host
    /// is indexed. Empty when `cfg.correlation` is disabled or nothing was
    /// detected.
    correlation: CorrSupport,
    build_times: BuildTimes,
}

impl FloodIndex {
    /// Build the index over `table` with the given layout and configuration.
    ///
    /// # Panics
    /// Panics if the table exceeds `u32::MAX` rows or a layout dimension is
    /// out of bounds.
    pub fn build(table: &Table, layout: Layout, cfg: FloodConfig) -> Self {
        assert!(
            table.len() < u32::MAX as usize,
            "table too large for u32 row ids"
        );
        for &d in layout.order() {
            assert!(d < table.dims(), "layout dimension {d} out of bounds");
        }
        let mut build_times = BuildTimes::default();

        // 1. Flattening CDFs for the grid dimensions (§5.1).
        let t0 = Instant::now();
        let flattener = Flattener::build(table, layout.grid_dims(), cfg.flattening);
        build_times.flatten_ns = t0.elapsed().as_nanos() as u64;

        // 2. Assign each point to a cell, sort by (cell, sort value) — the
        //    depth-first traversal order of §3.1 — and reorder the data.
        let t0 = Instant::now();
        let grid = Grid::new(&layout);
        let n = table.len();
        let sort_dim = layout.sort_dim();
        let mut keyed: Vec<(u64, u64, u32)> = Vec::with_capacity(n);
        {
            let grid_dims = layout.grid_dims();
            let cols = layout.cols();
            let mut coords = vec![0usize; grid_dims.len()];
            for row in 0..n {
                for (i, (&d, &c)) in grid_dims.iter().zip(cols).enumerate() {
                    coords[i] = flattener.bucket(d, table.value(row, d), c);
                }
                let cell = grid.cell_id(&coords) as u64;
                keyed.push((cell, table.value(row, sort_dim), row as u32));
            }
        }
        keyed.sort_unstable();
        let perm: Vec<u32> = keyed.iter().map(|&(_, _, r)| r).collect();
        let mut data = table.permuted(&perm);
        if cfg.compress {
            data.compress();
        }

        // Cell table: physical index of the first point of each cell.
        let num_cells = grid.num_cells();
        let mut cell_starts = vec![0u32; num_cells + 1];
        {
            let mut counts = vec![0u32; num_cells];
            for &(cell, _, _) in &keyed {
                counts[cell as usize] += 1;
            }
            let mut acc = 0u32;
            for (c, &cnt) in counts.iter().enumerate() {
                cell_starts[c] = acc;
                acc += cnt;
            }
            cell_starts[num_cells] = acc;
        }
        drop(keyed);
        build_times.sort_ns = t0.elapsed().as_nanos() as u64;

        // 3. Per-cell refinement models over the sort dimension (§5.2).
        let t0 = Instant::now();
        let mut cell_models: Vec<Option<PiecewiseLinearModel>> = Vec::with_capacity(num_cells);
        if cfg.refinement == Refinement::Plm && layout.has_sort_dim() {
            let mut buf: Vec<u64> = Vec::new();
            for c in 0..num_cells {
                let (s, e) = (cell_starts[c] as usize, cell_starts[c + 1] as usize);
                if e - s >= cfg.plm_min_cell_size {
                    buf.clear();
                    buf.extend((s..e).map(|i| data.value(i, sort_dim)));
                    cell_models.push(Some(PiecewiseLinearModel::build(&buf, cfg.plm_delta)));
                } else {
                    cell_models.push(None);
                }
            }
        } else {
            cell_models.resize_with(num_cells, || None);
        }
        build_times.models_ns = t0.elapsed().as_nanos() as u64;

        let cumulatives = cfg
            .cumulative_dims
            .iter()
            .map(|&d| (d, data.cumulative_sum(d)))
            .collect();

        // 4. Soft-FD support (extension): detect on a sample, then build
        //    exact per-host envelopes + outlier cells over the full
        //    reordered data, so query-time tightening is lossless.
        let correlation = CorrSupport::build(&cfg.correlation, &layout, &grid, &data, &cell_starts);

        FloodIndex {
            cfg,
            layout,
            grid,
            flattener,
            data,
            cell_starts,
            cell_models,
            cumulatives,
            correlation,
            build_times,
        }
    }

    /// The soft FDs this index actively exploits (detected at build time,
    /// host indexed). Empty when correlation is disabled or nothing
    /// qualified.
    pub fn active_fds(&self) -> Vec<crate::correlation::SoftFd> {
        self.correlation.fds.iter().map(|s| s.fd).collect()
    }

    /// The layout this index was built with.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &FloodConfig {
        &self.cfg
    }

    /// The reordered data (Flood is a clustered index: this *is* the table).
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// The flattening models.
    pub fn flattener(&self) -> &Flattener {
        &self.flattener
    }

    /// Build-phase timings (Table 4's loading time).
    pub fn build_times(&self) -> BuildTimes {
        self.build_times
    }

    /// Number of non-empty cells.
    pub fn non_empty_cells(&self) -> usize {
        self.cell_starts.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// The grid geometry (strides, column counts).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Physical range `[start, end)` of cell `c` in the reordered data.
    #[inline]
    pub fn cell_range(&self, c: usize) -> (usize, usize) {
        (
            self.cell_starts[c] as usize,
            self.cell_starts[c + 1] as usize,
        )
    }

    /// Sizes of all non-empty cells (cost-model features, §4.1.1).
    pub fn cell_sizes(&self) -> Vec<usize> {
        self.cell_starts
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Execute `query` with per-phase timing (the profiled variant behind
    /// [`MultiDimIndex::execute`]).
    pub fn execute_profiled(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> (ScanStats, PhaseTimes) {
        let mut counter = MatchCounter {
            inner: visitor,
            matched: 0,
        };
        // Phases 1–2: projection (§3.2.1) + refinement (§3.2.2, §5.2).
        let (cells, mut stats, mut times) = self.plan(query);
        // Phase 3: scan (§3.2(3)).
        let t0 = Instant::now();
        let unindexed = self.unindexed_checks(query);
        self.scan_cells(&cells, query, agg_dim, &unindexed, &mut counter, &mut stats);
        times.scan_ns = t0.elapsed().as_nanos() as u64;
        stats.points_matched = counter.matched;
        (stats, times)
    }

    /// Filters on dimensions outside the index (always checked per point).
    fn unindexed_checks(&self, query: &RangeQuery) -> Vec<(usize, u64, u64)> {
        query
            .filtered_dims()
            .into_iter()
            .filter(|d| !self.layout.order().contains(d))
            .map(|d| {
                let (lo, hi) = query.bound(d).expect("filtered");
                (d, lo, hi)
            })
            .collect()
    }

    /// Scan a set of planned (projected + refined) cell ranges.
    fn scan_cells(
        &self,
        cells: &[CellRange],
        query: &RangeQuery,
        agg_dim: Option<usize>,
        unindexed: &[(usize, u64, u64)],
        visitor: &mut dyn Visitor,
        stats: &mut ScanStats,
    ) {
        let grid_dims = self.layout.grid_dims();
        let cumulative = agg_dim.and_then(|d| {
            self.cumulatives
                .iter()
                .find(|(dim, _)| *dim == d)
                .map(|(_, c)| c)
        });
        let mut checks: Vec<(usize, u64, u64)> = Vec::new();
        // The check list depends only on the boundary mask (and the fixed
        // unindexed tail), so runs of equal-mask ranges — notably the
        // residual single-row ranges, which all carry the full mask —
        // rebuild it once.
        let mut cached_mask: Option<u32> = None;
        for cr in cells {
            let (s, e) = (cr.start as usize, cr.end as usize);
            if s >= e {
                continue;
            }
            stats.ranges_scanned += 1;
            if cached_mask != Some(cr.boundary_mask) {
                cached_mask = Some(cr.boundary_mask);
                checks.clear();
                let mut mask = cr.boundary_mask;
                while mask != 0 {
                    let i = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let d = grid_dims[i];
                    let (lo, hi) = query.bound(d).expect("boundary dims are filtered");
                    checks.push((d, lo, hi));
                }
                checks.extend_from_slice(unindexed);
            }
            // Sort-dimension values are exact after refinement, so the sort
            // dimension never appears in the check list.
            if checks.is_empty() {
                scan_exact(&self.data, s, e, agg_dim, cumulative, visitor, stats);
            } else if self.cfg.scan_mode == ScanMode::Packed {
                scan_checked_dims_packed(
                    &self.data, &checks, s, e, agg_dim, cumulative, visitor, stats,
                );
            } else {
                scan_checked_dims(&self.data, &checks, s, e, agg_dim, visitor, stats);
            }
        }
    }

    /// Projection + refinement: the planned cell ranges, the stats gathered
    /// so far, and the per-phase timings.
    ///
    /// With soft-FD support present (see [`crate::correlation`]), a filter
    /// on a collapsed dependent dimension additionally (1) tightens the
    /// host's projection range to the columns whose exact envelope
    /// intersects the filter, (2) when the host is the sort dimension,
    /// intersects the translated host bound into every cell's refinement,
    /// and (3) re-adds each *outlier row* whose dependent value matches
    /// the filter as an individual single-row range with a full boundary
    /// mask (every filtered grid dimension checked per point, the sort
    /// bound checked here), unless the main plan already covers it. The
    /// dependent's own bound is still enforced per point by the scan
    /// kernels, so results are identical to the untightened plan — only
    /// the visit counts differ, and residual work is bounded by the
    /// outlier count rather than by cell sizes.
    fn plan(&self, query: &RangeQuery) -> (Vec<CellRange>, ScanStats, PhaseTimes) {
        let mut stats = ScanStats::default();
        let mut times = PhaseTimes::default();
        let t0 = Instant::now();
        let grid_dims = self.layout.grid_dims();
        let cols = self.layout.cols();
        // Base projection: the query's own bounds, per grid dimension.
        let mut base: Vec<(usize, usize)> = Vec::with_capacity(grid_dims.len());
        for (&d, &c) in grid_dims.iter().zip(cols) {
            match query.bound(d) {
                Some((lo, hi)) => base.push((
                    self.flattener.bucket(d, lo, c),
                    self.flattener.bucket(d, hi, c),
                )),
                None => base.push((0, c - 1)),
            }
        }

        // Soft-FD tightening: each applicable dependency (dependent
        // filtered, host indexed) narrows where non-outlier matches can
        // live. `empty_main` ⇒ no non-outlier row matches at all and only
        // outlier rows need visiting.
        let mut ranges = base.clone();
        let mut empty_main = false;
        // Translated sort bounds; None ⇒ no non-outlier match.
        let mut sort_fds: Vec<Option<(u64, u64)>> = Vec::new();
        let mut applicable: Vec<usize> = Vec::new();
        if !self.correlation.is_empty() {
            for (fi, f) in self.correlation.fds.iter().enumerate() {
                let Some((lo, hi)) = query.bound(f.fd.dep) else {
                    continue;
                };
                applicable.push(fi);
                match f.slot {
                    HostSlot::Grid(i) => match f.translate_cols(lo, hi) {
                        Some((tlo, thi)) => {
                            ranges[i].0 = ranges[i].0.max(tlo);
                            ranges[i].1 = ranges[i].1.min(thi);
                            if ranges[i].0 > ranges[i].1 {
                                empty_main = true;
                            }
                        }
                        None => empty_main = true,
                    },
                    HostSlot::Sort => sort_fds.push(f.translate_sort(lo, hi)),
                }
            }
        }

        stats.cells_projected = if empty_main {
            0
        } else {
            Grid::cells_in_ranges(&ranges) as u64
        };
        let mut cells: Vec<CellRange> = Vec::new();
        if !empty_main {
            self.grid.for_each_cell(&ranges, |cell, coords| {
                let (s, e) = self.cell_range(cell);
                if s == e {
                    return;
                }
                let mut mask = 0u32;
                for (i, &c) in coords.iter().enumerate() {
                    let d = grid_dims[i];
                    if !query.filters(d) {
                        continue;
                    }
                    // Boundary columns are defined by the query's own
                    // bounds (`base`): FD tightening narrows *which* cells
                    // are visited, not which columns are partially covered.
                    let (lo_col, hi_col) = base[i];
                    if c == lo_col || c == hi_col {
                        mask |= 1 << i;
                    }
                }
                cells.push(CellRange {
                    cell: cell as u32,
                    start: s as u32,
                    end: e as u32,
                    boundary_mask: mask,
                });
            });
        }

        times.projection_ns = t0.elapsed().as_nanos() as u64;

        // Refinement over the sort dimension (skipped by histogram layouts,
        // whose last dimension is gridded, not sorted): the query's own
        // bound intersected with the sort-hosted FD translations — rows a
        // translation excludes are, by the envelope invariant, outliers of
        // that FD and re-added individually below.
        let t0 = Instant::now();
        let sort_dim = self.layout.sort_dim();
        let qsort = if self.layout.has_sort_dim() {
            query.bound(sort_dim)
        } else {
            None
        };
        if self.layout.has_sort_dim() && (qsort.is_some() || !sort_fds.is_empty()) {
            for cr in &mut cells {
                let mut eff = qsort;
                let mut dead = false;
                for &tb in &sort_fds {
                    match tb {
                        None => {
                            dead = true;
                            break;
                        }
                        Some((a, b)) => {
                            eff = Some(match eff {
                                None => (a, b),
                                Some((lo, hi)) => (lo.max(a), hi.min(b)),
                            });
                        }
                    }
                }
                if dead {
                    cr.start = cr.end;
                    continue;
                }
                let Some((a, b)) = eff else {
                    continue;
                };
                if a > b {
                    cr.start = cr.end;
                    continue;
                }
                let (s, e) = (cr.start as usize, cr.end as usize);
                let len = e - s;
                let get = |i: usize| self.data.value(s + i, sort_dim);
                let (i1, i2) = match &self.cell_models[cr.cell as usize] {
                    Some(plm) => (plm.lookup_lb(a, get), plm.lookup_ub(b, get)),
                    None => (
                        partition_point(len, |i| get(i) < a),
                        partition_point(len, |i| get(i) <= b),
                    ),
                };
                stats.refinements += 1;
                cr.start = (s + i1) as u32;
                cr.end = (s + i2) as u32;
            }
        }
        // Residual pass: rows outside their FD envelope may match even
        // though tightening or refinement excluded them. Re-add each
        // outlier row whose dependent value matches its FD's filter as a
        // single-row range — the full boundary mask and the unindexed
        // check list enforce the rest of the query per point, and the sort
        // bound is checked right here since single-row ranges bypass
        // refinement. Rows the main plan already scans are skipped, so no
        // row is ever visited twice.
        if !applicable.is_empty() {
            let mut full_mask = 0u32;
            for (i, &d) in grid_dims.iter().enumerate() {
                if query.filters(d) {
                    full_mask |= 1 << i;
                }
            }
            let mut rows: Vec<(u32, u32)> = Vec::new();
            for &fi in &applicable {
                let f = &self.correlation.fds[fi];
                let (lo, hi) = query.bound(f.fd.dep).expect("applicable ⇒ filtered");
                rows.extend(f.outliers_in(lo, hi).iter().map(|&(_, r, c)| (r, c)));
            }
            // One FD's outliers are already distinct rows; only a
            // multi-FD union can repeat one.
            if applicable.len() > 1 {
                rows.sort_unstable();
                rows.dedup();
            }
            let mut extra: Vec<CellRange> = Vec::new();
            for (r, cell) in rows {
                // Must satisfy the query's own projection (the cell id was
                // precomputed at build time alongside the outlier row).
                let cell = cell as usize;
                if !self.grid.cell_in_ranges(cell, &base) {
                    continue;
                }
                if let Some((a, b)) = qsort {
                    let v = self.data.value(r as usize, sort_dim);
                    if v < a || v > b {
                        continue;
                    }
                }
                // Main entries are in ascending cell order (`for_each_cell`
                // iterates cell ids in order), so the row's cell — and
                // whether its refined range already covers the row — is a
                // binary search away.
                if let Ok(i) = cells.binary_search_by_key(&(cell as u32), |cr| cr.cell) {
                    if cells[i].start <= r && r < cells[i].end {
                        continue;
                    }
                }
                extra.push(CellRange {
                    cell: cell as u32,
                    start: r,
                    end: r + 1,
                    boundary_mask: full_mask,
                });
            }
            cells.extend(extra);
        }
        stats.cells_visited = cells.len() as u64;
        times.refinement_ns = t0.elapsed().as_nanos() as u64;
        (cells, stats, times)
    }
}

impl MultiDimIndex for FloodIndex {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        self.execute_profiled(query, agg_dim, visitor).0
    }

    fn index_size_bytes(&self) -> usize {
        let models: usize = self
            .cell_models
            .iter()
            .flatten()
            .map(PiecewiseLinearModel::size_bytes)
            .sum();
        self.cell_starts.len() * 4
            + models
            + self.flattener.size_bytes()
            + std::mem::size_of::<Layout>()
    }

    fn name(&self) -> &'static str {
        "Flood"
    }
}

/// A partitioned Flood query plan (§8: "different cells can be refined and
/// scanned simultaneously"): projection and refinement have already run on
/// the planning thread; the surviving cell ranges are split into balanced,
/// block-aligned tasks for the `flood-exec` pool.
struct FloodScanPlan<'a> {
    index: &'a FloodIndex,
    query: RangeQuery,
    agg_dim: Option<usize>,
    unindexed: Vec<(usize, u64, u64)>,
    /// Refined cell ranges, indexed by [`RangeChunk::source`].
    cells: Vec<CellRange>,
    tasks: Vec<Vec<RangeChunk>>,
    plan_stats: ScanStats,
}

impl ScanPlan for FloodScanPlan<'_> {
    fn tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize, visitor: &mut dyn Visitor, stats: &mut ScanStats) {
        let chunks = &self.tasks[i];
        let subs: Vec<CellRange> = chunks
            .iter()
            .map(|ch| {
                let cr = self.cells[ch.source];
                CellRange {
                    cell: cr.cell,
                    start: ch.start as u32,
                    end: ch.end as u32,
                    boundary_mask: cr.boundary_mask,
                }
            })
            .collect();
        let mut counter = MatchCounter {
            inner: visitor,
            matched: 0,
        };
        self.index.scan_cells(
            &subs,
            &self.query,
            self.agg_dim,
            &self.unindexed,
            &mut counter,
            stats,
        );
        // A cut range is still one range: attribute it to the chunk that
        // opened it so merged stats equal the serial scan's.
        stats.ranges_scanned -= chunks.iter().filter(|c| c.continuation).count() as u64;
        stats.points_matched += counter.matched;
    }

    fn plan_stats(&self) -> ScanStats {
        self.plan_stats
    }
}

impl PartitionedScan for FloodIndex {
    fn plan_scan(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> Box<dyn ScanPlan + '_> {
        let (cells, plan_stats, _times) = self.plan(query);
        let unindexed = self.unindexed_checks(query);
        let ranges: Vec<(usize, usize)> = cells
            .iter()
            .map(|c| (c.start as usize, c.end as usize))
            .collect();
        let tasks = partition_ranges(&ranges, max_tasks);
        Box::new(FloodScanPlan {
            index: self,
            query: query.clone(),
            agg_dim,
            unindexed,
            cells,
            tasks,
            plan_stats,
        })
    }
}

/// First index in `[0, len)` where `pred` turns false (binary search).
fn partition_point(len: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Wraps the user's visitor to count matched points for [`ScanStats`].
struct MatchCounter<'a> {
    inner: &'a mut dyn Visitor,
    matched: u64,
}

impl Visitor for MatchCounter<'_> {
    #[inline]
    fn visit(&mut self, row: usize, value: u64) {
        self.matched += 1;
        self.inner.visit(row, value);
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.matched += count as u64;
        self.inner.visit_exact_sum(count, sum);
    }

    fn needs_value(&self) -> bool {
        self.inner.needs_value()
    }

    fn supports_exact(&self) -> bool {
        self.inner.supports_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FloodBuilder;
    use crate::flatten::Flattening;
    use flood_store::{scan_full, CollectVisitor, CountVisitor, SumVisitor};

    /// Deterministic pseudo-random test table.
    fn table(n: usize, dims: usize, seed: u64) -> Table {
        let mut cols = vec![Vec::with_capacity(n); dims];
        let mut state = seed | 1;
        for _ in 0..n {
            for (d, col) in cols.iter_mut().enumerate() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = match d % 3 {
                    0 => (state >> 40) % 1_000,          // uniform small domain
                    1 => ((state >> 33) % 1_000).pow(2), // skewed
                    _ => state >> 20,                    // wide domain
                };
                col.push(v);
            }
        }
        Table::from_columns(cols)
    }

    fn reference_count(t: &Table, q: &RangeQuery) -> u64 {
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_full(t, q, None, &mut v, &mut s);
        v.count
    }

    fn reference_sum(t: &Table, q: &RangeQuery, agg: usize) -> u64 {
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_full(t, q, Some(agg), &mut v, &mut s);
        v.sum
    }

    fn queries(dims: usize) -> Vec<RangeQuery> {
        let mut qs = vec![
            RangeQuery::all(dims), // match everything
            RangeQuery::all(dims).with_range(0, 100, 300),
            RangeQuery::all(dims).with_range(0, 0, 0), // equality, maybe empty
            RangeQuery::all(dims)
                .with_range(0, 200, 800)
                .with_range(1, 0, 250_000),
        ];
        if dims >= 3 {
            qs.push(
                RangeQuery::all(dims)
                    .with_range(1, 10_000, 640_000)
                    .with_range(2, 1 << 60, u64::MAX),
            );
            qs.push(
                RangeQuery::all(dims)
                    .with_range(0, 500, 999)
                    .with_range(1, 0, 1 << 19)
                    .with_range(2, 0, 1 << 43),
            );
        }
        qs
    }

    #[test]
    fn matches_full_scan_on_all_queries() {
        let t = table(20_000, 3, 42);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = CountVisitor::default();
            let stats = index.execute(q, None, &mut v);
            assert_eq!(v.count, reference_count(&t, q), "query {i}");
            assert_eq!(stats.points_matched, v.count, "query {i} stats");
        }
    }

    #[test]
    fn matches_full_scan_uniform_flattening() {
        let t = table(20_000, 3, 7);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![5, 9]))
            .flattening(Flattening::Uniform)
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = CountVisitor::default();
            index.execute(q, None, &mut v);
            assert_eq!(v.count, reference_count(&t, q), "query {i}");
        }
    }

    #[test]
    fn matches_full_scan_binary_search_refinement() {
        let t = table(20_000, 3, 11);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 4]))
            .refinement(Refinement::BinarySearch)
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = CountVisitor::default();
            index.execute(q, None, &mut v);
            assert_eq!(v.count, reference_count(&t, q), "query {i}");
        }
    }

    #[test]
    fn sum_aggregation_matches() {
        let t = table(15_000, 3, 13);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = SumVisitor::default();
            index.execute(q, Some(1), &mut v);
            assert_eq!(v.sum, reference_sum(&t, q, 1), "query {i}");
        }
    }

    #[test]
    fn cumulative_column_fast_path_matches() {
        let t = table(15_000, 3, 17);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .cumulative_sum(1)
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = SumVisitor::default();
            index.execute(q, Some(1), &mut v);
            assert_eq!(v.sum, reference_sum(&t, q, 1), "query {i}");
        }
    }

    #[test]
    fn compressed_storage_matches() {
        let t = table(10_000, 3, 19);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .compress(true)
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = CountVisitor::default();
            index.execute(q, None, &mut v);
            assert_eq!(v.count, reference_count(&t, q), "query {i}");
        }
    }

    #[test]
    fn unindexed_dimension_filters_still_apply() {
        let t = table(10_000, 4, 23);
        // Index only dims 0,1,2; dim 3 filters must be checked in the scan.
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
            .build(&t);
        let q = RangeQuery::all(4)
            .with_range(0, 100, 900)
            .with_range(3, 0, 1 << 42);
        let mut v = CountVisitor::default();
        index.execute(&q, None, &mut v);
        assert_eq!(v.count, reference_count(&t, &q));
    }

    #[test]
    fn histogram_layout_matches_full_scan() {
        let t = table(20_000, 3, 53);
        let index = FloodBuilder::new()
            .layout(Layout::histogram(vec![0, 1, 2], vec![4, 4, 4]))
            .build(&t);
        for (i, q) in queries(3).iter().enumerate() {
            let mut v = CountVisitor::default();
            let stats = index.execute(q, None, &mut v);
            assert_eq!(v.count, reference_count(&t, q), "query {i}");
            assert_eq!(stats.refinements, 0, "histogram layouts never refine");
        }
    }

    #[test]
    fn sort_only_layout_behaves_like_clustered_index() {
        let t = table(10_000, 2, 29);
        let index = FloodBuilder::new().layout(Layout::sort_only(1)).build(&t);
        let q = RangeQuery::all(2).with_range(1, 0, 1 << 50);
        let mut v = CountVisitor::default();
        let stats = index.execute(&q, None, &mut v);
        assert_eq!(v.count, reference_count(&t, &q));
        assert_eq!(stats.cells_visited, 1);
        // Refined exactly: zero scan overhead.
        assert_eq!(stats.scan_overhead(), Some(1.0));
    }

    #[test]
    fn interior_cells_scan_exactly() {
        // A query covering everything in the grid dims and refining the sort
        // dim: every cell interior ⇒ scan overhead 1.0.
        let t = table(20_000, 3, 31);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&t);
        let q = RangeQuery::all(3).with_range(2, 0, 1 << 42);
        let mut v = CountVisitor::default();
        let stats = index.execute(&q, None, &mut v);
        assert_eq!(v.count, reference_count(&t, &q));
        assert_eq!(stats.points_scanned, 0, "all ranges should be exact");
        assert_eq!(stats.points_in_exact_ranges, v.count);
    }

    #[test]
    fn collect_visitor_rows_are_valid() {
        let t = table(5_000, 3, 37);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&t);
        let q = RangeQuery::all(3).with_range(0, 100, 500);
        let mut v = CollectVisitor::default();
        index.execute(&q, None, &mut v);
        // Row ids refer to the index's own storage order.
        for &row in &v.rows {
            assert!(q.matches(&index.data().row(row)));
        }
        assert_eq!(v.rows.len() as u64, reference_count(&t, &q));
    }

    #[test]
    fn stats_are_populated() {
        let t = table(20_000, 3, 41);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        let q = RangeQuery::all(3)
            .with_range(0, 100, 700)
            .with_range(2, 0, 1 << 40);
        let mut v = CountVisitor::default();
        let (stats, times) = index.execute_profiled(&q, None, &mut v);
        assert!(stats.cells_visited > 0);
        assert!(
            stats.refinements > 0,
            "sort-dim filter must trigger refinement"
        );
        assert!(times.total_ns() > 0);
        assert!(stats.scan_overhead().unwrap_or(1.0) >= 1.0);
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1], vec![4]))
            .build(&t);
        let mut v = CountVisitor::default();
        let stats = index.execute(&RangeQuery::all(2), None, &mut v);
        assert_eq!(v.count, 0);
        assert_eq!(stats.cells_visited, 0);
    }

    #[test]
    fn single_row_table() {
        let t = Table::from_columns(vec![vec![5], vec![9]]);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1], vec![4]))
            .build(&t);
        let mut v = CountVisitor::default();
        index.execute(&RangeQuery::all(2).with_eq(0, 5), None, &mut v);
        assert_eq!(v.count, 1);
        let mut v = CountVisitor::default();
        index.execute(&RangeQuery::all(2).with_eq(0, 6), None, &mut v);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn index_size_accounts_models() {
        let t = table(50_000, 3, 43);
        let plain = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .refinement(Refinement::BinarySearch)
            .build(&t);
        let with_models = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        assert!(with_models.index_size_bytes() > plain.index_size_bytes());
    }

    /// Run every task of a partitioned plan sequentially into its own
    /// visitor, merging like the executor does — isolates the plan's
    /// correctness from the thread pool (exercised in `flood-exec`).
    fn run_plan_merged<V: flood_store::MergeVisitor + Default>(
        index: &FloodIndex,
        q: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> (V, ScanStats) {
        let plan = index.plan_scan(q, agg_dim, max_tasks);
        let mut merged = V::default();
        let mut stats = plan.plan_stats();
        for i in 0..plan.tasks() {
            let mut v = V::default();
            let mut s = ScanStats::default();
            plan.run_task(i, &mut v, &mut s);
            merged.merge_from(v);
            stats.merge(&s);
        }
        (merged, stats)
    }

    #[test]
    fn partitioned_plan_matches_sequential() {
        let t = table(30_000, 3, 59);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        for max_tasks in [1usize, 2, 4, 7, 32] {
            for (i, q) in queries(3).iter().enumerate() {
                let mut seq = CountVisitor::default();
                let seq_stats = index.execute(q, None, &mut seq);
                let (par, par_stats) = run_plan_merged::<CountVisitor>(&index, q, None, max_tasks);
                assert_eq!(par.count, seq.count, "query {i}, {max_tasks} tasks");
                assert_eq!(
                    par_stats, seq_stats,
                    "query {i}, {max_tasks} tasks: merged stats must equal serial"
                );
            }
        }
    }

    #[test]
    fn partitioned_sum_matches_sequential() {
        let t = table(20_000, 3, 61);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
            .cumulative_sum(1)
            .build(&t);
        let q = RangeQuery::all(3)
            .with_range(0, 0, 800)
            .with_range(2, 0, 1 << 45);
        let mut seq = SumVisitor::default();
        let seq_stats = index.execute(&q, Some(1), &mut seq);
        let (par, par_stats) = run_plan_merged::<SumVisitor>(&index, &q, Some(1), 4);
        assert_eq!(par.sum, seq.sum);
        assert_eq!(par.count, seq.count);
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn build_times_recorded() {
        let t = table(10_000, 3, 47);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        let bt = index.build_times();
        assert!(bt.sort_ns > 0);
    }
}
