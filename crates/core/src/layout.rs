//! Layouts: the search space of Flood's self-optimization.
//!
//! A layout `L = (O, {c_i})` is an ordering `O` of the indexed dimensions —
//! the last entry is the *sort dimension*, the rest form the grid — plus the
//! number of columns `c_i` for each grid dimension (§4). Dimensions of the
//! table absent from `O` are not indexed at all (Flood "chooses not to
//! include the least frequently filtered dimensions", §7.5); their filters
//! are applied during the scan step.
//!
//! Paper map — which experiment exercises what:
//! - [`Layout::new`] (grid + sort dimension) is the full §4 design; every
//!   learned index in `repro fig7`–`fig12` is built from one.
//! - [`Layout::histogram`] (no sort dimension) is the Fig 11 ablation's
//!   "Simple Grid" starting point.
//! - [`Layout::with_cols`] rescales column counts while keeping the
//!   ordering — Fig 14's cells-vs-time sweep and Fig 8's size/time
//!   frontier both use it to move along one axis of the search space.
//! - The total cell count ([`Layout::num_cells`]) is the x-axis of Fig 14
//!   and the size knob behind Fig 8.

use serde::{Deserialize, Serialize};

/// A Flood layout: dimension ordering plus per-grid-dimension column counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Indexed dimensions in grid order; the **last** entry is the sort
    /// dimension. May be a subset of the table's dimensions.
    order: Vec<usize>,
    /// `cols[i]` = number of columns for grid dimension `order[i]`
    /// (`cols.len() == order.len() - 1`). Every entry is ≥ 1; a dimension
    /// with a single column is effectively unpartitioned.
    cols: Vec<usize>,
}

impl Layout {
    /// Create a layout. `order` lists the indexed dimensions (sort dimension
    /// last); `cols` gives column counts for the `order.len() - 1` grid
    /// dimensions.
    ///
    /// # Panics
    /// Panics if `order` is empty or contains duplicates, if `cols` has the
    /// wrong length, or any column count is zero.
    pub fn new(order: Vec<usize>, cols: Vec<usize>) -> Self {
        assert!(
            !order.is_empty(),
            "layout must index at least one dimension"
        );
        assert_eq!(
            cols.len(),
            order.len() - 1,
            "need one column count per grid dimension"
        );
        Self::validate(order, cols)
    }

    /// A *histogram* layout: every dimension in `order` is gridded and there
    /// is no sort dimension (`cols.len() == order.len()`). This is the
    /// "Simple Grid" baseline of the Fig 11 ablation — a d-dimensional
    /// histogram without within-cell ordering or refinement.
    pub fn histogram(order: Vec<usize>, cols: Vec<usize>) -> Self {
        assert!(
            !order.is_empty(),
            "layout must index at least one dimension"
        );
        assert_eq!(
            cols.len(),
            order.len(),
            "histogram layouts grid every dimension"
        );
        Self::validate(order, cols)
    }

    fn validate(order: Vec<usize>, cols: Vec<usize>) -> Self {
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), order.len(), "duplicate dimension in layout");
        assert!(cols.iter().all(|&c| c >= 1), "column counts must be >= 1");
        Layout { order, cols }
    }

    /// A layout that sorts by a single dimension (no grid) — Flood
    /// degenerates to a learned clustered index.
    pub fn sort_only(sort_dim: usize) -> Self {
        Layout::new(vec![sort_dim], vec![])
    }

    /// Whether the layout has a sort dimension (false for histogram
    /// layouts, where every dimension is gridded).
    #[inline]
    pub fn has_sort_dim(&self) -> bool {
        self.cols.len() + 1 == self.order.len()
    }

    /// The indexed dimensions in grid order, sort dimension last.
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The grid dimensions (all of `order` except the last; every dimension
    /// for histogram layouts).
    #[inline]
    pub fn grid_dims(&self) -> &[usize] {
        &self.order[..self.cols.len()]
    }

    /// The sort dimension.
    #[inline]
    pub fn sort_dim(&self) -> usize {
        *self.order.last().expect("layout is non-empty")
    }

    /// Column counts, aligned with [`Layout::grid_dims`].
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Column count for grid dimension at position `i` of the ordering.
    #[inline]
    pub fn col_count(&self, i: usize) -> usize {
        self.cols[i]
    }

    /// Total number of grid cells (product of column counts; 1 when there
    /// are no grid dimensions).
    pub fn num_cells(&self) -> usize {
        self.cols.iter().product::<usize>().max(1)
    }

    /// Number of indexed dimensions (grid dims + sort dim).
    pub fn num_dims(&self) -> usize {
        self.order.len()
    }

    /// A copy with different column counts (same ordering).
    pub fn with_cols(&self, cols: Vec<usize>) -> Self {
        Layout::new(self.order.clone(), cols)
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid[")?;
        for (i, (&d, &c)) in self.grid_dims().iter().zip(&self.cols).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{d}×{c}")?;
        }
        write!(f, "] sort=d{}", self.sort_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let l = Layout::new(vec![2, 0, 1], vec![4, 8]);
        assert_eq!(l.grid_dims(), &[2, 0]);
        assert_eq!(l.sort_dim(), 1);
        assert_eq!(l.num_cells(), 32);
        assert_eq!(l.num_dims(), 3);
    }

    #[test]
    fn sort_only_layout() {
        let l = Layout::sort_only(3);
        assert_eq!(l.grid_dims(), &[] as &[usize]);
        assert_eq!(l.sort_dim(), 3);
        assert_eq!(l.num_cells(), 1);
    }

    #[test]
    fn display() {
        let l = Layout::new(vec![1, 0], vec![16]);
        assert_eq!(l.to_string(), "grid[d1×16] sort=d0");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_dims_panic() {
        let _ = Layout::new(vec![0, 0], vec![4]);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_cols_len_panics() {
        let _ = Layout::new(vec![0, 1], vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_cols_panic() {
        let _ = Layout::new(vec![0, 1], vec![0]);
    }

    #[test]
    fn with_cols_keeps_order() {
        let l = Layout::new(vec![2, 1, 0], vec![2, 2]);
        let l2 = l.with_cols(vec![5, 6]);
        assert_eq!(l2.order(), &[2, 1, 0]);
        assert_eq!(l2.num_cells(), 30);
    }

    #[test]
    fn histogram_layout_grids_everything() {
        let l = Layout::histogram(vec![0, 1, 2], vec![4, 4, 4]);
        assert!(!l.has_sort_dim());
        assert_eq!(l.grid_dims(), &[0, 1, 2]);
        assert_eq!(l.num_cells(), 64);
        let std = Layout::new(vec![0, 1, 2], vec![4, 4]);
        assert!(std.has_sort_dim());
        assert_eq!(std.grid_dims(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "grid every dimension")]
    fn histogram_rejects_short_cols() {
        let _ = Layout::histogram(vec![0, 1], vec![4]);
    }
}
