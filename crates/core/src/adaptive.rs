//! Workload-shift detection and automatic re-learning (§8, Shifting
//! workloads).
//!
//! "Flood could periodically evaluate the cost (§4) of the current layout
//! on queries over a recent time window. If the cost exceeds a threshold,
//! Flood can replace the layout." — the loop is split into two halves with
//! very different sharing requirements:
//!
//! * [`ObservationLog`] — the *read side*: a sliding window of observed
//!   queries plus the check cadence counter, entirely behind interior
//!   mutability (a short-lived mutex around the deque, atomics for the
//!   counters). Any number of concurrent readers can
//!   [`ObservationLog::record`] through a shared reference while serving
//!   queries; exactly one of them is told a degradation check is due.
//! * [`Relearner`] — the *build side*: the layout optimizer, the cost
//!   baseline, and the re-learn caches. [`Relearner::check`] prices the
//!   current layout on a window snapshot and, when degraded, runs
//!   Algorithm 1 and decides adoption. It never touches an index: it
//!   returns the winning [`OptimizedLayout`] and the caller rebuilds and
//!   *publishes* however it likes — in place here, or behind an
//!   epoch-swapped `Arc` in `flood-serve`.
//!
//! [`AdaptiveFlood`] composes the two with a [`FloodIndex`] into the
//! single-threaded §8 loop: observe, check, rebuild in place.
//!
//! ## Cache sharing across re-learns
//!
//! Pricing and re-learning both run against a flattened data sample
//! ([`crate::optimizer::SampleSpace`]), whose expensive half — row
//! sampling, per-dimension RMI training, flattening — depends only on the
//! data. Flood is clustered, so rebuilds permute rows but never change the
//! data *multiset*; with [`AdaptiveConfig::share_cache`] (the default) the
//! [`Relearner`] keeps one [`EvaluatorCache`] alive across every check and
//! re-learn: the data sample is flattened **once**, and the
//! query-dependent layers (flattened windows, per-dimension mask caches,
//! layout memos) are keyed on a fingerprint of the sampled observation
//! window, so the degradation check that triggers a re-learn hands its
//! masks and memo entries straight to the layout search. With
//! `share_cache: false` every check and re-learn re-flattens from scratch
//! — the cold baseline the `repro drift` experiment measures against.
//! [`AdaptiveFlood::diagnostics`] reports both modes' work.
//!
//! ## Correlation across re-learns (Tsunami/COAX extension)
//!
//! No extra wiring is needed to keep soft-FD exploitation current: a
//! re-learn searches with [`crate::optimizer::OptimizerConfig::correlation`]
//! (collapse/re-weight candidates against the sampled window), and the
//! rebuild that adopts the winning layout re-runs exact support
//! construction inside [`FloodIndex`]'s build — envelopes and outlier rows
//! are **re-detected from scratch on every adopted layout**, so a
//! dependency that dissolved (or appeared) since the last build is picked
//! up automatically. `tests/prop_correlation.rs` pins the result identity
//! of this loop under a drifting workload.

use crate::config::FloodConfig;
use crate::index::FloodIndex;
use crate::layout::Layout;
use crate::optimizer::{EvaluatorCache, LayoutOptimizer, OptimizedLayout};
use flood_store::{MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration for the adaptive loop ([`AdaptiveFlood`], and the serving
/// layer's background adaptation in `flood-serve`).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Number of recent queries kept in the observation window.
    pub window: usize,
    /// Re-check cadence: evaluate the layout every `check_every` queries.
    pub check_every: usize,
    /// Retrain when `cost(current layout, window)` exceeds
    /// `degradation_factor × cost(layout at last build, its workload)`.
    pub degradation_factor: f64,
    /// Share the optimizer's flattened sample and statistics caches across
    /// checks and re-learns (the default). `false` re-flattens everything
    /// per check/re-learn — the cold baseline for measuring what sharing
    /// saves.
    pub share_cache: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 100,
            check_every: 50,
            degradation_factor: 1.5,
            share_cache: true,
        }
    }
}

/// Work counters for one adaptive loop's lifetime, for the `repro drift`
/// experiment and the re-learn regression tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveDiagnostics {
    /// Times the layout was replaced.
    pub relearns: usize,
    /// Degradation checks run (windows priced).
    pub checks: usize,
    /// Wall-clock of each re-learn *search* (a degraded check triggered
    /// Algorithm 1), whether or not the resulting layout was adopted.
    pub relearn_wall: Vec<Duration>,
    /// During re-learn searches: cost evaluations and per-dimension mask
    /// fetches served by cache state built *before* the search began — the
    /// degradation check's pricing work, or earlier windows. Always 0 with
    /// `share_cache: false`.
    pub cache_hits_across_relearns: usize,
    /// Times the data sample was flattened (sampling + RMI training).
    /// 1 for the whole lifetime with `share_cache`; grows with every check
    /// and re-learn without it.
    pub sample_flattens: usize,
    /// Observation windows flattened into a fresh evaluator.
    pub window_flattens: usize,
    /// Checks/re-learns answered by a pooled evaluator (same window
    /// fingerprint; only possible with `share_cache`).
    pub window_reuses: usize,
}

impl AdaptiveDiagnostics {
    /// Total wall-clock spent in re-learn searches.
    pub fn relearn_wall_total(&self) -> Duration {
        self.relearn_wall.iter().sum()
    }

    /// Publish these lifetime counters into a `flood-obs` registry under
    /// `subsystem` as gauges — the diagnostics are cumulative snapshots,
    /// so repeated exports overwrite rather than double-count.
    pub fn export(&self, registry: &flood_obs::Registry, subsystem: &str) {
        let g = |name: &str, v: usize| registry.gauge(subsystem, name).set(v as i64);
        g("relearns", self.relearns);
        g("checks", self.checks);
        g(
            "cache_hits_across_relearns",
            self.cache_hits_across_relearns,
        );
        g("sample_flattens", self.sample_flattens);
        g("window_flattens", self.window_flattens);
        g("window_reuses", self.window_reuses);
        registry
            .gauge(subsystem, "relearn_wall_ns")
            .set(self.relearn_wall_total().as_nanos() as i64);
    }
}

/// The read side of the adaptive loop: a sliding window of observed
/// queries plus the check-cadence counter, safe to record into from any
/// number of concurrent readers through a shared reference.
///
/// The deque sits behind a mutex held only for a push (microseconds — the
/// serving path never blocks behind a re-learn), the cadence counter is an
/// atomic, and the due-check handshake uses a compare-exchange so exactly
/// one recorder per crossing is told a check is due.
#[derive(Debug)]
pub struct ObservationLog {
    window: Mutex<VecDeque<RangeQuery>>,
    cap: usize,
    check_every: usize,
    since_check: AtomicUsize,
    observed: AtomicU64,
}

impl ObservationLog {
    /// A log keeping the most recent `cap` queries, declaring a check due
    /// every `check_every` records (once the window is at least half
    /// full).
    pub fn new(cap: usize, check_every: usize) -> Self {
        ObservationLog {
            window: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
            check_every,
            since_check: AtomicUsize::new(0),
            observed: AtomicU64::new(0),
        }
    }

    /// Record one observed query. Returns `true` when this record makes a
    /// degradation check due — `check_every` records have accumulated and
    /// the window is at least half full. Under concurrent recording
    /// exactly one caller per crossing sees `true`; the cadence counter
    /// only resets when a due check is claimed, matching the serial loop.
    pub fn record(&self, query: &RangeQuery) -> bool {
        let len = {
            let mut w = self.window.lock().expect("observation window poisoned");
            if w.len() == self.cap {
                w.pop_front();
            }
            w.push_back(query.clone());
            w.len()
        };
        self.observed.fetch_add(1, Ordering::Relaxed);
        let n = self.since_check.fetch_add(1, Ordering::AcqRel) + 1;
        n >= self.check_every
            && len >= self.cap / 2
            && self
                .since_check
                .compare_exchange(n, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
    }

    /// The current window contents, oldest first.
    pub fn snapshot(&self) -> Vec<RangeQuery> {
        self.window
            .lock()
            .expect("observation window poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Queries currently in the window.
    pub fn len(&self) -> usize {
        self.window
            .lock()
            .expect("observation window poisoned")
            .len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total queries ever recorded (not capped by the window).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }
}

/// The build side of the adaptive loop: prices observation windows against
/// the cost baseline and runs the layout search when degraded.
///
/// Owns no index — [`Relearner::check`] returns the adopted
/// [`OptimizedLayout`] (or `None`) and the caller rebuilds/publishes.
/// That split is what lets `flood-serve` run the search and rebuild off
/// the serving path and swap the result in atomically.
#[derive(Debug)]
pub struct Relearner {
    optimizer: LayoutOptimizer,
    cfg: AdaptiveConfig,
    baseline_cost: f64,
    /// Shared flattened sample + per-window evaluators (`share_cache`).
    shared: EvaluatorCache,
    relearns: usize,
    checks: usize,
    relearn_wall: Vec<Duration>,
    cross_hits: usize,
    /// Flatten counters for the cold path (the shared path reads its own
    /// from [`EvaluatorCache`]).
    cold_sample_flattens: usize,
    cold_window_flattens: usize,
}

impl Relearner {
    /// Learn the initial layout for `initial_workload` over `table` and
    /// seed the cost baseline with its predicted cost. Returns the
    /// relearner and the learned layout for the caller to build.
    pub fn learn_initial(
        table: &Table,
        initial_workload: &[RangeQuery],
        optimizer: LayoutOptimizer,
        cfg: AdaptiveConfig,
    ) -> (Self, OptimizedLayout) {
        let mut shared = EvaluatorCache::new();
        let (learned, cold_sample_flattens, cold_window_flattens) = if cfg.share_cache {
            (
                optimizer.optimize_shared(table, initial_workload, &mut shared),
                0,
                0,
            )
        } else {
            (optimizer.optimize(table, initial_workload), 1, 1)
        };
        let relearner = Relearner {
            optimizer,
            cfg,
            baseline_cost: learned.predicted_ns,
            shared,
            relearns: 0,
            checks: 0,
            relearn_wall: Vec::new(),
            cross_hits: 0,
            cold_sample_flattens,
            cold_window_flattens,
        };
        (relearner, learned)
    }

    /// Price `current` on the observation `window`; when degraded past the
    /// baseline, search for a replacement. Returns the layout to adopt, or
    /// `None` to keep the current one (an un-adopted search raises the
    /// baseline so the same window doesn't thrash).
    ///
    /// Both modes price the layout on the optimizer's deterministic query
    /// sample of the window ([`LayoutOptimizer::sample_queries`]) — the
    /// same subset a re-learn would search on, so the degradation
    /// comparison and the adopt-or-keep comparison read from one scale.
    pub fn check(
        &mut self,
        window: &[RangeQuery],
        data: &Table,
        current: &Layout,
    ) -> Option<OptimizedLayout> {
        if window.is_empty() {
            return None;
        }
        self.checks += 1;
        let mut span = flood_obs::span("degradation_check");
        let adopted = if self.cfg.share_cache {
            self.check_shared(window, data, current)
        } else {
            self.check_cold(window, data, current)
        };
        if span.is_sampled() {
            span.note(&format!(
                "window={} adopted={}",
                window.len(),
                adopted.is_some()
            ));
        }
        adopted
    }

    /// Shared path: one data sample for the lifetime, evaluators pooled by
    /// window fingerprint, the check's pricing work feeding the search.
    fn check_shared(
        &mut self,
        window: &[RangeQuery],
        data: &Table,
        layout: &Layout,
    ) -> Option<OptimizedLayout> {
        let (queries, mut rng) = self.optimizer.sample_queries(window);
        let eval = self
            .shared
            .evaluator(&self.optimizer, data, &queries, &mut rng);
        let current = eval.predict(layout);
        if current <= self.cfg.degradation_factor * self.baseline_cost {
            return None;
        }
        // Degraded: re-learn on the same evaluator. The epoch boundary
        // separates the check's cache state from the search, so the
        // cross-epoch counter reports exactly what the check pre-paid.
        eval.advance_epoch();
        let cross0 = eval.cross_epoch_hits();
        let _span = flood_obs::span("relearn");
        let t0 = Instant::now();
        let learned = self.optimizer.optimize_in(eval);
        let wall = t0.elapsed();
        self.cross_hits += eval.cross_epoch_hits() - cross0;
        self.finish(learned, current, wall)
    }

    /// Cold path: every check and every re-learn samples, trains, and
    /// flattens from scratch — what the shared path exists to avoid.
    fn check_cold(
        &mut self,
        window: &[RangeQuery],
        data: &Table,
        layout: &Layout,
    ) -> Option<OptimizedLayout> {
        self.cold_sample_flattens += 1;
        self.cold_window_flattens += 1;
        let mut eval = self.optimizer.evaluator_sampled(data, window);
        let current = eval.predict(layout);
        if current <= self.cfg.degradation_factor * self.baseline_cost {
            return None;
        }
        self.cold_sample_flattens += 1;
        self.cold_window_flattens += 1;
        let _span = flood_obs::span("relearn");
        let t0 = Instant::now();
        let learned = self.optimizer.optimize(data, window);
        let wall = t0.elapsed();
        self.finish(learned, current, wall)
    }

    /// Adopt the learned layout when it beats the degraded current cost;
    /// otherwise raise the baseline so the same window doesn't thrash.
    fn finish(
        &mut self,
        learned: OptimizedLayout,
        current: f64,
        wall: Duration,
    ) -> Option<OptimizedLayout> {
        self.relearn_wall.push(wall);
        if learned.predicted_ns < current {
            self.baseline_cost = learned.predicted_ns;
            self.relearns += 1;
            Some(learned)
        } else {
            self.baseline_cost = current;
            None
        }
    }

    /// Re-learn unconditionally on `workload` (no degradation gate, always
    /// adopted) — deterministic layout swaps for the serving experiments
    /// and the soak harness.
    pub fn relearn_on(&mut self, data: &Table, workload: &[RangeQuery]) -> OptimizedLayout {
        let _span = flood_obs::span("relearn");
        let t0 = Instant::now();
        let learned = if self.cfg.share_cache {
            let (queries, mut rng) = self.optimizer.sample_queries(workload);
            let eval = self
                .shared
                .evaluator(&self.optimizer, data, &queries, &mut rng);
            eval.advance_epoch();
            let cross0 = eval.cross_epoch_hits();
            let learned = self.optimizer.optimize_in(eval);
            self.cross_hits += eval.cross_epoch_hits() - cross0;
            learned
        } else {
            self.cold_sample_flattens += 1;
            self.cold_window_flattens += 1;
            self.optimizer.optimize(data, workload)
        };
        self.relearn_wall.push(t0.elapsed());
        self.baseline_cost = learned.predicted_ns;
        self.relearns += 1;
        learned
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Predicted cost baseline (ns/query) of the current layout.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline_cost
    }

    /// Times a re-learned layout was adopted.
    pub fn relearns(&self) -> usize {
        self.relearns
    }

    /// Lifetime work counters (see [`AdaptiveDiagnostics`]).
    pub fn diagnostics(&self) -> AdaptiveDiagnostics {
        let (sample_flattens, window_flattens, window_reuses) = if self.cfg.share_cache {
            (
                self.shared.data_builds(),
                self.shared.window_builds(),
                self.shared.window_reuses(),
            )
        } else {
            (self.cold_sample_flattens, self.cold_window_flattens, 0)
        };
        AdaptiveDiagnostics {
            relearns: self.relearns,
            checks: self.checks,
            relearn_wall: self.relearn_wall.clone(),
            cache_hits_across_relearns: self.cross_hits,
            sample_flattens,
            window_flattens,
            window_reuses,
        }
    }
}

/// A self-retuning Flood index: [`ObservationLog`] + [`Relearner`] +
/// [`FloodIndex`], rebuilt in place on the caller's thread.
///
/// Shared readers can record observations through
/// [`AdaptiveFlood::record`] (`&self`); the check and rebuild still take
/// `&mut self`. For a serving layer where the rebuild itself happens off
/// the read path, see `flood-serve`.
#[derive(Debug)]
pub struct AdaptiveFlood {
    index: FloodIndex,
    flood_cfg: FloodConfig,
    obs: ObservationLog,
    relearner: Relearner,
}

impl AdaptiveFlood {
    /// Build with an initial workload (used to learn the first layout and
    /// set the cost baseline).
    pub fn build(
        table: &Table,
        initial_workload: &[RangeQuery],
        optimizer: LayoutOptimizer,
        flood_cfg: FloodConfig,
        cfg: AdaptiveConfig,
    ) -> Self {
        let (relearner, learned) =
            Relearner::learn_initial(table, initial_workload, optimizer, cfg);
        let index = FloodIndex::build(table, learned.layout, flood_cfg.clone());
        AdaptiveFlood {
            index,
            flood_cfg,
            obs: ObservationLog::new(cfg.window, cfg.check_every),
            relearner,
        }
    }

    /// Execute a query, record it in the observation window, and retrain if
    /// the periodic check finds the layout degraded. Returns the stats plus
    /// whether a retrain happened.
    pub fn execute_adaptive(
        &mut self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> (ScanStats, bool) {
        let stats = self.index.execute(query, agg_dim, visitor);
        let retrained = self.observe(query);
        (stats, retrained)
    }

    /// Record an already-executed query in the observation window and run
    /// the periodic degradation check. Returns whether a retrain happened.
    ///
    /// Harnesses that time query execution separately from adaptation
    /// execute against [`AdaptiveFlood::index`] and then feed the query
    /// here; [`AdaptiveFlood::execute_adaptive`] is the two fused.
    pub fn observe(&mut self, query: &RangeQuery) -> bool {
        if self.record(query) {
            self.maybe_retrain()
        } else {
            false
        }
    }

    /// The read-side half of [`AdaptiveFlood::observe`]: record a query
    /// through a shared reference (no `&mut` needed — concurrent readers
    /// can call this while executing against [`AdaptiveFlood::index`]).
    /// Returns `true` when a degradation check is due; hand that to
    /// [`AdaptiveFlood::maybe_retrain`] on the writer's turn.
    pub fn record(&self, query: &RangeQuery) -> bool {
        self.obs.record(query)
    }

    /// Price the current layout on the window; retrain when degraded.
    /// Returns whether a retrain happened.
    pub fn maybe_retrain(&mut self) -> bool {
        let window = self.obs.snapshot();
        match self
            .relearner
            .check(&window, self.index.data(), self.index.layout())
        {
            Some(learned) => {
                // The rebuild happens on the index's own data copy (Flood
                // is clustered: the data multiset is the table).
                self.index =
                    FloodIndex::build(self.index.data(), learned.layout, self.flood_cfg.clone());
                true
            }
            None => false,
        }
    }

    /// The live index.
    pub fn index(&self) -> &FloodIndex {
        &self.index
    }

    /// The observation window (shared read side).
    pub fn observations(&self) -> &ObservationLog {
        &self.obs
    }

    /// Times the layout has been replaced.
    pub fn relearns(&self) -> usize {
        self.relearner.relearns()
    }

    /// Predicted cost baseline (ns/query) of the current layout.
    pub fn baseline_cost(&self) -> f64 {
        self.relearner.baseline_cost()
    }

    /// Lifetime work counters (see [`AdaptiveDiagnostics`]).
    pub fn diagnostics(&self) -> AdaptiveDiagnostics {
        self.relearner.diagnostics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::optimizer::OptimizerConfig;
    use flood_store::CountVisitor;

    fn table() -> Table {
        let n = 6_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn optimizer() -> LayoutOptimizer {
        LayoutOptimizer::with_config(
            CostModel::analytic_default(),
            OptimizerConfig {
                data_sample: 600,
                query_sample: 10,
                gd_steps: 6,
                max_total_cells: 1 << 10,
                ..Default::default()
            },
        )
    }

    fn workload_on(dim: usize, n: usize) -> Vec<RangeQuery> {
        (0..n)
            .map(|i| {
                RangeQuery::all(3).with_range(
                    dim,
                    (i as u64 * 37) % 9_000,
                    (i as u64 * 37) % 9_000 + 150,
                )
            })
            .collect()
    }

    #[test]
    fn stable_workload_never_retrains() {
        let t = table();
        let w = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 20,
                check_every: 10,
                degradation_factor: 1.5,
                ..Default::default()
            },
        );
        let mut retrains = 0;
        for q in w.iter().cycle().take(60) {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrains += r as usize;
        }
        assert_eq!(retrains, 0, "same workload should not trigger retraining");
        let d = a.diagnostics();
        assert!(d.checks > 0, "checks must run");
        assert_eq!(d.relearn_wall.len(), 0, "no degraded check, no search");
        assert_eq!(
            d.sample_flattens, 1,
            "shared mode flattens the data sample once, ever"
        );
    }

    #[test]
    fn shifted_workload_triggers_retrain() {
        let t = table();
        // Initial layout tuned for dim 0 only.
        let w0 = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 24,
                check_every: 12,
                degradation_factor: 1.2,
                ..Default::default()
            },
        );
        let before = a.index().layout().clone();
        // Shift: everything now filters dim 1 only.
        let w1 = workload_on(1, 40);
        let mut retrained = false;
        for q in &w1 {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrained |= r;
        }
        assert!(
            retrained,
            "shift to an unindexed dim must trigger retraining"
        );
        assert!(a.relearns() >= 1);
        let after = a.index().layout();
        assert_ne!(&before, after, "retraining should change the layout");
        assert!(
            after.order().contains(&1),
            "new layout must index the hot dimension: {after}"
        );
        let d = a.diagnostics();
        assert_eq!(d.relearns, a.relearns());
        assert!(
            d.relearn_wall.len() >= d.relearns,
            "every adopted re-learn came from a timed search"
        );
        assert!(
            d.cache_hits_across_relearns > 0,
            "the degradation check's pricing must feed the search"
        );
        assert_eq!(d.sample_flattens, 1, "one data flatten across re-learns");
    }

    #[test]
    fn cold_mode_retrains_without_cross_relearn_hits() {
        let t = table();
        let w0 = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 24,
                check_every: 12,
                degradation_factor: 1.2,
                share_cache: false,
            },
        );
        let w1 = workload_on(1, 40);
        let mut retrained = false;
        for q in &w1 {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrained |= r;
        }
        assert!(retrained, "cold mode must still adapt");
        let d = a.diagnostics();
        assert_eq!(
            d.cache_hits_across_relearns, 0,
            "no shared state to hit cold"
        );
        assert_eq!(
            d.sample_flattens,
            1 + d.checks + d.relearn_wall.len(),
            "cold mode re-flattens per check and per re-learn search: {d:?}"
        );
        assert_eq!(d.window_reuses, 0);
    }

    #[test]
    fn results_stay_correct_across_retrains() {
        let t = table();
        let w0 = workload_on(0, 20);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 16,
                check_every: 8,
                degradation_factor: 1.1,
                ..Default::default()
            },
        );
        let w1 = workload_on(1, 30);
        for q in &w1 {
            let mut v = CountVisitor::default();
            a.execute_adaptive(q, None, &mut v);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            assert_eq!(v.count, truth);
        }
    }

    /// The observe() bugfix regression: concurrent readers sharing
    /// `&AdaptiveFlood` record observations while executing; a later
    /// `&mut` check sees every one of them. Before the split, recording
    /// required `&mut self` even on the no-relearn path, so this could
    /// not compile, let alone run.
    #[test]
    fn shared_readers_record_observations() {
        let t = table();
        let w0 = workload_on(0, 30);
        let a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 64,
                check_every: 1_000_000, // never due mid-run
                degradation_factor: 1.5,
                ..Default::default()
            },
        );
        let queries = workload_on(1, 25);
        let threads = 4;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let (a, queries) = (&a, &queries);
                scope.spawn(move || {
                    for q in queries {
                        let mut v = CountVisitor::default();
                        a.index().execute(q, None, &mut v);
                        let due = a.record(q);
                        assert!(!due, "cadence of 1M can never be due here");
                    }
                });
            }
        });
        let obs = a.observations();
        assert_eq!(obs.observed(), (threads * queries.len()) as u64);
        assert_eq!(obs.len(), 64, "window retains the most recent cap");
        // The writer's turn sees the recorded window and can check on it.
        let mut a = a;
        let checks0 = a.diagnostics().checks;
        a.maybe_retrain();
        assert_eq!(a.diagnostics().checks, checks0 + 1);
    }

    /// One recorder per cadence crossing is told a check is due, even with
    /// concurrent recording.
    #[test]
    fn due_checks_fire_once_per_crossing() {
        let log = ObservationLog::new(8, 5);
        let q = RangeQuery::all(1);
        let dues: usize = (0..25).map(|_| log.record(&q) as usize).sum();
        // 25 records, cadence 5, window fills at 4 (cap/2): crossings at
        // 5, 10, 15, 20, 25.
        assert_eq!(dues, 5);

        let log = ObservationLog::new(64, 10);
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (log, total, q) = (&log, &total, &q);
                scope.spawn(move || {
                    let mut mine = 0;
                    for _ in 0..100 {
                        mine += log.record(q) as usize;
                    }
                    total.fetch_add(mine, Ordering::Relaxed);
                });
            }
        });
        let dues = total.load(Ordering::Relaxed);
        assert!(
            (30..=40).contains(&dues),
            "400 records at cadence 10 claim ~40 checks once the window \
             half-fills, never more: {dues}"
        );
    }

    #[test]
    fn diagnostics_export_publishes_gauges() {
        let diag = AdaptiveDiagnostics {
            relearns: 3,
            checks: 12,
            relearn_wall: vec![Duration::from_nanos(500), Duration::from_nanos(700)],
            cache_hits_across_relearns: 42,
            sample_flattens: 1,
            window_flattens: 5,
            window_reuses: 7,
        };
        let reg = flood_obs::Registry::new();
        diag.export(&reg, "adapt");
        // Export twice: cumulative snapshots must overwrite, not add.
        diag.export(&reg, "adapt");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("adapt", "relearns"), Some(3));
        assert_eq!(snap.gauge("adapt", "checks"), Some(12));
        assert_eq!(snap.gauge("adapt", "cache_hits_across_relearns"), Some(42));
        assert_eq!(snap.gauge("adapt", "sample_flattens"), Some(1));
        assert_eq!(snap.gauge("adapt", "window_flattens"), Some(5));
        assert_eq!(snap.gauge("adapt", "window_reuses"), Some(7));
        assert_eq!(snap.gauge("adapt", "relearn_wall_ns"), Some(1_200));
    }
}
