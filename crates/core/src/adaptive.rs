//! Workload-shift detection and automatic re-learning (§8, Shifting
//! workloads).
//!
//! "Flood could periodically evaluate the cost (§4) of the current layout
//! on queries over a recent time window. If the cost exceeds a threshold,
//! Flood can replace the layout." — [`AdaptiveFlood`] keeps a sliding
//! window of observed queries, periodically prices the current layout
//! against them with the cost model, and rebuilds with a freshly optimized
//! layout when the predicted cost degrades beyond a configurable factor of
//! the cost at the last (re)build.
//!
//! ## Cache sharing across re-learns
//!
//! Pricing and re-learning both run against a flattened data sample
//! ([`crate::optimizer::SampleSpace`]), whose expensive half — row
//! sampling, per-dimension RMI training, flattening — depends only on the
//! data. Flood is clustered, so rebuilds permute rows but never change the
//! data *multiset*; with [`AdaptiveConfig::share_cache`] (the default) the
//! index keeps one [`EvaluatorCache`] alive across every check and
//! re-learn: the data sample is flattened **once**, and the
//! query-dependent layers (flattened windows, per-dimension mask caches,
//! layout memos) are keyed on a fingerprint of the sampled observation
//! window, so the degradation check that triggers a re-learn hands its
//! masks and memo entries straight to the layout search. With
//! `share_cache: false` every check and re-learn re-flattens from scratch
//! — the cold baseline the `repro drift` experiment measures against.
//! [`AdaptiveFlood::diagnostics`] reports both modes' work.

use crate::config::FloodConfig;
use crate::index::FloodIndex;
use crate::optimizer::{EvaluatorCache, LayoutOptimizer, OptimizedLayout};
use flood_store::{MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Configuration for [`AdaptiveFlood`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Number of recent queries kept in the observation window.
    pub window: usize,
    /// Re-check cadence: evaluate the layout every `check_every` queries.
    pub check_every: usize,
    /// Retrain when `cost(current layout, window)` exceeds
    /// `degradation_factor × cost(layout at last build, its workload)`.
    pub degradation_factor: f64,
    /// Share the optimizer's flattened sample and statistics caches across
    /// checks and re-learns (the default). `false` re-flattens everything
    /// per check/re-learn — the cold baseline for measuring what sharing
    /// saves.
    pub share_cache: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 100,
            check_every: 50,
            degradation_factor: 1.5,
            share_cache: true,
        }
    }
}

/// Work counters for one [`AdaptiveFlood`]'s lifetime, for the `repro
/// drift` experiment and the re-learn regression tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveDiagnostics {
    /// Times the layout was replaced.
    pub relearns: usize,
    /// Degradation checks run (windows priced).
    pub checks: usize,
    /// Wall-clock of each re-learn *search* (a degraded check triggered
    /// Algorithm 1), whether or not the resulting layout was adopted.
    pub relearn_wall: Vec<Duration>,
    /// During re-learn searches: cost evaluations and per-dimension mask
    /// fetches served by cache state built *before* the search began — the
    /// degradation check's pricing work, or earlier windows. Always 0 with
    /// `share_cache: false`.
    pub cache_hits_across_relearns: usize,
    /// Times the data sample was flattened (sampling + RMI training).
    /// 1 for the whole lifetime with `share_cache`; grows with every check
    /// and re-learn without it.
    pub sample_flattens: usize,
    /// Observation windows flattened into a fresh evaluator.
    pub window_flattens: usize,
    /// Checks/re-learns answered by a pooled evaluator (same window
    /// fingerprint; only possible with `share_cache`).
    pub window_reuses: usize,
}

impl AdaptiveDiagnostics {
    /// Total wall-clock spent in re-learn searches.
    pub fn relearn_wall_total(&self) -> Duration {
        self.relearn_wall.iter().sum()
    }
}

/// A self-retuning Flood index.
#[derive(Debug)]
pub struct AdaptiveFlood {
    index: FloodIndex,
    optimizer: LayoutOptimizer,
    flood_cfg: FloodConfig,
    cfg: AdaptiveConfig,
    window: VecDeque<RangeQuery>,
    since_check: usize,
    baseline_cost: f64,
    /// Shared flattened sample + per-window evaluators (`share_cache`).
    shared: EvaluatorCache,
    relearns: usize,
    checks: usize,
    relearn_wall: Vec<Duration>,
    cross_hits: usize,
    /// Flatten counters for the cold path (the shared path reads its own
    /// from [`EvaluatorCache`]).
    cold_sample_flattens: usize,
    cold_window_flattens: usize,
}

impl AdaptiveFlood {
    /// Build with an initial workload (used to learn the first layout and
    /// set the cost baseline).
    pub fn build(
        table: &Table,
        initial_workload: &[RangeQuery],
        optimizer: LayoutOptimizer,
        flood_cfg: FloodConfig,
        cfg: AdaptiveConfig,
    ) -> Self {
        let mut shared = EvaluatorCache::new();
        let (learned, cold_sample_flattens, cold_window_flattens) = if cfg.share_cache {
            (
                optimizer.optimize_shared(table, initial_workload, &mut shared),
                0,
                0,
            )
        } else {
            (optimizer.optimize(table, initial_workload), 1, 1)
        };
        let index = FloodIndex::build(table, learned.layout, flood_cfg.clone());
        AdaptiveFlood {
            index,
            optimizer,
            flood_cfg,
            cfg,
            window: VecDeque::with_capacity(cfg.window),
            since_check: 0,
            baseline_cost: learned.predicted_ns,
            shared,
            relearns: 0,
            checks: 0,
            relearn_wall: Vec::new(),
            cross_hits: 0,
            cold_sample_flattens,
            cold_window_flattens,
        }
    }

    /// Execute a query, record it in the observation window, and retrain if
    /// the periodic check finds the layout degraded. Returns the stats plus
    /// whether a retrain happened.
    pub fn execute_adaptive(
        &mut self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> (ScanStats, bool) {
        let stats = self.index.execute(query, agg_dim, visitor);
        let retrained = self.observe(query);
        (stats, retrained)
    }

    /// Record an already-executed query in the observation window and run
    /// the periodic degradation check. Returns whether a retrain happened.
    ///
    /// Harnesses that time query execution separately from adaptation
    /// execute against [`AdaptiveFlood::index`] and then feed the query
    /// here; [`AdaptiveFlood::execute_adaptive`] is the two fused.
    pub fn observe(&mut self, query: &RangeQuery) -> bool {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(query.clone());
        self.since_check += 1;
        if self.since_check >= self.cfg.check_every && self.window.len() >= self.cfg.window / 2 {
            self.since_check = 0;
            return self.maybe_retrain();
        }
        false
    }

    /// Price the current layout on the window; retrain when degraded.
    /// Returns whether a retrain happened.
    ///
    /// Both modes price the layout on the optimizer's deterministic query
    /// sample of the window ([`LayoutOptimizer::sample_queries`]) — the
    /// same subset a re-learn would search on, so the degradation
    /// comparison and the adopt-or-keep comparison read from one scale.
    pub fn maybe_retrain(&mut self) -> bool {
        if self.window.is_empty() {
            return false;
        }
        let window: Vec<RangeQuery> = self.window.iter().cloned().collect();
        self.checks += 1;
        if self.cfg.share_cache {
            self.check_shared(&window)
        } else {
            self.check_cold(&window)
        }
    }

    /// Shared path: one data sample for the lifetime, evaluators pooled by
    /// window fingerprint, the check's pricing work feeding the search.
    fn check_shared(&mut self, window: &[RangeQuery]) -> bool {
        let (queries, mut rng) = self.optimizer.sample_queries(window);
        let eval = self
            .shared
            .evaluator(&self.optimizer, self.index.data(), &queries, &mut rng);
        let current = eval.predict(self.index.layout());
        if current <= self.cfg.degradation_factor * self.baseline_cost {
            return false;
        }
        // Degraded: re-learn on the same evaluator. The epoch boundary
        // separates the check's cache state from the search, so the
        // cross-epoch counter reports exactly what the check pre-paid.
        eval.advance_epoch();
        let cross0 = eval.cross_epoch_hits();
        let t0 = Instant::now();
        let learned = self.optimizer.optimize_in(eval);
        let wall = t0.elapsed();
        self.cross_hits += eval.cross_epoch_hits() - cross0;
        self.finish_retrain(learned, current, wall)
    }

    /// Cold path: every check and every re-learn samples, trains, and
    /// flattens from scratch — what the shared path exists to avoid.
    fn check_cold(&mut self, window: &[RangeQuery]) -> bool {
        self.cold_sample_flattens += 1;
        self.cold_window_flattens += 1;
        let mut eval = self.optimizer.evaluator_sampled(self.index.data(), window);
        let current = eval.predict(self.index.layout());
        if current <= self.cfg.degradation_factor * self.baseline_cost {
            return false;
        }
        self.cold_sample_flattens += 1;
        self.cold_window_flattens += 1;
        let t0 = Instant::now();
        let learned = self.optimizer.optimize(self.index.data(), window);
        let wall = t0.elapsed();
        self.finish_retrain(learned, current, wall)
    }

    /// Adopt the learned layout when it beats the degraded current cost;
    /// otherwise raise the baseline so the same window doesn't thrash.
    fn finish_retrain(&mut self, learned: OptimizedLayout, current: f64, wall: Duration) -> bool {
        self.relearn_wall.push(wall);
        if learned.predicted_ns < current {
            // The rebuild happens on the index's own data copy (Flood is
            // clustered: the data multiset is the table).
            self.index =
                FloodIndex::build(self.index.data(), learned.layout, self.flood_cfg.clone());
            self.baseline_cost = learned.predicted_ns;
            self.relearns += 1;
            true
        } else {
            self.baseline_cost = current;
            false
        }
    }

    /// The live index.
    pub fn index(&self) -> &FloodIndex {
        &self.index
    }

    /// Times the layout has been replaced.
    pub fn relearns(&self) -> usize {
        self.relearns
    }

    /// Predicted cost baseline (ns/query) of the current layout.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline_cost
    }

    /// Lifetime work counters (see [`AdaptiveDiagnostics`]).
    pub fn diagnostics(&self) -> AdaptiveDiagnostics {
        let (sample_flattens, window_flattens, window_reuses) = if self.cfg.share_cache {
            (
                self.shared.data_builds(),
                self.shared.window_builds(),
                self.shared.window_reuses(),
            )
        } else {
            (self.cold_sample_flattens, self.cold_window_flattens, 0)
        };
        AdaptiveDiagnostics {
            relearns: self.relearns,
            checks: self.checks,
            relearn_wall: self.relearn_wall.clone(),
            cache_hits_across_relearns: self.cross_hits,
            sample_flattens,
            window_flattens,
            window_reuses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::optimizer::OptimizerConfig;
    use flood_store::CountVisitor;

    fn table() -> Table {
        let n = 6_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn optimizer() -> LayoutOptimizer {
        LayoutOptimizer::with_config(
            CostModel::analytic_default(),
            OptimizerConfig {
                data_sample: 600,
                query_sample: 10,
                gd_steps: 6,
                max_total_cells: 1 << 10,
                ..Default::default()
            },
        )
    }

    fn workload_on(dim: usize, n: usize) -> Vec<RangeQuery> {
        (0..n)
            .map(|i| {
                RangeQuery::all(3).with_range(
                    dim,
                    (i as u64 * 37) % 9_000,
                    (i as u64 * 37) % 9_000 + 150,
                )
            })
            .collect()
    }

    #[test]
    fn stable_workload_never_retrains() {
        let t = table();
        let w = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 20,
                check_every: 10,
                degradation_factor: 1.5,
                ..Default::default()
            },
        );
        let mut retrains = 0;
        for q in w.iter().cycle().take(60) {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrains += r as usize;
        }
        assert_eq!(retrains, 0, "same workload should not trigger retraining");
        let d = a.diagnostics();
        assert!(d.checks > 0, "checks must run");
        assert_eq!(d.relearn_wall.len(), 0, "no degraded check, no search");
        assert_eq!(
            d.sample_flattens, 1,
            "shared mode flattens the data sample once, ever"
        );
    }

    #[test]
    fn shifted_workload_triggers_retrain() {
        let t = table();
        // Initial layout tuned for dim 0 only.
        let w0 = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 24,
                check_every: 12,
                degradation_factor: 1.2,
                ..Default::default()
            },
        );
        let before = a.index().layout().clone();
        // Shift: everything now filters dim 1 only.
        let w1 = workload_on(1, 40);
        let mut retrained = false;
        for q in &w1 {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrained |= r;
        }
        assert!(
            retrained,
            "shift to an unindexed dim must trigger retraining"
        );
        assert!(a.relearns() >= 1);
        let after = a.index().layout();
        assert_ne!(&before, after, "retraining should change the layout");
        assert!(
            after.order().contains(&1),
            "new layout must index the hot dimension: {after}"
        );
        let d = a.diagnostics();
        assert_eq!(d.relearns, a.relearns());
        assert!(
            d.relearn_wall.len() >= d.relearns,
            "every adopted re-learn came from a timed search"
        );
        assert!(
            d.cache_hits_across_relearns > 0,
            "the degradation check's pricing must feed the search"
        );
        assert_eq!(d.sample_flattens, 1, "one data flatten across re-learns");
    }

    #[test]
    fn cold_mode_retrains_without_cross_relearn_hits() {
        let t = table();
        let w0 = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 24,
                check_every: 12,
                degradation_factor: 1.2,
                share_cache: false,
            },
        );
        let w1 = workload_on(1, 40);
        let mut retrained = false;
        for q in &w1 {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrained |= r;
        }
        assert!(retrained, "cold mode must still adapt");
        let d = a.diagnostics();
        assert_eq!(
            d.cache_hits_across_relearns, 0,
            "no shared state to hit cold"
        );
        assert_eq!(
            d.sample_flattens,
            1 + d.checks + d.relearn_wall.len(),
            "cold mode re-flattens per check and per re-learn search: {d:?}"
        );
        assert_eq!(d.window_reuses, 0);
    }

    #[test]
    fn results_stay_correct_across_retrains() {
        let t = table();
        let w0 = workload_on(0, 20);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 16,
                check_every: 8,
                degradation_factor: 1.1,
                ..Default::default()
            },
        );
        let w1 = workload_on(1, 30);
        for q in &w1 {
            let mut v = CountVisitor::default();
            a.execute_adaptive(q, None, &mut v);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            assert_eq!(v.count, truth);
        }
    }
}
