//! Workload-shift detection and automatic re-learning (§8, Shifting
//! workloads).
//!
//! "Flood could periodically evaluate the cost (§4) of the current layout
//! on queries over a recent time window. If the cost exceeds a threshold,
//! Flood can replace the layout." — [`AdaptiveFlood`] keeps a sliding
//! window of observed queries, periodically prices the current layout
//! against them with the cost model, and rebuilds with a freshly optimized
//! layout when the predicted cost degrades beyond a configurable factor of
//! the cost at the last (re)build.

use crate::config::FloodConfig;
use crate::index::FloodIndex;
use crate::optimizer::LayoutOptimizer;
use flood_store::{MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};
use std::collections::VecDeque;

/// Configuration for [`AdaptiveFlood`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Number of recent queries kept in the observation window.
    pub window: usize,
    /// Re-check cadence: evaluate the layout every `check_every` queries.
    pub check_every: usize,
    /// Retrain when `cost(current layout, window)` exceeds
    /// `degradation_factor × cost(layout at last build, its workload)`.
    pub degradation_factor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 100,
            check_every: 50,
            degradation_factor: 1.5,
        }
    }
}

/// A self-retuning Flood index.
#[derive(Debug)]
pub struct AdaptiveFlood {
    index: FloodIndex,
    optimizer: LayoutOptimizer,
    flood_cfg: FloodConfig,
    cfg: AdaptiveConfig,
    window: VecDeque<RangeQuery>,
    since_check: usize,
    baseline_cost: f64,
    relearns: usize,
}

impl AdaptiveFlood {
    /// Build with an initial workload (used to learn the first layout and
    /// set the cost baseline).
    pub fn build(
        table: &Table,
        initial_workload: &[RangeQuery],
        optimizer: LayoutOptimizer,
        flood_cfg: FloodConfig,
        cfg: AdaptiveConfig,
    ) -> Self {
        let learned = optimizer.optimize(table, initial_workload);
        let index = FloodIndex::build(table, learned.layout, flood_cfg.clone());
        AdaptiveFlood {
            index,
            optimizer,
            flood_cfg,
            cfg,
            window: VecDeque::with_capacity(cfg.window),
            since_check: 0,
            baseline_cost: learned.predicted_ns,
            relearns: 0,
        }
    }

    /// Execute a query, record it in the observation window, and retrain if
    /// the periodic check finds the layout degraded. Returns the stats plus
    /// whether a retrain happened.
    pub fn execute_adaptive(
        &mut self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> (ScanStats, bool) {
        let stats = self.index.execute(query, agg_dim, visitor);
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(query.clone());
        self.since_check += 1;
        let mut retrained = false;
        if self.since_check >= self.cfg.check_every && self.window.len() >= self.cfg.window / 2 {
            self.since_check = 0;
            retrained = self.maybe_retrain();
        }
        (stats, retrained)
    }

    /// Price the current layout on the window; retrain when degraded.
    /// Returns whether a retrain happened.
    pub fn maybe_retrain(&mut self) -> bool {
        let window: Vec<RangeQuery> = self.window.iter().cloned().collect();
        if window.is_empty() {
            return false;
        }
        let current = self
            .optimizer
            .predict_cost(self.index.data(), &window, self.index.layout());
        if current <= self.cfg.degradation_factor * self.baseline_cost {
            return false;
        }
        // Degraded: learn a fresh layout for the recent window. The rebuild
        // happens on the index's own data copy (Flood is clustered: the
        // data multiset is the table).
        let learned = self.optimizer.optimize(self.index.data(), &window);
        // Only swap when the optimizer actually found something cheaper.
        if learned.predicted_ns < current {
            self.index =
                FloodIndex::build(self.index.data(), learned.layout, self.flood_cfg.clone());
            self.baseline_cost = learned.predicted_ns;
            self.relearns += 1;
            true
        } else {
            // Keep the layout but raise the baseline so we don't thrash.
            self.baseline_cost = current;
            false
        }
    }

    /// The live index.
    pub fn index(&self) -> &FloodIndex {
        &self.index
    }

    /// Times the layout has been replaced.
    pub fn relearns(&self) -> usize {
        self.relearns
    }

    /// Predicted cost baseline (ns/query) of the current layout.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::optimizer::OptimizerConfig;
    use flood_store::CountVisitor;

    fn table() -> Table {
        let n = 6_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn optimizer() -> LayoutOptimizer {
        LayoutOptimizer::with_config(
            CostModel::analytic_default(),
            OptimizerConfig {
                data_sample: 600,
                query_sample: 10,
                gd_steps: 6,
                max_total_cells: 1 << 10,
                ..Default::default()
            },
        )
    }

    fn workload_on(dim: usize, n: usize) -> Vec<RangeQuery> {
        (0..n)
            .map(|i| {
                RangeQuery::all(3).with_range(
                    dim,
                    (i as u64 * 37) % 9_000,
                    (i as u64 * 37) % 9_000 + 150,
                )
            })
            .collect()
    }

    #[test]
    fn stable_workload_never_retrains() {
        let t = table();
        let w = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 20,
                check_every: 10,
                degradation_factor: 1.5,
            },
        );
        let mut retrains = 0;
        for q in w.iter().cycle().take(60) {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrains += r as usize;
        }
        assert_eq!(retrains, 0, "same workload should not trigger retraining");
    }

    #[test]
    fn shifted_workload_triggers_retrain() {
        let t = table();
        // Initial layout tuned for dim 0 only.
        let w0 = workload_on(0, 30);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 24,
                check_every: 12,
                degradation_factor: 1.2,
            },
        );
        let before = a.index().layout().clone();
        // Shift: everything now filters dim 1 only.
        let w1 = workload_on(1, 40);
        let mut retrained = false;
        for q in &w1 {
            let mut v = CountVisitor::default();
            let (_, r) = a.execute_adaptive(q, None, &mut v);
            retrained |= r;
        }
        assert!(
            retrained,
            "shift to an unindexed dim must trigger retraining"
        );
        assert!(a.relearns() >= 1);
        let after = a.index().layout();
        assert_ne!(&before, after, "retraining should change the layout");
        assert!(
            after.order().contains(&1),
            "new layout must index the hot dimension: {after}"
        );
    }

    #[test]
    fn results_stay_correct_across_retrains() {
        let t = table();
        let w0 = workload_on(0, 20);
        let mut a = AdaptiveFlood::build(
            &t,
            &w0,
            optimizer(),
            FloodConfig::default(),
            AdaptiveConfig {
                window: 16,
                check_every: 8,
                degradation_factor: 1.1,
            },
        );
        let w1 = workload_on(1, 30);
        for q in &w1 {
            let mut v = CountVisitor::default();
            a.execute_adaptive(q, None, &mut v);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            assert_eq!(v.count, truth);
        }
    }
}
