//! Flattening (§5.1): per-attribute CDF models that project skewed data into
//! a more uniform space.
//!
//! With a model of each attribute's CDF, columns are chosen so each holds
//! approximately the same number of points: a point with value `v` in a
//! dimension split into `n` columns lands in column `⌊CDF(v)·n⌋`. Flood
//! models each attribute with an RMI; the uniform (non-flattened) variant —
//! equally spaced columns between the dimension's min and max, §3.1 — is kept
//! for the Fig 11 ablation.

use flood_learned::cdf::CdfModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_store::Table;
use serde::{Deserialize, Serialize};

/// Which per-dimension CDF model flattening uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Flattening {
    /// Learned RMI CDFs (the full Flood design, §5.1).
    #[default]
    Learned,
    /// Equally spaced columns over `[min, max]` (§3.1's simple grid; the
    /// "no flattening" ablation of Fig 11).
    Uniform,
}

/// A per-dimension CDF used to map values to `[0, 1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DimCdf {
    /// Learned CDF.
    Learned(Rmi),
    /// Linear CDF over the value range `[min, max]`.
    Uniform {
        /// Smallest value observed in the dimension.
        min: u64,
        /// Range `max − min + 1` (the paper's `r_i`).
        range: u64,
    },
}

impl DimCdf {
    /// The modeled CDF of `v`, in `[0, 1]`.
    #[inline]
    pub fn cdf(&self, v: u64) -> f64 {
        match self {
            DimCdf::Learned(rmi) => rmi.cdf(v),
            DimCdf::Uniform { min, range } => {
                if v < *min {
                    0.0
                } else {
                    ((v - min) as f64 / *range as f64).min(1.0)
                }
            }
        }
    }

    /// Column assignment among `n` columns: `⌊cdf(v)·n⌋` clamped to `n−1`.
    #[inline]
    pub fn bucket(&self, v: u64, n: usize) -> usize {
        ((self.cdf(v) * n as f64) as usize).min(n - 1)
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            DimCdf::Learned(rmi) => rmi.size_bytes(),
            DimCdf::Uniform { .. } => 16,
        }
    }
}

/// The set of per-dimension CDF models for a table (one per table dimension,
/// built lazily only for the dimensions a layout actually grids on).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Flattener {
    dims: Vec<DimCdf>,
}

impl Flattener {
    /// Build CDF models for the listed `dims` of `table` (other dimensions
    /// get cheap uniform models).
    pub fn build(table: &Table, dims: &[usize], mode: Flattening) -> Self {
        let mut out = Vec::with_capacity(table.dims());
        for d in 0..table.dims() {
            let needed = dims.contains(&d);
            let model = match (mode, needed) {
                (Flattening::Learned, true) => {
                    let mut vals = table.column(d).to_vec();
                    vals.sort_unstable();
                    DimCdf::Learned(Rmi::build(&vals, RmiConfig::default()))
                }
                _ => {
                    let (min, max) = table.dim_bounds(d);
                    DimCdf::Uniform {
                        min,
                        range: (max - min).saturating_add(1),
                    }
                }
            };
            out.push(model);
        }
        Flattener { dims: out }
    }

    /// CDF model for dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> &DimCdf {
        &self.dims[d]
    }

    /// Flattened value of `v` in dimension `d`, in `[0, 1]`.
    #[inline]
    pub fn flatten(&self, d: usize, v: u64) -> f64 {
        self.dims[d].cdf(v)
    }

    /// Column of `v` in dimension `d` under `n` columns.
    #[inline]
    pub fn bucket(&self, d: usize, v: u64, n: usize) -> usize {
        self.dims[d].bucket(v, n)
    }

    /// Number of dimensions covered.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.dims.iter().map(DimCdf::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_table() -> Table {
        // dim 0: quadratic skew; dim 1: uniform.
        Table::from_columns(vec![
            (0..10_000u64).map(|i| (i * i) / 10_000).collect(),
            (0..10_000u64).collect(),
        ])
    }

    #[test]
    fn uniform_flattening_is_linear() {
        let t = Table::from_columns(vec![(0..100u64).collect()]);
        let f = Flattener::build(&t, &[0], Flattening::Uniform);
        assert_eq!(f.flatten(0, 0), 0.0);
        assert!((f.flatten(0, 50) - 0.5).abs() < 0.01);
        assert_eq!(f.bucket(0, 99, 10), 9);
        assert_eq!(f.bucket(0, 0, 10), 0);
    }

    #[test]
    fn learned_flattening_equalizes_mass() {
        let t = skewed_table();
        let f = Flattener::build(&t, &[0], Flattening::Learned);
        // Bucket the skewed dimension into 10 columns and count points.
        let mut counts = [0usize; 10];
        for i in 0..t.len() {
            counts[f.bucket(0, t.value(i, 0), 10)] += 1;
        }
        let (mn, mx) = (
            *counts.iter().min().expect("ten buckets"),
            *counts.iter().max().expect("ten buckets"),
        );
        assert!(
            mx < mn * 3 + 100,
            "flattened buckets too uneven: {counts:?}"
        );

        // Uniform spacing on the same data is badly unbalanced (most of the
        // quadratic's mass sits at small values).
        let u = Flattener::build(&t, &[0], Flattening::Uniform);
        let mut ucounts = [0usize; 10];
        for i in 0..t.len() {
            ucounts[u.bucket(0, t.value(i, 0), 10)] += 1;
        }
        assert!(
            *ucounts.iter().max().expect("ten buckets") > 2 * mx,
            "uniform should be much more skewed: {ucounts:?} vs {counts:?}"
        );
    }

    #[test]
    fn bucket_is_monotone_in_value() {
        let t = skewed_table();
        let f = Flattener::build(&t, &[0], Flattening::Learned);
        let mut prev = 0usize;
        for v in 0..10_000u64 {
            let b = f.bucket(0, v, 64);
            assert!(b >= prev, "bucket went backwards at {v}");
            prev = b;
        }
    }

    #[test]
    fn unneeded_dims_get_uniform_models() {
        let t = skewed_table();
        let f = Flattener::build(&t, &[0], Flattening::Learned);
        assert!(matches!(f.dim(1), DimCdf::Uniform { .. }));
        assert!(matches!(f.dim(0), DimCdf::Learned(_)));
    }

    #[test]
    fn constant_dimension() {
        let t = Table::from_columns(vec![vec![5u64; 100]]);
        for mode in [Flattening::Learned, Flattening::Uniform] {
            let f = Flattener::build(&t, &[0], mode);
            let b = f.bucket(0, 5, 4);
            assert!(b < 4);
        }
    }
}
