//! The cost model (§4.1): `Time(D, q, L) = w_p·N_c + w_r·N_c + w_s·N_s`.
//!
//! The three weights are *not* constants — they depend on the dataset, query
//! and layout in non-linear, interdependent ways (Fig 5), so Flood predicts
//! each from measurable statistics with a random-forest regressor calibrated
//! once per machine (§4.1.1). A constant-weight analytic model and a linear
//! model over the same features are kept for the §4.1.2 ablation.
//!
//! Paper map — which experiment exercises what:
//! - `repro fig5` measures raw `w_s` variation across random layouts, the
//!   motivation for learned weights ([`weights::WeightModel`]).
//! - `repro costmodel` reproduces the §4.1.2 accuracy ablation:
//!   [`CostModel::analytic_default`] (tuned constants) vs linear vs the
//!   random forest, on held-out layouts.
//! - `repro tab3` calibrates per dataset ([`calibration::calibrate`]) and
//!   transfers the weights across datasets (§7.6).
//! - The `repro` harness itself calibrates once per process via
//!   [`calibration::calibrate_cached`]; Table 4's "learning" column is what
//!   the resulting model costs to use inside the optimizer.

pub mod calibration;
pub mod features;
pub mod weights;

pub use calibration::{calibrate, calibrate_cached, CalibrationConfig, CalibrationReport};
pub use features::QueryStatistics;
pub use weights::{WeightModel, WeightModels};

use serde::{Deserialize, Serialize};

/// A calibrated cost model: predicts query time from layout/query statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// The per-weight predictors.
    pub weights: WeightModels,
}

/// A per-query cost prediction, decomposed by phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCostEstimate {
    /// Predicted per-cell projection weight (ns).
    pub wp: f64,
    /// Predicted per-cell refinement weight (ns); zero when the query does
    /// not filter the sort dimension.
    pub wr: f64,
    /// Predicted per-point scan weight (ns).
    pub ws: f64,
    /// Predicted total query time (ns): `wp·Nc + wr·Nc + ws·Ns`.
    pub time_ns: f64,
}

impl CostModel {
    /// Wrap weight models into a cost model.
    pub fn new(weights: WeightModels) -> Self {
        CostModel { weights }
    }

    /// The §4.1.2 ablation: Eq. 1 with fine-tuned constant weights.
    pub fn analytic_default() -> Self {
        CostModel {
            weights: WeightModels::constant_default(),
        }
    }

    /// Predict the time of one query described by `stats` (Eq. 1).
    pub fn predict(&self, stats: &QueryStatistics) -> QueryCostEstimate {
        let feats = stats.features();
        let wp = self.weights.wp.predict(&feats).max(1.0);
        let wr = if stats.sort_filtered {
            self.weights.wr.predict(&feats).max(0.0)
        } else {
            0.0
        };
        let ws = self.weights.ws.predict(&feats).max(0.05);
        QueryCostEstimate {
            wp,
            wr,
            ws,
            time_ns: wp * stats.nc + wr * stats.nc + ws * stats.ns,
        }
    }

    /// Mean predicted time over a set of per-query statistics (the layout
    /// optimizer's objective, Eq. 1 averaged over the workload).
    pub fn predict_workload(&self, all: &[QueryStatistics]) -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        all.iter().map(|s| self.predict(s).time_ns).sum::<f64>() / all.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(nc: f64, ns: f64, sort_filtered: bool) -> QueryStatistics {
        QueryStatistics {
            nc,
            ns,
            total_cells: 1024.0,
            avg_cell_size: 1000.0,
            median_cell_size: 1000.0,
            p95_cell_size: 1200.0,
            dims_filtered: 2.0,
            avg_visited_per_cell: ns / nc.max(1.0),
            exact_points: 0.0,
            sort_filtered,
        }
    }

    #[test]
    fn analytic_model_is_linear_in_counts() {
        let m = CostModel::analytic_default();
        let a = m.predict(&stats(10.0, 1_000.0, true));
        let b = m.predict(&stats(20.0, 2_000.0, true));
        assert!((b.time_ns / a.time_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn refinement_weight_zero_without_sort_filter() {
        let m = CostModel::analytic_default();
        let with = m.predict(&stats(100.0, 1_000.0, true));
        let without = m.predict(&stats(100.0, 1_000.0, false));
        assert_eq!(without.wr, 0.0);
        assert!(with.time_ns > without.time_ns);
    }

    #[test]
    fn workload_average() {
        let m = CostModel::analytic_default();
        let qs = vec![stats(10.0, 100.0, false), stats(30.0, 300.0, false)];
        let avg = m.predict_workload(&qs);
        let each: f64 = qs.iter().map(|s| m.predict(s).time_ns).sum::<f64>() / 2.0;
        assert_eq!(avg, each);
        assert_eq!(m.predict_workload(&[]), 0.0);
    }
}
