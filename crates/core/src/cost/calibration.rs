//! Cost-model calibration (§4.1.1).
//!
//! "Flood generates random layouts by randomly selecting an ordering of the
//! d dimensions, then randomly selecting the number of columns in the grid
//! dimensions to achieve a random target number of total cells. Flood then
//! runs the query workload on each layout, and measures the weights w and
//! aforementioned statistics for each query. Each query for each random
//! layout will produce a single training example. In our evaluation, we
//! found that 10 random layouts produces a sufficient number of training
//! examples to create accurate models."
//!
//! Calibration is a one-time cost per machine; Table 3 shows the resulting
//! weights transfer across datasets. Because of that, repeating it inside
//! one process is pure waste: [`calibrate_cached`] memoizes results on a
//! fingerprint of the configuration and inputs, so a run that learns many
//! layouts (the `repro` experiment suite, Figs 7–16) pays for each distinct
//! calibration exactly once.

use crate::config::FloodConfig;
use crate::cost::features::{cell_size_quantiles, QueryStatistics};
use crate::cost::weights::{WeightModel, WeightModels};
use crate::index::FloodIndex;
use crate::layout::Layout;
use flood_learned::forest::{RandomForest, RandomForestConfig};
use flood_learned::linear::MultiLinearModel;
use flood_store::{CountVisitor, RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Which regressor calibration trains for each weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WeightModelKind {
    /// Random forests (the paper's design).
    #[default]
    Forest,
    /// Linear regression over the same features (§4.1.2 ablation).
    Linear,
}

/// Configuration for [`calibrate`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Number of random layouts to measure (paper: 10).
    pub n_layouts: usize,
    /// Regressor family.
    pub kind: WeightModelKind,
    /// log2 of the smallest / largest random total-cell target.
    pub min_cells_log2: u32,
    /// See `min_cells_log2`.
    pub max_cells_log2: u32,
    /// RNG seed.
    pub seed: u64,
    /// Repeat each query this many times and keep the fastest run
    /// (denoises the tiny per-phase timings).
    pub reps: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            n_layouts: 10,
            kind: WeightModelKind::Forest,
            min_cells_log2: 4,
            max_cells_log2: 14,
            seed: 0xCA11B,
            reps: 1,
        }
    }
}

/// Diagnostics from a calibration run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Training examples gathered per weight (wp, wr, ws).
    pub examples: (usize, usize, usize),
    /// Training mean absolute error per weight, in ns.
    pub train_mae: (f64, f64, f64),
}

/// Generate one random layout over `dims` dimensions (§4.1.1's procedure).
pub fn random_layout(dims: usize, rng: &mut StdRng, cfg: &CalibrationConfig) -> Layout {
    assert!(dims >= 1);
    let mut order: Vec<usize> = (0..dims).collect();
    order.shuffle(rng);
    if dims == 1 {
        return Layout::sort_only(order[0]);
    }
    // Random target total cells, split log-uniformly across grid dims.
    let total_log2 = rng.gen_range(cfg.min_cells_log2..=cfg.max_cells_log2) as f64;
    let mut shares: Vec<f64> = (0..dims - 1).map(|_| rng.gen_range(0.1..1.0)).collect();
    let sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s = *s / sum * total_log2;
    }
    let cols: Vec<usize> = shares
        .iter()
        .map(|&s| (2f64.powf(s).round() as usize).max(1))
        .collect();
    Layout::new(order, cols)
}

/// Measure per-phase weights on random layouts and train the weight models.
///
/// The dataset and workload may be entirely synthetic — the weights
/// calibrate the *hardware*, not the data (Table 3).
pub fn calibrate(
    table: &Table,
    queries: &[RangeQuery],
    cfg: CalibrationConfig,
) -> (WeightModels, CalibrationReport) {
    assert!(!queries.is_empty(), "calibration needs a query workload");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dims = table.dims();

    let mut xp: Vec<Vec<f64>> = Vec::new();
    let mut yp: Vec<f64> = Vec::new();
    let mut xr: Vec<Vec<f64>> = Vec::new();
    let mut yr: Vec<f64> = Vec::new();
    let mut xs_: Vec<Vec<f64>> = Vec::new();
    let mut ys_: Vec<f64> = Vec::new();

    for _ in 0..cfg.n_layouts {
        let layout = random_layout(dims, &mut rng, &cfg);
        // Calibration measures the machine's raw projection / refinement /
        // scan weights; the cost model computes N_c from layout geometry
        // alone, so the probe indexes must run the un-tightened scan path —
        // soft-FD exploitation would deflate the measured projection work.
        let mut probe_cfg = FloodConfig::default();
        probe_cfg.correlation.enabled = false;
        let index = FloodIndex::build(table, layout, probe_cfg);
        let sizes = index.cell_sizes();
        let (avg, median, p95) = cell_size_quantiles(&sizes);
        let total_cells = index.layout().num_cells() as f64;
        let sort_dim = index.layout().sort_dim();

        for q in queries {
            let mut best: Option<(flood_store::ScanStats, crate::index::PhaseTimes)> = None;
            for _ in 0..cfg.reps.max(1) {
                let mut v = CountVisitor::default();
                let run = index.execute_profiled(q, None, &mut v);
                let better = match &best {
                    None => true,
                    Some((_, t)) => run.1.total_ns() < t.total_ns(),
                };
                if better {
                    best = Some(run);
                }
            }
            let (stats, times) = best.expect("at least one rep");
            let ns = (stats.points_scanned + stats.points_in_exact_ranges) as f64;
            let nc = stats.cells_projected as f64;
            let qstats = QueryStatistics {
                nc,
                ns,
                total_cells,
                avg_cell_size: avg,
                median_cell_size: median,
                p95_cell_size: p95,
                dims_filtered: q.num_filtered() as f64,
                avg_visited_per_cell: ns / nc.max(1.0),
                exact_points: stats.points_in_exact_ranges as f64,
                sort_filtered: q.filters(sort_dim),
            };
            let feats = qstats.features().to_vec();
            if nc >= 1.0 {
                xp.push(feats.clone());
                yp.push(times.projection_ns as f64 / nc);
            }
            if qstats.sort_filtered && stats.refinements > 0 {
                xr.push(feats.clone());
                yr.push(times.refinement_ns as f64 / stats.refinements as f64);
            }
            if ns >= 1.0 {
                xs_.push(feats);
                ys_.push(times.scan_ns as f64 / ns);
            }
        }
    }

    let fit = |xs: &[Vec<f64>], ys: &[f64], seed: u64| -> WeightModel {
        if xs.is_empty() {
            return WeightModel::Constant(0.0);
        }
        match cfg.kind {
            WeightModelKind::Forest => {
                let rf_cfg = RandomForestConfig {
                    n_trees: 30,
                    max_depth: 10,
                    min_leaf: 3,
                    feature_frac: 0.7,
                    seed,
                };
                WeightModel::Forest(RandomForest::fit(xs, ys, rf_cfg))
            }
            WeightModelKind::Linear => WeightModel::Linear(MultiLinearModel::fit(xs, ys)),
        }
    };
    let wp = fit(&xp, &yp, cfg.seed ^ 1);
    let wr = fit(&xr, &yr, cfg.seed ^ 2);
    let ws = fit(&xs_, &ys_, cfg.seed ^ 3);

    let mae = |m: &WeightModel, xs: &[Vec<f64>], ys: &[f64]| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| (m.predict(x) - y).abs())
            .sum::<f64>()
            / xs.len() as f64
    };
    let report = CalibrationReport {
        examples: (xp.len(), xr.len(), xs_.len()),
        train_mae: (mae(&wp, &xp, &yp), mae(&wr, &xr, &yr), mae(&ws, &xs_, &ys_)),
    };
    (WeightModels { wp, wr, ws }, report)
}

/// Process-wide memo of calibration results, keyed by input fingerprint.
static CALIBRATION_CACHE: Mutex<Vec<(u64, (WeightModels, CalibrationReport))>> =
    Mutex::new(Vec::new());

/// FNV-1a over the calibration inputs: every config field, the table shape
/// plus a strided sample of its values, and every query's bounds. Collisions
/// would silently reuse a model calibrated on different inputs, so the
/// fingerprint covers everything `calibrate` reads (data values enter via
/// the sampled stride; measurement noise is deliberately not part of the
/// key — calibration is already best-of-`reps` denoised).
fn fingerprint(table: &Table, queries: &[RangeQuery], cfg: &CalibrationConfig) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(cfg.n_layouts as u64);
    mix(cfg.kind as u64);
    mix(cfg.min_cells_log2 as u64);
    mix(cfg.max_cells_log2 as u64);
    mix(cfg.seed);
    mix(cfg.reps as u64);
    mix(table.len() as u64);
    mix(table.dims() as u64);
    let step = (table.len() / 512).max(1);
    for d in 0..table.dims() {
        let mut r = 0;
        while r < table.len() {
            mix(table.value(r, d));
            r += step;
        }
    }
    mix(queries.len() as u64);
    for q in queries {
        for d in 0..q.dims() {
            if let Some((lo, hi)) = q.bound(d) {
                mix(d as u64 + 1);
                mix(lo);
                mix(hi);
            }
        }
    }
    h
}

/// [`calibrate`], memoized process-wide: identical `(table, queries, cfg)`
/// inputs return the cached models without re-measuring. Use this from
/// harnesses that may calibrate the same setup repeatedly in one run.
pub fn calibrate_cached(
    table: &Table,
    queries: &[RangeQuery],
    cfg: CalibrationConfig,
) -> (WeightModels, CalibrationReport) {
    let key = fingerprint(table, queries, &cfg);
    if let Some((_, hit)) = CALIBRATION_CACHE
        .lock()
        .expect("calibration cache lock")
        .iter()
        .find(|(k, _)| *k == key)
    {
        return hit.clone();
    }
    let out = calibrate(table, queries, cfg);
    CALIBRATION_CACHE
        .lock()
        .expect("calibration cache lock")
        .push((key, out.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        let n = 4_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| i % 97).collect(),
            (0..n).map(|i| (i * i) % 1009).collect(),
            (0..n).map(|i| i * 3).collect(),
        ])
    }

    fn small_queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3).with_range(0, 10, 50),
            RangeQuery::all(3)
                .with_range(1, 0, 400)
                .with_range(2, 0, 6_000),
            RangeQuery::all(3).with_range(2, 100, 9_000),
            RangeQuery::all(3)
                .with_range(0, 0, 96)
                .with_range(1, 100, 900),
        ]
    }

    #[test]
    fn random_layouts_are_valid_and_varied() {
        let cfg = CalibrationConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut cell_counts = Vec::new();
        for _ in 0..20 {
            let l = random_layout(4, &mut rng, &cfg);
            assert_eq!(l.num_dims(), 4);
            cell_counts.push(l.num_cells());
        }
        cell_counts.dedup();
        assert!(
            cell_counts.len() > 5,
            "layouts should vary: {cell_counts:?}"
        );
    }

    #[test]
    fn random_layout_single_dim() {
        let cfg = CalibrationConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let l = random_layout(1, &mut rng, &cfg);
        assert_eq!(l.num_cells(), 1);
    }

    #[test]
    fn calibration_produces_models_and_examples() {
        let cfg = CalibrationConfig {
            n_layouts: 3,
            max_cells_log2: 8,
            ..Default::default()
        };
        let (models, report) = calibrate(&small_table(), &small_queries(), cfg);
        assert!(
            report.examples.0 >= 12,
            "wp examples: {:?}",
            report.examples
        );
        assert!(
            report.examples.2 >= 12,
            "ws examples: {:?}",
            report.examples
        );
        // Predictions must be finite and non-negative after clamping.
        let feats = [0.0; 10];
        assert!(models.wp.predict(&feats).is_finite());
        assert!(models.ws.predict(&feats).is_finite());
    }

    #[test]
    fn cached_calibration_reuses_and_distinguishes_inputs() {
        let cfg = CalibrationConfig {
            n_layouts: 2,
            max_cells_log2: 6,
            ..Default::default()
        };
        let t = small_table();
        let qs = small_queries();
        let t0 = std::time::Instant::now();
        let (_, first) = calibrate_cached(&t, &qs, cfg);
        let cold = t0.elapsed();
        let t0 = std::time::Instant::now();
        let (_, second) = calibrate_cached(&t, &qs, cfg);
        let warm = t0.elapsed();
        assert_eq!(first.examples, second.examples);
        // The warm path is a cache lookup — orders of magnitude faster; a
        // loose 2x bound keeps the test robust on noisy machines.
        assert!(warm < cold / 2, "warm {warm:?} vs cold {cold:?}");
        // A different seed is a different calibration.
        let other = CalibrationConfig {
            seed: cfg.seed ^ 0xFF,
            ..cfg
        };
        assert_ne!(
            super::fingerprint(&t, &qs, &cfg),
            super::fingerprint(&t, &qs, &other)
        );
    }

    #[test]
    fn linear_kind_trains_linear_models() {
        let cfg = CalibrationConfig {
            n_layouts: 2,
            max_cells_log2: 6,
            kind: WeightModelKind::Linear,
            ..Default::default()
        };
        let (models, _) = calibrate(&small_table(), &small_queries(), cfg);
        assert!(matches!(models.wp, WeightModel::Linear(_)));
    }
}
