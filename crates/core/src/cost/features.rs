//! Cost-model features (§4.1.1).
//!
//! "The features of these weight models are statistics that can be measured
//! when running the query on a dataset with a certain layout. These
//! statistics include N = {N_c, N_s}, the total number of cells, the
//! average, median, and tail quantiles of the sizes of the filterable cells,
//! the number of dimensions filtered by the query, the average number of
//! visited points in each cell, and the number of points visited in exact
//! sub-ranges."
//!
//! The same structure is produced two ways: *measured* (from a real
//! execution during calibration) and *estimated* (from a data sample inside
//! the layout optimizer, §4.2 step 3) — both feed the same weight models.

use serde::{Deserialize, Serialize};

/// Number of entries in [`QueryStatistics::features`].
pub const NUM_FEATURES: usize = 10;

/// The per-query statistics the weight models are trained on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryStatistics {
    /// N_c: cells inside the projected query rectangle.
    pub nc: f64,
    /// N_s: points scanned (checked + exact).
    pub ns: f64,
    /// Total number of cells in the layout.
    pub total_cells: f64,
    /// Mean size of non-empty cells.
    pub avg_cell_size: f64,
    /// Median size of non-empty cells.
    pub median_cell_size: f64,
    /// 95th-percentile size of non-empty cells (tail quantile).
    pub p95_cell_size: f64,
    /// Number of dimensions the query filters.
    pub dims_filtered: f64,
    /// Average number of visited points per visited cell (run length /
    /// locality proxy, Fig 5's second panel).
    pub avg_visited_per_cell: f64,
    /// Points visited inside exact sub-ranges (§7.1 fast path).
    pub exact_points: f64,
    /// Whether the query filters the sort dimension (refinement runs).
    pub sort_filtered: bool,
}

impl QueryStatistics {
    /// Assemble *estimated* statistics from sample counts, the way the
    /// layout optimizer produces them (§4.2 step 3).
    ///
    /// Both cost-evaluation paths — the from-scratch sample scan
    /// (`SampleSpace::query_stats`) and the incremental per-dimension cache
    /// (`SampleSpace::query_stats_cached`) — go through this one
    /// constructor, so equal counts yield **bit-identical** statistics; the
    /// equivalence property suite (`prop_incremental.rs`) relies on that.
    ///
    /// Flattening keeps cells near-uniform, so the median cell size is
    /// estimated at the mean and the tail at twice it (measured values are
    /// used during calibration, estimates only during search).
    pub fn estimated(
        nc: f64,
        ns: f64,
        exact_points: f64,
        total_cells: f64,
        avg_cell_size: f64,
        dims_filtered: f64,
        sort_filtered: bool,
    ) -> Self {
        QueryStatistics {
            nc,
            ns,
            total_cells,
            avg_cell_size,
            median_cell_size: avg_cell_size,
            p95_cell_size: avg_cell_size * 2.0,
            dims_filtered,
            avg_visited_per_cell: ns / nc.max(1.0),
            exact_points,
            sort_filtered,
        }
    }

    /// Flatten into the fixed-order feature vector fed to the weight models.
    /// Count-like features are log-transformed: the weights span a narrow
    /// range (§4.1.1) but the counts span many orders of magnitude.
    pub fn features(&self) -> [f64; NUM_FEATURES] {
        [
            log1p(self.nc),
            log1p(self.ns),
            log1p(self.total_cells),
            log1p(self.avg_cell_size),
            log1p(self.median_cell_size),
            log1p(self.p95_cell_size),
            self.dims_filtered,
            log1p(self.avg_visited_per_cell),
            log1p(self.exact_points),
            if self.sort_filtered { 1.0 } else { 0.0 },
        ]
    }
}

#[inline]
fn log1p(v: f64) -> f64 {
    (v.max(0.0) + 1.0).ln()
}

/// `(avg, median, p95)` of a set of cell sizes.
pub fn cell_size_quantiles(sizes: &[usize]) -> (f64, f64, f64) {
    if sizes.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let avg = sorted.iter().sum::<usize>() as f64 / sorted.len() as f64;
    let median = sorted[sorted.len() / 2] as f64;
    let p95 = sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)] as f64;
    (avg, median, p95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_shape_and_order() {
        let s = QueryStatistics {
            nc: 0.0,
            ns: (1e6_f64.exp() - 1.0).min(1e15),
            total_cells: 100.0,
            avg_cell_size: 10.0,
            median_cell_size: 9.0,
            p95_cell_size: 20.0,
            dims_filtered: 3.0,
            avg_visited_per_cell: 50.0,
            exact_points: 0.0,
            sort_filtered: true,
        };
        let f = s.features();
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[0], 0.0_f64.ln_1p());
        assert_eq!(f[6], 3.0);
        assert_eq!(f[9], 1.0);
    }

    #[test]
    fn quantiles() {
        let sizes: Vec<usize> = (1..=100).collect();
        let (avg, median, p95) = cell_size_quantiles(&sizes);
        assert!((avg - 50.5).abs() < 1e-9);
        assert_eq!(median, 51.0);
        assert_eq!(p95, 96.0);
    }

    #[test]
    fn quantiles_empty() {
        assert_eq!(cell_size_quantiles(&[]), (0.0, 0.0, 0.0));
    }
}
