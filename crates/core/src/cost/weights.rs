//! Weight predictors: random forest (the paper's choice), linear regression
//! and fine-tuned constants (the two §4.1.2 ablations).

use flood_learned::forest::RandomForest;
use flood_learned::linear::MultiLinearModel;
use serde::{Deserialize, Serialize};

/// A model predicting one cost weight from the feature vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WeightModel {
    /// Random-forest regression (§4.1.1).
    Forest(RandomForest),
    /// Linear regression over the same features (4× worse, §4.1.2).
    Linear(MultiLinearModel),
    /// A fine-tuned constant (9× worse, §4.1.2).
    Constant(f64),
}

impl WeightModel {
    /// Predict the weight (nanoseconds per cell or per point).
    pub fn predict(&self, features: &[f64]) -> f64 {
        match self {
            WeightModel::Forest(f) => f.predict(features),
            WeightModel::Linear(l) => l.predict(features),
            WeightModel::Constant(c) => *c,
        }
    }
}

/// The three weight models of Eq. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightModels {
    /// Per-projected-cell cost.
    pub wp: WeightModel,
    /// Per-refined-cell cost.
    pub wr: WeightModel,
    /// Per-scanned-point cost.
    pub ws: WeightModel,
}

impl WeightModels {
    /// Fine-tuned constants, roughly matching the magnitudes in Table 2 on
    /// commodity hardware: tens of ns to project a cell, ~100 ns to refine
    /// one (two model lookups + rectification), a few ns per scanned point.
    pub fn constant_default() -> Self {
        WeightModels {
            wp: WeightModel::Constant(40.0),
            wr: WeightModel::Constant(120.0),
            ws: WeightModel::Constant(4.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_predicts_constant() {
        let w = WeightModel::Constant(7.5);
        assert_eq!(w.predict(&[1.0, 2.0]), 7.5);
        assert_eq!(w.predict(&[]), 7.5);
    }

    #[test]
    fn default_weights_ordering() {
        let w = WeightModels::constant_default();
        // Refining a cell costs more than projecting it; scanning a point is
        // by far the cheapest unit of work.
        let f: Vec<f64> = vec![0.0; 10];
        assert!(w.wr.predict(&f) > w.wp.predict(&f));
        assert!(w.ws.predict(&f) < w.wp.predict(&f));
    }
}
