//! Gradient-descent search over column counts (§4.2 step 3).
//!
//! The objective — predicted average query time — is evaluated on integer
//! column counts, so we search in continuous log₂-space, round at evaluation
//! time, and use numeric gradients with a step size large enough to cross
//! integer boundaries. Steps are accepted with backtracking: the learning
//! rate grows on improvement and shrinks on failure.
//!
//! Each finite-difference probe perturbs **one** coordinate of the current
//! position (`x[i] ± h`), so consecutive objective calls differ in a single
//! dimension's rounded column count. The cost evaluator exploits exactly
//! this shape: repeated vectors hit its layout memo, and fresh vectors
//! re-count only the moved dimension through the incremental per-dimension
//! statistics cache (`optimizer::StatsCache`), leaving the rest as cached
//! bitset ANDs.

/// Knobs for [`descend`].
#[derive(Debug, Clone)]
pub struct GdConfig {
    /// Number of gradient steps.
    pub steps: usize,
    /// Initial learning rate (in log₂-column units).
    pub lr: f64,
    /// Finite-difference half-step (log₂ units); must be large enough to
    /// change the rounded column count.
    pub h: f64,
    /// Upper bound on log₂(columns) per dimension.
    pub max_col_log2: f64,
    /// Upper bound on the total number of cells (product of columns).
    pub max_total_cells: usize,
    /// Optional per-dimension overrides of [`GdConfig::max_col_log2`]
    /// (position `i` caps coordinate `i`). Empty ⇒ the uniform cap applies
    /// everywhere. The layout search uses this to shrink the budget of
    /// dimensions a soft FD predicts from a host dimension (re-weighting,
    /// part of the Tsunami/COAX correlation extension — the paper's search
    /// uses the uniform cap only).
    pub per_dim_max_log2: Vec<f64>,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig {
            steps: 20,
            lr: 1.0,
            h: 0.5,
            max_col_log2: 10.0,
            max_total_cells: 1 << 20,
            per_dim_max_log2: Vec::new(),
        }
    }
}

/// Map a log₂-space position to integer column counts, respecting the
/// per-dimension and total-cell caps.
pub fn to_cols(x: &[f64], cfg: &GdConfig) -> Vec<usize> {
    let cap_of = |i: usize| -> f64 {
        cfg.per_dim_max_log2
            .get(i)
            .copied()
            .unwrap_or(cfg.max_col_log2)
            .max(0.0)
    };
    let mut x: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| v.clamp(0.0, cap_of(i)))
        .collect();
    // Enforce the total-cell cap by uniformly shrinking in log space.
    let total: f64 = x.iter().sum();
    let cap = (cfg.max_total_cells as f64).log2();
    if total > cap {
        let scale = cap / total;
        for v in &mut x {
            *v *= scale;
        }
    }
    x.iter()
        .map(|&v| (2f64.powf(v).round() as usize).max(1))
        .collect()
}

/// Minimize `objective` (called on integer column counts) from `init`
/// (log₂ space). Returns the best column counts and their objective value.
pub fn descend(
    init: &[f64],
    cfg: &GdConfig,
    mut objective: impl FnMut(&[usize]) -> f64,
) -> (Vec<usize>, f64) {
    let dims = init.len();
    if dims == 0 {
        let cost = objective(&[]);
        return (Vec::new(), cost);
    }
    let mut x: Vec<f64> = init.to_vec();
    let eval = |x: &[f64], obj: &mut dyn FnMut(&[usize]) -> f64| -> f64 { obj(&to_cols(x, cfg)) };
    let mut fx = eval(&x, &mut objective);
    let mut best_x = x.clone();
    let mut best_f = fx;
    let mut lr = cfg.lr;

    for _ in 0..cfg.steps {
        // Numeric gradient.
        let mut grad = vec![0.0f64; dims];
        let mut max_abs = 0.0f64;
        for i in 0..dims {
            let mut xp = x.clone();
            xp[i] += cfg.h;
            let mut xm = x.clone();
            xm[i] -= cfg.h;
            let g = (eval(&xp, &mut objective) - eval(&xm, &mut objective)) / (2.0 * cfg.h);
            grad[i] = g;
            max_abs = max_abs.max(g.abs());
        }
        if max_abs == 0.0 {
            // Flat neighbourhood: random-restart style nudge would be
            // overkill; widen the probe by doubling lr and trying a
            // diagonal move instead.
            let cand: Vec<f64> = x.iter().map(|&v| v + lr).collect();
            let fc = eval(&cand, &mut objective);
            if fc < fx {
                x = cand;
                fx = fc;
            } else {
                lr *= 0.5;
                if lr < 0.05 {
                    break;
                }
            }
            continue;
        }
        // Normalized step with backtracking acceptance.
        let cand: Vec<f64> = x
            .iter()
            .zip(&grad)
            .map(|(&v, &g)| v - lr * g / max_abs)
            .collect();
        let fc = eval(&cand, &mut objective);
        if fc < fx {
            x = cand;
            fx = fc;
            lr = (lr * 1.2).min(3.0);
        } else {
            lr *= 0.5;
            if lr < 0.05 {
                break;
            }
        }
        if fx < best_f {
            best_f = fx;
            best_x = x.clone();
        }
    }
    let cols = to_cols(&best_x, cfg);
    let final_f = objective(&cols);
    (cols, final_f.min(best_f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_cols_clamps_and_caps() {
        let cfg = GdConfig {
            max_col_log2: 4.0,
            max_total_cells: 64,
            ..Default::default()
        };
        // 2^4 each = 16·16·16 = 4096 > 64 → shrink to total ≤ 64 = 2^6.
        let cols = to_cols(&[4.0, 4.0, 4.0], &cfg);
        let total: usize = cols.iter().product();
        assert!(total <= 64, "cols {cols:?} total {total}");
        // Negative log columns clamp to 1 column.
        assert_eq!(to_cols(&[-3.0], &cfg), vec![1]);
    }

    #[test]
    fn per_dim_caps_override_uniform_cap() {
        let cfg = GdConfig {
            max_col_log2: 8.0,
            per_dim_max_log2: vec![8.0, 2.0],
            ..Default::default()
        };
        // Dim 1 is capped at 2^2 = 4 columns; dim 0 keeps the uniform cap.
        assert_eq!(to_cols(&[8.0, 8.0], &cfg), vec![256, 4]);
        // A third coordinate beyond the override vector falls back to the
        // uniform cap.
        let cfg3 = GdConfig {
            max_total_cells: 1 << 20,
            ..cfg.clone()
        };
        assert_eq!(to_cols(&[8.0, 8.0, 8.0], &cfg3), vec![256, 4, 256]);
        // The descent respects the cap: unconstrained optimum at 2^4 per
        // dim, but dim 1 can't go past 2^2.
        let obj = |cols: &[usize]| {
            cols.iter()
                .map(|&c| {
                    let l = (c as f64).log2();
                    (l - 4.0) * (l - 4.0)
                })
                .sum::<f64>()
        };
        let (cols, _) = descend(&[1.0, 1.0], &cfg, obj);
        assert!(cols[1] <= 4, "capped dim exceeded its budget: {cols:?}");
    }

    #[test]
    fn minimizes_convex_objective() {
        // Optimal at cols = [16, 16] (log2 = 4 each).
        let obj = |cols: &[usize]| {
            cols.iter()
                .map(|&c| {
                    let l = (c as f64).log2();
                    (l - 4.0) * (l - 4.0)
                })
                .sum::<f64>()
        };
        let cfg = GdConfig::default();
        let (cols, cost) = descend(&[1.0, 8.0], &cfg, obj);
        assert!(cost < 0.4, "cost {cost}, cols {cols:?}");
        for &c in &cols {
            assert!((8..=32).contains(&c), "cols {cols:?}");
        }
    }

    #[test]
    fn respects_dimension_count_zero() {
        let (cols, cost) = descend(&[], &GdConfig::default(), |_| 7.0);
        assert!(cols.is_empty());
        assert_eq!(cost, 7.0);
    }

    #[test]
    fn finds_tradeoff_minimum() {
        // Classic Flood-shaped objective: cell cost grows with columns,
        // scan cost shrinks. Minimum at c = sqrt(10000/1) = 100 per dim.
        let obj = |cols: &[usize]| {
            let cells: f64 = cols.iter().map(|&c| c as f64).product();
            cells + 10_000.0 / cells.max(1.0) * 100.0
        };
        let cfg = GdConfig {
            steps: 40,
            ..Default::default()
        };
        let (cols, cost) = descend(&[1.0, 1.0], &cfg, obj);
        // True optimum: cells = 1000, cost = 2000.
        assert!(cost < 3_000.0, "cost {cost}, cols {cols:?}");
    }
}
