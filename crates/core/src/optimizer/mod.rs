//! Layout optimization (§4.2, Algorithm 1) — the component behind Fig 11's
//! "+Learning" step and the learning-time curves of Figs 15/16.
//!
//! ```text
//! FindOptimalLayout(D, Q, T):
//!   D̂, Q̂ ← Sample(D), Sample(Q)
//!   D̂, Q̂ ← Flatten(D̂, Q̂)            # per-dim RMIs trained on the sample
//!   dims  ← order by avg selectivity
//!   for i in 0..d:
//!     O ← grid dims in selectivity order, dims[i] as sort dimension
//!     C, cost ← GradientDescent(T, O, D̂, Q̂)
//!     keep the cheapest (O, C)
//! ```
//!
//! Optimization never builds an index, sorts data, or runs a query: `N_c` is
//! computed exactly from the query rectangle and layout parameters, and
//! `N_s` and the weight-model features are estimated from the flattened data
//! sample.
//!
//! Performance: the data sample is flattened **once** per search (one
//! [`SampleSpace`] shared by every sort-dimension candidate), and the
//! search's cost evaluations run through one [`CostEvaluator`], which
//! layers two caches:
//!
//! 1. a **layout memo** keyed on the full `(order, columns)` vector — the
//!    finite-difference probes of [`descend`] repeatedly revisit the same
//!    rounded column vectors, so each distinct layout is scored once
//!    ([`OptimizedLayout::cost_evals`] / [`OptimizedLayout::cache_hits`]
//!    report the effect);
//! 2. **incremental per-query statistics** keyed on
//!    `(query fingerprint, dim, column_count)` ([`sample::StatsCache`]) — a
//!    memo *miss* whose probe moved one dimension re-counts only that
//!    dimension's filtered queries and derives the rest by AND-ing cached
//!    bitsets ([`OptimizedLayout::dim_recounts`] /
//!    [`OptimizedLayout::dim_reuses`]); because entries are keyed by query
//!    identity, the cache also survives the *workload* changing, which is
//!    what [`EvaluatorCache`] exploits across `AdaptiveFlood` re-learns.
//!
//! Callers that score many explicit layouts against one workload (Fig 14's
//! cost surface) should hold a [`CostEvaluator`] instead of calling
//! [`LayoutOptimizer::predict_cost`] in a loop, which re-flattens each call.
//!
//! Paper map: §4.2/Algorithm 1 → [`LayoutOptimizer::optimize`]; §4.2 step 3
//! (gradient descent over column counts) → [`gradient`]; §7.7 sampling
//! sensitivity (Figs 15/16) → [`OptimizerConfig::data_sample`] and
//! [`OptimizerConfig::query_sample`]; the optimizer-search cost the paper
//! reports as learning time (Figs 15/16's left panels) → `repro optcost`,
//! which measures the full-vs-incremental gap.
//!
//! **Correlation extension (beyond the Flood paper).** Flood treats
//! dimensions as independent; its successors exploit inter-dimension
//! correlation (Tsunami's regions, COAX's correlation-aware completion).
//! This search folds a lightweight form of both into Algorithm 1 via
//! [`OptimizerConfig::correlation`]: soft functional dependencies detected
//! on the data sample ([`crate::correlation::CorrelationModel`]) either
//! **collapse** a dependent dimension out of the candidate set — its
//! predicates are rewritten through the host inside the sample space, so
//! candidate layouts are priced as if the rewrite were already live — or
//! **re-weight** it with a per-dimension column-budget cap scaled by the
//! fit strength ([`GdConfig::per_dim_max_log2`]). With the knob off the
//! search is bit-identical to the paper's. [`OptimizedLayout::collapsed`]
//! and [`OptimizedLayout::reweighted`] report what fired.

pub mod gradient;
pub mod sample;

pub use gradient::{descend, GdConfig};
pub use sample::{DataSample, SampleSpace, StatsCache};

use crate::correlation::CorrelationConfig;
use crate::cost::CostModel;
use crate::layout::Layout;
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`LayoutOptimizer`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Maximum data-sample size (Fig 15: 0.01–1 % suffices).
    pub data_sample: usize,
    /// Maximum query-sample size (Fig 16: ~5 % suffices).
    pub query_sample: usize,
    /// Gradient-descent steps per sort-dimension candidate.
    pub gd_steps: usize,
    /// Per-dimension column cap, as log₂ (10 → 1024 columns).
    pub max_col_log2: f64,
    /// Cap on the total cell count of candidate layouts.
    pub max_total_cells: usize,
    /// Target average points per cell for the descent's starting layout.
    pub init_points_per_cell: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Evaluate candidate layouts through the incremental per-dimension
    /// statistics cache (`true`, the default) or with a from-scratch sample
    /// scan per distinct layout (`false`). The two produce bit-identical
    /// layouts and costs; the flag exists so `repro optcost` can measure
    /// the search-time gap.
    pub incremental: bool,
    /// Soft-FD detection over the data sample (Tsunami/COAX extension).
    /// Detected collapse-grade dependents are dropped from the candidate
    /// grid dimensions (their predicates route through the host), and
    /// re-weight-grade dependents search under a reduced column cap.
    /// Detection runs *after* row sampling, so disabling it leaves the
    /// sampling stream — and therefore the search — bit-identical.
    pub correlation: CorrelationConfig,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            data_sample: 10_000,
            query_sample: 100,
            gd_steps: 20,
            max_col_log2: 10.0,
            max_total_cells: 1 << 20,
            init_points_per_cell: 1_024,
            seed: 0x0F700D,
            incremental: true,
            correlation: CorrelationConfig::default(),
        }
    }
}

/// The result of a layout search.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    /// The winning layout.
    pub layout: Layout,
    /// Its predicted average query time (ns).
    pub predicted_ns: f64,
    /// Wall-clock learning time.
    pub learn_time: std::time::Duration,
    /// Predicted cost of each sort-dimension candidate `(dim, ns)` —
    /// diagnostics for the harness.
    pub candidates: Vec<(usize, f64)>,
    /// Cost-model evaluations requested by the search (memoized + fresh).
    pub cost_evals: usize,
    /// Evaluations answered from the layout memo instead of re-deriving
    /// statistics from the flattened sample.
    pub cache_hits: usize,
    /// Per-(query, dimension) contributions counted from scratch — the
    /// dirty set across every memo miss (see [`sample::StatsCache`]).
    pub dim_recounts: usize,
    /// Per-(query, dimension) contributions served from the incremental
    /// cache — contributions probes needed but never changed.
    pub dim_reuses: usize,
    /// Dimensions the search dropped from the candidate set because a
    /// collapse-grade soft FD routes their predicates through a host
    /// dimension (Tsunami/COAX extension; empty with correlation off).
    pub collapsed: Vec<usize>,
    /// Dimensions kept in the search but under a correlation-reduced
    /// column cap (re-weight-grade soft FDs).
    pub reweighted: Vec<usize>,
}

/// Searches the layout space for the cheapest layout under a cost model.
#[derive(Debug, Clone)]
pub struct LayoutOptimizer {
    cost: CostModel,
    cfg: OptimizerConfig,
}

impl LayoutOptimizer {
    /// Optimizer with default configuration.
    pub fn new(cost: CostModel) -> Self {
        LayoutOptimizer {
            cost,
            cfg: OptimizerConfig::default(),
        }
    }

    /// Optimizer with explicit configuration.
    pub fn with_config(cost: CostModel, cfg: OptimizerConfig) -> Self {
        LayoutOptimizer { cost, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// The deterministic query sampling `optimize` applies before
    /// flattening: shuffle the workload with the configured seed and keep
    /// [`OptimizerConfig::query_sample`] queries. Returns the sampled
    /// queries plus the RNG in the exact state `optimize` would hand to the
    /// data-sample builder, so external callers (the shared re-learn path)
    /// reproduce `optimize`'s stream bit for bit.
    pub fn sample_queries(&self, workload: &[RangeQuery]) -> (Vec<RangeQuery>, StdRng) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut queries: Vec<RangeQuery> = workload.to_vec();
        queries.shuffle(&mut rng);
        queries.truncate(self.cfg.query_sample.max(1));
        (queries, rng)
    }

    /// Find the cheapest layout for `workload` over `table` (Algorithm 1).
    ///
    /// # Panics
    /// Panics if the workload is empty or the table has no rows.
    pub fn optimize(&self, table: &Table, workload: &[RangeQuery]) -> OptimizedLayout {
        assert!(
            !workload.is_empty(),
            "cannot optimize for an empty workload"
        );
        assert!(!table.is_empty(), "cannot optimize over an empty table");
        let start = Instant::now();
        // Sample queries, then build the flattened data sample.
        let (queries, mut rng) = self.sample_queries(workload);
        let space = SampleSpace::build(
            table,
            &queries,
            self.cfg.data_sample,
            &mut rng,
            &self.cfg.correlation,
        );
        let mut evaluator =
            CostEvaluator::over_space(space, self.cost.clone(), self.cfg.incremental);
        self.search(&mut evaluator, start)
    }

    /// [`LayoutOptimizer::optimize`] against a shared [`EvaluatorCache`]:
    /// the flattened data sample is built at most once per table and every
    /// query-dependent layer (flat queries, per-dimension masks, layout
    /// memo) is keyed on the sampled window's fingerprint, so repeat
    /// windows — and the degradation check that preceded this call — feed
    /// the search instead of being recomputed.
    ///
    /// With [`OptimizerConfig::data_sample`] ≥ the table size this is
    /// bit-identical to [`LayoutOptimizer::optimize`]; with a partial
    /// sample the shared path keeps the *original* sample alive while a
    /// cold call would draw a fresh one (same multiset, different rows), so
    /// predicted costs can differ within sampling noise.
    ///
    /// # Panics
    /// Panics if the workload is empty or the table has no rows.
    pub fn optimize_shared(
        &self,
        table: &Table,
        workload: &[RangeQuery],
        shared: &mut EvaluatorCache,
    ) -> OptimizedLayout {
        assert!(
            !workload.is_empty(),
            "cannot optimize for an empty workload"
        );
        assert!(!table.is_empty(), "cannot optimize over an empty table");
        let start = Instant::now();
        let (queries, mut rng) = self.sample_queries(workload);
        let evaluator = shared.evaluator(self, table, &queries, &mut rng);
        self.search(evaluator, start)
    }

    /// Run Algorithm 1's candidate loop against an existing evaluator
    /// (counters in the result are deltas over this call, so a reused
    /// evaluator reports only this search's work).
    pub fn optimize_in(&self, evaluator: &mut CostEvaluator) -> OptimizedLayout {
        self.search(evaluator, Instant::now())
    }

    /// Algorithm 1's search loop over one evaluator. `start` anchors
    /// `learn_time` so callers can include (or exclude) their sampling and
    /// flattening work.
    fn search(&self, evaluator: &mut CostEvaluator, start: Instant) -> OptimizedLayout {
        let (evals0, hits0) = (evaluator.cost_evals(), evaluator.cache_hits());
        let (recounts0, reuses0) = (evaluator.dim_recounts(), evaluator.dim_reuses());

        // Candidate dimensions: everything the sampled workload filters,
        // most selective first. Never-filtered dimensions are left out of
        // the index entirely (§7.5: Flood "chooses not to include the least
        // frequently filtered dimensions").
        let mut candidates = evaluator.space().dims_by_selectivity();
        if candidates.is_empty() {
            candidates = (0..evaluator.space().dims()).collect();
        }

        // Correlation exploitation (Tsunami/COAX extension). Collapse-grade
        // dependents leave the candidate set entirely: the sample-space
        // rewrite already routes their predicates through the host, so
        // spending grid columns (or the sort slot) on them is pure waste.
        // Re-weight-grade dependents stay searchable but under a column cap
        // shrunk by the detected strength — a dimension that is 70%
        // predicted by its host deserves ~30% of the usual budget.
        let corr = evaluator.space().data().correlation().clone();
        let mut collapsed: Vec<usize> = Vec::new();
        if !corr.is_empty() {
            let pruned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&d| !corr.is_collapsed_dep(d))
                .collect();
            // Keep the original set when pruning would leave nothing to
            // index (every filtered dimension collapsed).
            if !pruned.is_empty() && pruned.len() < candidates.len() {
                collapsed = candidates
                    .iter()
                    .copied()
                    .filter(|&d| corr.is_collapsed_dep(d))
                    .collect();
                candidates = pruned;
            }
        }
        let reweighted: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| corr.reweight_strength_of(d).is_some())
            .collect();

        let gd_cfg = GdConfig {
            steps: self.cfg.gd_steps,
            max_col_log2: self.cfg.max_col_log2,
            max_total_cells: self.cfg.max_total_cells,
            ..Default::default()
        };
        // Starting point: equal log-split of a cell budget of
        // n / init_points_per_cell.
        let target_cells = (evaluator.space().full_len() / self.cfg.init_points_per_cell.max(1))
            .clamp(4, self.cfg.max_total_cells) as f64;

        // One evaluator for the whole search: the layout memo and the
        // per-dimension stats cache are both shared across sort-dimension
        // candidates (candidate orders differ, but a dimension's masks
        // depend only on its own column count).
        let mut best: Option<(Layout, f64)> = None;
        let mut diagnostics = Vec::new();
        for (i, &sort_dim) in candidates.iter().enumerate() {
            // Grid dims: the other candidates, in selectivity order.
            let order: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &d)| d)
                .chain(std::iter::once(sort_dim))
                .collect();
            let k = order.len() - 1;
            let (cols, cost) = if k == 0 {
                let cost = evaluator.predict_order(&order, &[]);
                (Vec::new(), cost)
            } else {
                let gd = if reweighted.is_empty() {
                    gd_cfg.clone()
                } else {
                    // Per-grid-dimension caps: a re-weighted dependent's
                    // budget shrinks with the FD strength.
                    GdConfig {
                        per_dim_max_log2: order[..k]
                            .iter()
                            .map(|&d| match corr.reweight_strength_of(d) {
                                Some(s) => self.cfg.max_col_log2 * (1.0 - s),
                                None => self.cfg.max_col_log2,
                            })
                            .collect(),
                        ..gd_cfg.clone()
                    }
                };
                let init = vec![target_cells.log2() / k as f64; k];
                descend(&init, &gd, |cols| evaluator.predict_order(&order, cols))
            };
            diagnostics.push((sort_dim, cost));
            let layout = Layout::new(order, cols);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((layout, cost));
            }
        }
        let (layout, predicted_ns) = best.expect("at least one candidate");
        OptimizedLayout {
            layout,
            predicted_ns,
            learn_time: start.elapsed(),
            candidates: diagnostics,
            cost_evals: evaluator.cost_evals() - evals0,
            cache_hits: evaluator.cache_hits() - hits0,
            dim_recounts: evaluator.dim_recounts() - recounts0,
            dim_reuses: evaluator.dim_reuses() - reuses0,
            collapsed,
            reweighted,
        }
    }

    /// Predict the average query time of an explicit layout on this
    /// table/workload (Fig 14's cost surface).
    ///
    /// Builds a fresh [`SampleSpace`] per call; to score many layouts
    /// against one workload, use [`LayoutOptimizer::evaluator`].
    pub fn predict_cost(&self, table: &Table, workload: &[RangeQuery], layout: &Layout) -> f64 {
        self.evaluator(table, workload).predict(layout)
    }

    /// Build the flattened sample once and return an evaluator that can
    /// score any number of layouts against it without re-sampling or
    /// re-flattening.
    pub fn evaluator(&self, table: &Table, workload: &[RangeQuery]) -> CostEvaluator {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let space = SampleSpace::build(
            table,
            workload,
            self.cfg.data_sample,
            &mut rng,
            &self.cfg.correlation,
        );
        CostEvaluator::over_space(space, self.cost.clone(), self.cfg.incremental)
    }

    /// [`LayoutOptimizer::evaluator`] over the *sampled* workload — the
    /// query subset [`LayoutOptimizer::optimize`] would search on — so
    /// pricing a layout here is directly comparable to an `optimize` run's
    /// `predicted_ns` on the same workload.
    pub fn evaluator_sampled(&self, table: &Table, workload: &[RangeQuery]) -> CostEvaluator {
        let (queries, mut rng) = self.sample_queries(workload);
        let space = SampleSpace::build(
            table,
            &queries,
            self.cfg.data_sample,
            &mut rng,
            &self.cfg.correlation,
        );
        CostEvaluator::over_space(space, self.cost.clone(), self.cfg.incremental)
    }
}

/// Re-learn cache: one flattened [`DataSample`] per table, one long-lived
/// per-query [`StatsCache`], and the current observation window's
/// [`CostEvaluator`], keyed by the window's fingerprint
/// ([`SampleSpace::query_fingerprint`] of the *sampled* window).
///
/// `AdaptiveFlood` holds one of these across rebuilds. The data multiset of
/// a clustered index never changes, so the expensive query-independent work
/// (row sampling, per-dimension RMI training, flattening) happens once.
/// When the window changes, the evaluator is rebuilt — a cheap query
/// flatten — but its mask cache is *carried over*: masks are keyed by each
/// query's own fingerprint, and sliding windows share most of their
/// queries, so a degradation check or re-learn re-counts only the queries
/// that actually entered the window since the masks were last built. The
/// layout memo resets with the window (costs are workload-dependent), and
/// the mask cache is epoch-pruned so long-dead queries stop holding
/// memory.
///
/// Contract: one cache serves **one logical table** (the same multiset,
/// in any row order) and **one cost model** (every call must pass
/// optimizers sharing the model the cache was first used with). Shape
/// changes rebuild the data sample automatically; same-shape content
/// changes are a caller bug, caught by a `debug_assert` on an
/// order-invariant table fingerprint.
#[derive(Debug, Default)]
pub struct EvaluatorCache {
    data: Option<Arc<DataSample>>,
    /// Order-invariant content fingerprint of the table the data sample
    /// was built from (`table_multiset_fp`) — rebuilds of a clustered
    /// index permute rows without changing it, so it identifies "the same
    /// table" across rebuilds while rejecting a different table that
    /// happens to share shape.
    table_fp: u64,
    /// `(window fingerprint, evaluator)` for the current window.
    current: Option<(u64, CostEvaluator)>,
    data_builds: usize,
    window_builds: usize,
    window_reuses: usize,
}

/// Order-invariant fingerprint of a table's content: per-dimension
/// wrapping sums plus shape. Any permutation of the rows (what a Flood
/// rebuild does) maps to the same value; a table with different content
/// collides only adversarially. O(n·d) — cheap next to a flatten, but not
/// free, hence debug-only verification on the reuse path.
fn table_multiset_fp(table: &Table) -> u64 {
    let mut h: u64 = 0x9E3779B97F4A7C15 ^ (table.len() as u64) ^ ((table.dims() as u64) << 32);
    for d in 0..table.dims() {
        let mut sum = 0u64;
        for r in 0..table.len() {
            sum = sum.wrapping_add(table.value(r, d));
        }
        h = h.rotate_left(7) ^ sum.wrapping_mul(0x100000001B3);
    }
    h
}

/// Mask-cache entries tolerated before stale pruning kicks in (couple of
/// MB at typical sample sizes).
const MASK_CACHE_CAP: usize = 8_192;
/// Epochs (window rotations) an entry may sit unused before pruning.
const MASK_KEEP_EPOCHS: usize = 2;

impl EvaluatorCache {
    /// An empty cache; the first use builds the data sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// The evaluator for `queries` over `table`: the current evaluator when
    /// the window fingerprint matches, otherwise a fresh query layer over
    /// the shared data sample (built only when absent or when `table`'s
    /// shape changed) carrying the accumulated per-query mask cache. `rng`
    /// must be in the post-query-sampling state
    /// ([`LayoutOptimizer::sample_queries`]) so a fresh data sample draws
    /// the same rows a cold `optimize` would.
    pub fn evaluator(
        &mut self,
        optimizer: &LayoutOptimizer,
        table: &Table,
        queries: &[RangeQuery],
        rng: &mut StdRng,
    ) -> &mut CostEvaluator {
        let fp = SampleSpace::query_fingerprint(queries);
        if self.current.as_ref().is_some_and(|(f, _)| *f == fp) {
            self.window_reuses += 1;
            return &mut self.current.as_mut().expect("checked above").1;
        }
        let cfg = optimizer.config();
        let data = match &self.data {
            Some(d) if d.full_len() == table.len() && d.dims() == table.dims() => {
                // The release-mode check is shape-only (O(1)); debug builds
                // verify the table really is the same multiset the sample
                // was drawn from — same-shape-different-content misuse
                // would otherwise produce silently wrong statistics. One
                // cache serves one logical table; use a fresh cache per
                // table (the cost model is likewise fixed per cache).
                debug_assert_eq!(
                    table_multiset_fp(table),
                    self.table_fp,
                    "EvaluatorCache reused across different table contents"
                );
                Arc::clone(d)
            }
            _ => {
                self.data_builds += 1;
                // Masks over the old sample are meaningless for the new one.
                self.current = None;
                self.table_fp = table_multiset_fp(table);
                let d = Arc::new(DataSample::build(
                    table,
                    cfg.data_sample,
                    rng,
                    &cfg.correlation,
                ));
                self.data = Some(Arc::clone(&d));
                d
            }
        };
        self.window_builds += 1;
        let space = SampleSpace::over(data, queries);
        // Rotate the window: keep the per-query mask cache (new epoch,
        // stale entries pruned), reset the layout memo.
        let mut stats = match self.current.take() {
            Some((_, ev)) => ev.into_cache(),
            None => space.stats_cache(),
        };
        stats.advance_epoch();
        if stats.entry_count() > MASK_CACHE_CAP {
            stats.prune_stale(stats.epoch().saturating_sub(MASK_KEEP_EPOCHS));
        }
        let evaluator =
            CostEvaluator::with_cache(space, optimizer.cost.clone(), cfg.incremental, stats);
        self.current = Some((fp, evaluator));
        &mut self.current.as_mut().expect("just set").1
    }

    /// Times the data sample was flattened (1 after any use; more only if
    /// the table shape changed).
    pub fn data_builds(&self) -> usize {
        self.data_builds
    }

    /// Windows flattened into a fresh evaluator.
    pub fn window_builds(&self) -> usize {
        self.window_builds
    }

    /// Requests answered by the pooled current evaluator (fingerprint hit).
    pub fn window_reuses(&self) -> usize {
        self.window_reuses
    }
}

/// Scores layouts against one flattened sample (built once), caching work
/// at two granularities.
///
/// The expensive parts of cost prediction — sampling the table, training
/// per-dimension CDFs, flattening — depend only on the data and workload,
/// so sweeps over many candidate layouts (Fig 14) amortize them here. On
/// top of that, repeat layouts are answered from a **layout memo** and
/// fresh layouts re-count only the dimensions that differ from anything
/// seen before, via the incremental per-dimension [`StatsCache`]. The
/// `cost_evals`/`cache_hits` (memo) and `dim_recounts`/`dim_reuses`
/// (per-dimension cache) counters expose both layers for diagnostics.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    space: SampleSpace,
    cost: CostModel,
    cache: StatsCache,
    /// Layout memo: predicted cost plus the epoch the entry was computed
    /// in (for cross-epoch attribution, mirroring [`StatsCache`]).
    memo: HashMap<(Vec<usize>, Vec<usize>), (f64, usize)>,
    epoch: usize,
    cost_evals: usize,
    cache_hits: usize,
    cross_epoch_memo_hits: usize,
    incremental: bool,
}

impl CostEvaluator {
    /// An evaluator over an already-flattened sample.
    fn over_space(space: SampleSpace, cost: CostModel, incremental: bool) -> Self {
        let cache = space.stats_cache();
        CostEvaluator::with_cache(space, cost, incremental, cache)
    }

    /// An evaluator adopting an existing mask cache (which must belong to
    /// `space`'s data sample). The layout memo starts empty — costs depend
    /// on the query set — but adopted masks keep serving any query they
    /// were built for.
    fn with_cache(
        space: SampleSpace,
        cost: CostModel,
        incremental: bool,
        cache: StatsCache,
    ) -> Self {
        CostEvaluator {
            space,
            cost,
            cache,
            memo: HashMap::new(),
            epoch: 0,
            cost_evals: 0,
            cache_hits: 0,
            cross_epoch_memo_hits: 0,
            incremental,
        }
    }

    /// Tear down into the mask cache, for carrying into the next window's
    /// evaluator.
    fn into_cache(self) -> StatsCache {
        self.cache
    }

    /// The flattened sample this evaluator scores against.
    pub fn space(&self) -> &SampleSpace {
        &self.space
    }

    /// Predicted average query time (ns) of `layout` on the sampled
    /// workload.
    pub fn predict(&mut self, layout: &Layout) -> f64 {
        self.predict_order(layout.order(), layout.cols())
    }

    /// [`CostEvaluator::predict`] on a raw `(order, cols)` pair — the form
    /// the descent's probes arrive in.
    fn predict_order(&mut self, order: &[usize], cols: &[usize]) -> f64 {
        self.cost_evals += 1;
        let key = (order.to_vec(), cols.to_vec());
        if let Some(&(c, born)) = self.memo.get(&key) {
            self.cache_hits += 1;
            if born < self.epoch {
                self.cross_epoch_memo_hits += 1;
            }
            return c;
        }
        let c = if self.incremental {
            self.predict_per_query(&key)
        } else {
            self.cost
                .predict_workload(&self.space.query_stats(order, cols))
        };
        self.memo.insert(key, (c, self.epoch));
        c
    }

    /// The incremental pricing path: each query's cost under this layout is
    /// memoized in the carried cache keyed on `(layout, query fingerprint)`
    /// — a pair's cost depends on nothing else, so statistics and weight
    /// models run only for queries this layout was never priced on (in any
    /// window sharing the cache). Bit-identical to
    /// `predict_workload(query_stats(..))`: per-query statistics are
    /// per-query facts, and the mean is summed in query order.
    fn predict_per_query(&mut self, key: &(Vec<usize>, Vec<usize>)) -> f64 {
        let qn = self.space.query_count();
        if qn == 0 {
            return 0.0;
        }
        let mut costs: Vec<Option<f64>> = Vec::with_capacity(qn);
        for qi in 0..qn {
            let qfp = self.space.qfps()[qi];
            costs.push(self.cache.cost_probe(key, qfp));
        }
        let missing: Vec<usize> = (0..qn).filter(|&qi| costs[qi].is_none()).collect();
        if !missing.is_empty() {
            let stats =
                self.space
                    .query_stats_cached_for(&key.0, &key.1, &missing, &mut self.cache);
            for (st, &qi) in stats.iter().zip(&missing) {
                let t = self.cost.predict(st).time_ns;
                self.cache.cost_insert(key, self.space.qfps()[qi], t);
                costs[qi] = Some(t);
            }
        }
        let sum: f64 = costs.iter().map(|c| c.expect("filled above")).sum();
        sum / qn as f64
    }

    /// Cost-model evaluations requested so far (memoized + fresh).
    pub fn cost_evals(&self) -> usize {
        self.cost_evals
    }

    /// Evaluations answered from the layout memo.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Per-dimension contributions counted from scratch (incremental path
    /// only; always 0 with `incremental: false`).
    pub fn dim_recounts(&self) -> usize {
        self.cache.recounts()
    }

    /// Per-dimension contributions served from the incremental cache.
    pub fn dim_reuses(&self) -> usize {
        self.cache.reuses()
    }

    /// Start a new epoch: subsequent memo hits and mask reuses on state
    /// created before this call count as cross-epoch (see
    /// [`CostEvaluator::cross_epoch_hits`]).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.cache.advance_epoch();
    }

    /// Memo hits + per-dimension mask reuses served by state created in an
    /// earlier epoch — how much of this epoch's work previous epochs (e.g.
    /// the degradation check before a re-learn) already paid for.
    pub fn cross_epoch_hits(&self) -> usize {
        self.cross_epoch_memo_hits + self.cache.cross_epoch_reuses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// Table where dim 0 is heavily queried & selective, dim 2 never
    /// filtered, dim 1 filtered with wide ranges.
    fn table() -> Table {
        let n = 8_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn workload() -> Vec<RangeQuery> {
        let mut qs = Vec::new();
        for i in 0..12u64 {
            qs.push(
                RangeQuery::all(3)
                    .with_range(0, i * 100, i * 100 + 150) // ~1.5% selective
                    .with_range(1, 0, 8_000), // 80% selective
            );
        }
        qs
    }

    fn fast_cfg() -> OptimizerConfig {
        OptimizerConfig {
            data_sample: 800,
            query_sample: 8,
            gd_steps: 8,
            max_total_cells: 1 << 12,
            ..Default::default()
        }
    }

    #[test]
    fn optimize_returns_valid_layout() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        let l = &result.layout;
        // Dim 2 is never filtered: it must not be indexed.
        assert!(!l.order().contains(&2), "layout {l}");
        assert!(result.predicted_ns > 0.0);
        assert_eq!(result.candidates.len(), 2);
    }

    #[test]
    fn optimizer_prefers_fine_columns_on_selective_dim() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        let l = &result.layout;
        // The selective dim-0 should either be the sort dim or get real
        // partitioning; the barely-selective dim-1 shouldn't dominate.
        if let Some(pos) = l.grid_dims().iter().position(|&d| d == 0) {
            assert!(
                l.col_count(pos) >= 2,
                "selective dim should be partitioned: {l}"
            );
        } else {
            assert_eq!(l.sort_dim(), 0);
        }
    }

    #[test]
    fn optimize_memoizes_repeated_column_vectors() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        assert!(result.cost_evals > 0);
        assert!(
            result.cache_hits > 0,
            "descent revisits rounded column vectors; evals {} hits {}",
            result.cost_evals,
            result.cache_hits
        );
        assert!(result.cache_hits < result.cost_evals);
    }

    #[test]
    fn evaluator_matches_predict_cost() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let t = table();
        let w = workload();
        let mut eval = opt.evaluator(&t, &w);
        for layout in [
            Layout::new(vec![0, 1], vec![32]),
            Layout::new(vec![1, 0], vec![8]),
            Layout::sort_only(0),
        ] {
            let a = eval.predict(&layout);
            let b = opt.predict_cost(&t, &w, &layout);
            assert!((a - b).abs() < 1e-9, "evaluator {a} vs predict_cost {b}");
        }
    }

    /// The cache diagnostics against a known probe sequence: a fresh layout
    /// counts its filtered (query, dimension) pairs, a changed column count
    /// re-counts exactly the moved dimension, and a repeat layout hits the
    /// memo and touches nothing. All 12 workload queries filter both dims,
    /// so each mask unit appears 12 times.
    #[test]
    fn evaluator_diagnostics_follow_known_probe_sequence() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let t = table();
        let w = workload();
        let mut eval = opt.evaluator(&t, &w);

        // Probe 1: grid dim 0 @ 8 columns, sort dim 1 — both fresh for
        // every query.
        eval.predict(&Layout::new(vec![0, 1], vec![8]));
        assert_eq!((eval.cost_evals(), eval.cache_hits()), (1, 0));
        assert_eq!((eval.dim_recounts(), eval.dim_reuses()), (24, 0));

        // Probe 2: dim 0 moves to 16 columns — only it is re-counted; the
        // sort masks are reused.
        eval.predict(&Layout::new(vec![0, 1], vec![16]));
        assert_eq!((eval.cost_evals(), eval.cache_hits()), (2, 0));
        assert_eq!((eval.dim_recounts(), eval.dim_reuses()), (36, 12));

        // Probe 3: the first layout again — answered from the memo, no
        // per-dimension work at all.
        eval.predict(&Layout::new(vec![0, 1], vec![8]));
        assert_eq!((eval.cost_evals(), eval.cache_hits()), (3, 1));
        assert_eq!((eval.dim_recounts(), eval.dim_reuses()), (36, 12));

        // Probe 4: same column counts under a swapped order — a memo miss
        // with two fresh mask units per query: dim 1 as a grid dim @ 8,
        // dim 0 as the sort dimension.
        eval.predict(&Layout::new(vec![1, 0], vec![8]));
        assert_eq!((eval.cost_evals(), eval.cache_hits()), (4, 1));
        assert_eq!((eval.dim_recounts(), eval.dim_reuses()), (60, 12));
    }

    /// `incremental: false` takes the from-scratch scan path and must agree
    /// with the default bit for bit — same layout, same predicted cost.
    #[test]
    fn full_recompute_mode_matches_incremental() {
        let t = table();
        let w = workload();
        let inc = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg())
            .optimize(&t, &w);
        let full_cfg = OptimizerConfig {
            incremental: false,
            ..fast_cfg()
        };
        let full =
            LayoutOptimizer::with_config(CostModel::analytic_default(), full_cfg).optimize(&t, &w);
        assert_eq!(inc.layout, full.layout);
        assert_eq!(inc.predicted_ns.to_bits(), full.predicted_ns.to_bits());
        assert_eq!(inc.cost_evals, full.cost_evals);
        assert_eq!(inc.cache_hits, full.cache_hits);
        assert_eq!(full.dim_recounts, 0, "full mode never builds masks");
        // With only one grid dimension per candidate every memo miss moves
        // it, so reuse mostly comes from sort entries here; the
        // reuse-dominates regime at 4+ dims is measured by `repro optcost`.
        assert!(
            inc.dim_reuses > 0,
            "probes should reuse cached dimensions: {} recounts vs {} reuses",
            inc.dim_recounts,
            inc.dim_reuses
        );
    }

    #[test]
    fn predict_cost_orders_layouts_sensibly() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let t = table();
        let w = workload();
        // A grid on the selective dim 0 beats a grid on the unfiltered dim 2.
        let good = Layout::new(vec![0, 1], vec![32]);
        let bad = Layout::new(vec![2, 1], vec![32]);
        let cg = opt.predict_cost(&t, &w, &good);
        let cb = opt.predict_cost(&t, &w, &bad);
        assert!(
            cg < cb,
            "grid on selective dim should be cheaper: {cg} vs {cb}"
        );
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_workload_panics() {
        let opt = LayoutOptimizer::new(CostModel::analytic_default());
        let _ = opt.optimize(&table(), &[]);
    }
}
