//! Layout optimization (§4.2, Algorithm 1) — the component behind Fig 11's
//! "+Learning" step and the learning-time curves of Figs 15/16.
//!
//! ```text
//! FindOptimalLayout(D, Q, T):
//!   D̂, Q̂ ← Sample(D), Sample(Q)
//!   D̂, Q̂ ← Flatten(D̂, Q̂)            # per-dim RMIs trained on the sample
//!   dims  ← order by avg selectivity
//!   for i in 0..d:
//!     O ← grid dims in selectivity order, dims[i] as sort dimension
//!     C, cost ← GradientDescent(T, O, D̂, Q̂)
//!     keep the cheapest (O, C)
//! ```
//!
//! Optimization never builds an index, sorts data, or runs a query: `N_c` is
//! computed exactly from the query rectangle and layout parameters, and
//! `N_s` and the weight-model features are estimated from the flattened data
//! sample.
//!
//! Performance: the data sample is flattened **once** per search (one
//! [`SampleSpace`] shared by every sort-dimension candidate), and cost
//! evaluations are memoized per candidate — the finite-difference probes of
//! [`descend`] repeatedly revisit the same rounded column vectors, so the
//! sample scan that dominates [`SampleSpace::query_stats`] runs only once
//! per distinct layout ([`OptimizedLayout::cost_evals`] /
//! [`OptimizedLayout::cache_hits`] report the effect). Callers that score
//! many explicit layouts against one workload (Fig 14's cost surface) should
//! hold a [`CostEvaluator`] instead of calling
//! [`LayoutOptimizer::predict_cost`] in a loop, which re-flattens each call.
//!
//! Paper map: §4.2/Algorithm 1 → [`LayoutOptimizer::optimize`]; §4.2 step 3
//! (gradient descent over column counts) → [`gradient`]; §7.7 sampling
//! sensitivity (Figs 15/16) → [`OptimizerConfig::data_sample`] and
//! [`OptimizerConfig::query_sample`].

pub mod gradient;
pub mod sample;

pub use gradient::{descend, GdConfig};
pub use sample::SampleSpace;

use crate::cost::CostModel;
use crate::layout::Layout;
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for [`LayoutOptimizer`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Maximum data-sample size (Fig 15: 0.01–1 % suffices).
    pub data_sample: usize,
    /// Maximum query-sample size (Fig 16: ~5 % suffices).
    pub query_sample: usize,
    /// Gradient-descent steps per sort-dimension candidate.
    pub gd_steps: usize,
    /// Per-dimension column cap, as log₂ (10 → 1024 columns).
    pub max_col_log2: f64,
    /// Cap on the total cell count of candidate layouts.
    pub max_total_cells: usize,
    /// Target average points per cell for the descent's starting layout.
    pub init_points_per_cell: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            data_sample: 10_000,
            query_sample: 100,
            gd_steps: 20,
            max_col_log2: 10.0,
            max_total_cells: 1 << 20,
            init_points_per_cell: 1_024,
            seed: 0x0F700D,
        }
    }
}

/// The result of a layout search.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    /// The winning layout.
    pub layout: Layout,
    /// Its predicted average query time (ns).
    pub predicted_ns: f64,
    /// Wall-clock learning time.
    pub learn_time: std::time::Duration,
    /// Predicted cost of each sort-dimension candidate `(dim, ns)` —
    /// diagnostics for the harness.
    pub candidates: Vec<(usize, f64)>,
    /// Cost-model evaluations requested by the search (memoized + fresh).
    pub cost_evals: usize,
    /// Evaluations answered from the per-candidate memo cache instead of
    /// re-scanning the flattened sample.
    pub cache_hits: usize,
}

/// Searches the layout space for the cheapest layout under a cost model.
#[derive(Debug, Clone)]
pub struct LayoutOptimizer {
    cost: CostModel,
    cfg: OptimizerConfig,
}

impl LayoutOptimizer {
    /// Optimizer with default configuration.
    pub fn new(cost: CostModel) -> Self {
        LayoutOptimizer {
            cost,
            cfg: OptimizerConfig::default(),
        }
    }

    /// Optimizer with explicit configuration.
    pub fn with_config(cost: CostModel, cfg: OptimizerConfig) -> Self {
        LayoutOptimizer { cost, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Find the cheapest layout for `workload` over `table` (Algorithm 1).
    ///
    /// # Panics
    /// Panics if the workload is empty or the table has no rows.
    pub fn optimize(&self, table: &Table, workload: &[RangeQuery]) -> OptimizedLayout {
        assert!(
            !workload.is_empty(),
            "cannot optimize for an empty workload"
        );
        assert!(!table.is_empty(), "cannot optimize over an empty table");
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Sample queries, then build the flattened data sample.
        let mut queries: Vec<RangeQuery> = workload.to_vec();
        queries.shuffle(&mut rng);
        queries.truncate(self.cfg.query_sample.max(1));
        let space = SampleSpace::build(table, &queries, self.cfg.data_sample, &mut rng);

        // Candidate dimensions: everything the sampled workload filters,
        // most selective first. Never-filtered dimensions are left out of
        // the index entirely (§7.5: Flood "chooses not to include the least
        // frequently filtered dimensions").
        let mut candidates = space.dims_by_selectivity();
        if candidates.is_empty() {
            candidates = (0..table.dims()).collect();
        }

        let gd_cfg = GdConfig {
            steps: self.cfg.gd_steps,
            max_col_log2: self.cfg.max_col_log2,
            max_total_cells: self.cfg.max_total_cells,
            ..Default::default()
        };
        // Starting point: equal log-split of a cell budget of
        // n / init_points_per_cell.
        let target_cells = (table.len() / self.cfg.init_points_per_cell.max(1))
            .clamp(4, self.cfg.max_total_cells) as f64;

        let mut best: Option<(Layout, f64)> = None;
        let mut diagnostics = Vec::new();
        let mut cost_evals = 0usize;
        let mut cache_hits = 0usize;
        for (i, &sort_dim) in candidates.iter().enumerate() {
            // Grid dims: the other candidates, in selectivity order.
            let order: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &d)| d)
                .chain(std::iter::once(sort_dim))
                .collect();
            let k = order.len() - 1;
            let (cols, cost) = if k == 0 {
                cost_evals += 1;
                let cost = self.cost.predict_workload(&space.query_stats(&order, &[]));
                (Vec::new(), cost)
            } else {
                let init = vec![target_cells.log2() / k as f64; k];
                // Memoize per column vector: the descent's finite-difference
                // probes mostly round back onto already-scored layouts, and
                // each fresh evaluation costs a full sample scan.
                let mut memo: HashMap<Vec<usize>, f64> = HashMap::new();
                descend(&init, &gd_cfg, |cols| {
                    cost_evals += 1;
                    if let Some(&c) = memo.get(cols) {
                        cache_hits += 1;
                        return c;
                    }
                    let c = self.cost.predict_workload(&space.query_stats(&order, cols));
                    memo.insert(cols.to_vec(), c);
                    c
                })
            };
            diagnostics.push((sort_dim, cost));
            let layout = Layout::new(order, cols);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((layout, cost));
            }
        }
        let (layout, predicted_ns) = best.expect("at least one candidate");
        OptimizedLayout {
            layout,
            predicted_ns,
            learn_time: start.elapsed(),
            candidates: diagnostics,
            cost_evals,
            cache_hits,
        }
    }

    /// Predict the average query time of an explicit layout on this
    /// table/workload (Fig 14's cost surface).
    ///
    /// Builds a fresh [`SampleSpace`] per call; to score many layouts
    /// against one workload, use [`LayoutOptimizer::evaluator`].
    pub fn predict_cost(&self, table: &Table, workload: &[RangeQuery], layout: &Layout) -> f64 {
        self.evaluator(table, workload).predict(layout)
    }

    /// Build the flattened sample once and return an evaluator that can
    /// score any number of layouts against it without re-sampling or
    /// re-flattening.
    pub fn evaluator(&self, table: &Table, workload: &[RangeQuery]) -> CostEvaluator {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let space = SampleSpace::build(table, workload, self.cfg.data_sample, &mut rng);
        CostEvaluator {
            space,
            cost: self.cost.clone(),
        }
    }
}

/// Scores explicit layouts against one flattened sample (built once).
///
/// The expensive parts of cost prediction — sampling the table, training
/// per-dimension CDFs, flattening — depend only on the data and workload,
/// so sweeps over many candidate layouts (Fig 14) amortize them here.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    space: SampleSpace,
    cost: CostModel,
}

impl CostEvaluator {
    /// Predicted average query time (ns) of `layout` on the sampled
    /// workload.
    pub fn predict(&self, layout: &Layout) -> f64 {
        self.cost
            .predict_workload(&self.space.query_stats(layout.order(), layout.cols()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// Table where dim 0 is heavily queried & selective, dim 2 never
    /// filtered, dim 1 filtered with wide ranges.
    fn table() -> Table {
        let n = 8_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn workload() -> Vec<RangeQuery> {
        let mut qs = Vec::new();
        for i in 0..12u64 {
            qs.push(
                RangeQuery::all(3)
                    .with_range(0, i * 100, i * 100 + 150) // ~1.5% selective
                    .with_range(1, 0, 8_000), // 80% selective
            );
        }
        qs
    }

    fn fast_cfg() -> OptimizerConfig {
        OptimizerConfig {
            data_sample: 800,
            query_sample: 8,
            gd_steps: 8,
            max_total_cells: 1 << 12,
            ..Default::default()
        }
    }

    #[test]
    fn optimize_returns_valid_layout() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        let l = &result.layout;
        // Dim 2 is never filtered: it must not be indexed.
        assert!(!l.order().contains(&2), "layout {l}");
        assert!(result.predicted_ns > 0.0);
        assert_eq!(result.candidates.len(), 2);
    }

    #[test]
    fn optimizer_prefers_fine_columns_on_selective_dim() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        let l = &result.layout;
        // The selective dim-0 should either be the sort dim or get real
        // partitioning; the barely-selective dim-1 shouldn't dominate.
        if let Some(pos) = l.grid_dims().iter().position(|&d| d == 0) {
            assert!(
                l.col_count(pos) >= 2,
                "selective dim should be partitioned: {l}"
            );
        } else {
            assert_eq!(l.sort_dim(), 0);
        }
    }

    #[test]
    fn optimize_memoizes_repeated_column_vectors() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let result = opt.optimize(&table(), &workload());
        assert!(result.cost_evals > 0);
        assert!(
            result.cache_hits > 0,
            "descent revisits rounded column vectors; evals {} hits {}",
            result.cost_evals,
            result.cache_hits
        );
        assert!(result.cache_hits < result.cost_evals);
    }

    #[test]
    fn evaluator_matches_predict_cost() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let t = table();
        let w = workload();
        let eval = opt.evaluator(&t, &w);
        for layout in [
            Layout::new(vec![0, 1], vec![32]),
            Layout::new(vec![1, 0], vec![8]),
            Layout::sort_only(0),
        ] {
            let a = eval.predict(&layout);
            let b = opt.predict_cost(&t, &w, &layout);
            assert!((a - b).abs() < 1e-9, "evaluator {a} vs predict_cost {b}");
        }
    }

    #[test]
    fn predict_cost_orders_layouts_sensibly() {
        let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), fast_cfg());
        let t = table();
        let w = workload();
        // A grid on the selective dim 0 beats a grid on the unfiltered dim 2.
        let good = Layout::new(vec![0, 1], vec![32]);
        let bad = Layout::new(vec![2, 1], vec![32]);
        let cg = opt.predict_cost(&t, &w, &good);
        let cb = opt.predict_cost(&t, &w, &bad);
        assert!(
            cg < cb,
            "grid on selective dim should be cheaper: {cg} vs {cb}"
        );
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_workload_panics() {
        let opt = LayoutOptimizer::new(CostModel::analytic_default());
        let _ = opt.optimize(&table(), &[]);
    }
}
