//! The flattened sample space: the optimizer's stand-in for the full dataset.
//!
//! Algorithm 1 flattens a data sample and the query sample with per-dimension
//! RMIs, then evaluates every candidate layout against them: `N_c` exactly
//! from the (flattened) query rectangle and the column counts, `N_s` and the
//! weight-model features by counting sample points. Because flattening makes
//! every marginal uniform, a dimension with `c` columns splits at
//! `i/c` for `i = 1..c` in flattened space.

use crate::cost::features::QueryStatistics;
use flood_learned::cdf::CdfModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;

/// A flattened query: per-dimension bounds in `[0, 1]` flat space.
#[derive(Debug, Clone)]
pub struct FlatQuery {
    /// `bounds[d] = Some((cdf(lo), cdf(hi)))` when dimension `d` is filtered.
    pub bounds: Vec<Option<(f32, f32)>>,
    /// Number of filtered dimensions.
    pub dims_filtered: usize,
}

/// The flattened data + query sample used for cost evaluation.
#[derive(Debug, Clone)]
pub struct SampleSpace {
    /// Row-major flattened sample values: `flat[p * dims + d]`.
    flat: Vec<f32>,
    n_points: usize,
    n_dims: usize,
    /// Scale factor from sample counts to full-dataset counts.
    scale: f64,
    full_n: usize,
    queries: Vec<FlatQuery>,
    /// Average flattened query width per dimension (selectivity), `None`
    /// for dimensions never filtered.
    avg_selectivity: Vec<Option<f64>>,
}

impl SampleSpace {
    /// Sample up to `max_sample` rows of `table`, train per-dimension RMIs
    /// on the sample, and flatten both the sample and the `queries`.
    pub fn build(
        table: &Table,
        queries: &[RangeQuery],
        max_sample: usize,
        rng: &mut StdRng,
    ) -> Self {
        let full_n = table.len();
        let n_dims = table.dims();
        let take = max_sample.clamp(1, full_n.max(1));
        let rows: Vec<usize> = if take >= full_n {
            (0..full_n).collect()
        } else {
            index_sample(rng, full_n, take).into_vec()
        };
        let n_points = rows.len();

        // Per-dimension CDFs trained on the sample (Algorithm 1 line 6-8).
        let mut cdfs = Vec::with_capacity(n_dims);
        for d in 0..n_dims {
            let mut vals: Vec<u64> = rows.iter().map(|&r| table.value(r, d)).collect();
            vals.sort_unstable();
            cdfs.push(Rmi::build(&vals, RmiConfig::default()));
        }

        // Flatten the sample, row-major.
        let mut flat = Vec::with_capacity(n_points * n_dims);
        for &r in &rows {
            for (d, cdf) in cdfs.iter().enumerate() {
                flat.push(cdf.cdf(table.value(r, d)) as f32);
            }
        }

        // Flatten the queries and record selectivities.
        let mut sel_sum = vec![0.0f64; n_dims];
        let mut sel_cnt = vec![0usize; n_dims];
        let flat_queries: Vec<FlatQuery> = queries
            .iter()
            .map(|q| {
                let mut bounds = Vec::with_capacity(n_dims);
                for d in 0..n_dims {
                    match q.bound(d) {
                        Some((lo, hi)) => {
                            let flo = cdfs[d].cdf(lo) as f32;
                            let fhi = cdfs[d].cdf(hi) as f32;
                            sel_sum[d] += (fhi - flo) as f64;
                            sel_cnt[d] += 1;
                            bounds.push(Some((flo, fhi)));
                        }
                        None => bounds.push(None),
                    }
                }
                FlatQuery {
                    dims_filtered: q.num_filtered(),
                    bounds,
                }
            })
            .collect();
        let avg_selectivity = (0..n_dims)
            .map(|d| {
                if sel_cnt[d] == 0 {
                    None
                } else {
                    Some(sel_sum[d] / sel_cnt[d] as f64)
                }
            })
            .collect();

        SampleSpace {
            flat,
            n_points,
            n_dims,
            scale: full_n as f64 / n_points.max(1) as f64,
            full_n,
            queries: flat_queries,
            avg_selectivity,
        }
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Dimensions filtered by at least one sampled query, most selective
    /// (smallest average flattened width) first — Algorithm 1's `dims`.
    pub fn dims_by_selectivity(&self) -> Vec<usize> {
        let mut dims: Vec<(usize, f64)> = self
            .avg_selectivity
            .iter()
            .enumerate()
            .filter_map(|(d, s)| s.map(|s| (d, s)))
            .collect();
        dims.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("selectivities are finite"));
        dims.into_iter().map(|(d, _)| d).collect()
    }

    /// Average selectivity (flattened width) of `dim`, if ever filtered.
    pub fn selectivity(&self, dim: usize) -> Option<f64> {
        self.avg_selectivity[dim]
    }

    /// Estimate the per-query statistics of layout `(order, cols)` — the
    /// cost-model inputs, without building anything (§4.2 step 3).
    ///
    /// `order` lists indexed dims (sort last), `cols` the grid column
    /// counts (`order.len() - 1` entries).
    pub fn query_stats(&self, order: &[usize], cols: &[usize]) -> Vec<QueryStatistics> {
        assert_eq!(cols.len() + 1, order.len());
        let grid_dims = &order[..order.len() - 1];
        let sort_dim = *order.last().expect("non-empty order");
        let total_cells: f64 = cols.iter().map(|&c| c as f64).product::<f64>().max(1.0);
        let avg_cell = self.full_n as f64 / total_cells;

        let mut out = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            // Projection: exact column ranges per grid dim.
            let mut nc = 1.0f64;
            let mut ranges: Vec<(u32, u32, bool)> = Vec::with_capacity(grid_dims.len());
            for (&d, &c) in grid_dims.iter().zip(cols) {
                match q.bounds[d] {
                    Some((lo, hi)) => {
                        let lo_col = ((lo as f64 * c as f64) as u32).min(c as u32 - 1);
                        let hi_col = ((hi as f64 * c as f64) as u32).min(c as u32 - 1);
                        nc *= (hi_col - lo_col + 1) as f64;
                        ranges.push((lo_col, hi_col, true));
                    }
                    None => {
                        // The query rectangle spans the whole dimension:
                        // every column contributes to N_c.
                        nc *= c as f64;
                        ranges.push((0, c as u32 - 1, false));
                    }
                }
            }
            let sort_bound = q.bounds[sort_dim];
            // Any filter on an unindexed dimension forces per-point checks,
            // so no sub-range can be exact.
            let has_unindexed_filter =
                (0..self.n_dims).any(|d| q.bounds[d].is_some() && !order.contains(&d));

            // Scan estimate from the sample.
            let mut ns_sample = 0usize;
            let mut exact_sample = 0usize;
            'points: for p in 0..self.n_points {
                let row = &self.flat[p * self.n_dims..(p + 1) * self.n_dims];
                let mut interior = !has_unindexed_filter;
                for ((&d, &c), &(lo_col, hi_col, filtered)) in
                    grid_dims.iter().zip(cols).zip(&ranges)
                {
                    let col = ((row[d] as f64 * c as f64) as u32).min(c as u32 - 1);
                    if col < lo_col || col > hi_col {
                        continue 'points;
                    }
                    if filtered && (col == lo_col || col == hi_col) {
                        interior = false;
                    }
                }
                if let Some((lo, hi)) = sort_bound {
                    let v = row[sort_dim];
                    if v < lo || v > hi {
                        continue 'points;
                    }
                }
                ns_sample += 1;
                if interior {
                    exact_sample += 1;
                }
            }
            let ns = ns_sample as f64 * self.scale;
            let exact = exact_sample as f64 * self.scale;
            out.push(QueryStatistics {
                nc,
                ns,
                total_cells,
                avg_cell_size: avg_cell,
                // Flattening keeps cells near-uniform; estimate the median
                // at the mean and the tail at twice it (measured values are
                // used during calibration, estimates only during search).
                median_cell_size: avg_cell,
                p95_cell_size: avg_cell * 2.0,
                dims_filtered: q.dims_filtered as f64,
                avg_visited_per_cell: ns / nc.max(1.0),
                exact_points: exact,
                sort_filtered: sort_bound.is_some(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        let n = 4_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| i % 1_000).collect(),
            (0..n).map(|i| (i * i) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn space(queries: &[RangeQuery], sample: usize) -> SampleSpace {
        let mut rng = StdRng::seed_from_u64(3);
        SampleSpace::build(&table(), queries, sample, &mut rng)
    }

    #[test]
    fn selectivity_ordering() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 9)
                .with_range(1, 0, 9_000),
            RangeQuery::all(3)
                .with_range(0, 10, 29)
                .with_range(1, 0, 8_000),
        ];
        let s = space(&qs, 2_000);
        // Dim 0 is ~1-3% selective, dim 1 ~80-90%; dim 2 never filtered.
        assert_eq!(s.dims_by_selectivity(), vec![0, 1]);
        assert!(s.selectivity(2).is_none());
        assert!(s.selectivity(0).expect("filtered") < s.selectivity(1).expect("filtered"));
    }

    #[test]
    fn ns_estimate_tracks_truth() {
        // Query selecting ~10% of dim 0 with full sample (scale = 1).
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        let s = space(&qs, usize::MAX);
        // Layout: grid on dim 0 with 10 columns, sort dim 2.
        let stats = s.query_stats(&[0, 2], &[10]);
        assert_eq!(stats.len(), 1);
        let st = &stats[0];
        // True matching fraction is 10%; the scanned estimate covers whole
        // boundary columns so it is ≥ the true count but ≤ ~3 columns.
        let truth = 400.0; // 4000 rows * 10%
        assert!(st.ns >= truth * 0.8, "ns {}", st.ns);
        assert!(st.ns <= truth * 3.5, "ns {}", st.ns);
        assert!(st.nc >= 1.0 && st.nc <= 3.0, "nc {}", st.nc);
        assert!(!st.sort_filtered);
    }

    #[test]
    fn finer_grids_scan_fewer_points() {
        let qs = vec![RangeQuery::all(3).with_range(1, 0, 400)];
        let s = space(&qs, usize::MAX);
        let coarse = &s.query_stats(&[1, 2], &[2])[0];
        let fine = &s.query_stats(&[1, 2], &[64])[0];
        assert!(
            fine.ns <= coarse.ns,
            "finer grid must not scan more: {} vs {}",
            fine.ns,
            coarse.ns
        );
        assert!(fine.nc >= coarse.nc);
    }

    #[test]
    fn sort_filter_reduces_ns_via_refinement() {
        let qs = vec![RangeQuery::all(3)
            .with_range(0, 0, 499)
            .with_range(2, 0, 399)];
        let s = space(&qs, usize::MAX);
        // Sort dim = 2 → refinement prunes to ~10% of dim 2.
        let with_sort = &s.query_stats(&[0, 2], &[4])[0];
        // Sort dim = 1 (unfiltered sort) → dim 2 filter is unindexed → all
        // points in matching columns scanned.
        let without = &s.query_stats(&[0, 1], &[4])[0];
        assert!(
            with_sort.ns < without.ns,
            "refinement should prune: {} vs {}",
            with_sort.ns,
            without.ns
        );
        assert!(with_sort.sort_filtered);
        assert!(!without.sort_filtered);
        // The unindexed dim-2 filter kills exactness in the second layout.
        assert_eq!(without.exact_points, 0.0);
    }

    #[test]
    fn scale_extrapolates_sample_counts() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 999)];
        let full = space(&qs, usize::MAX);
        let sampled = space(&qs, 500);
        let a = &full.query_stats(&[0, 2], &[1])[0];
        let b = &sampled.query_stats(&[0, 2], &[1])[0];
        // Everything matches in both; scaled counts should agree.
        assert_eq!(a.ns, 4_000.0);
        assert!((b.ns - 4_000.0).abs() < 1e-6, "scaled ns {}", b.ns);
    }
}
