//! The flattened sample space: the optimizer's stand-in for the full dataset.
//!
//! Algorithm 1 flattens a data sample and the query sample with per-dimension
//! RMIs, then evaluates every candidate layout against them: `N_c` exactly
//! from the (flattened) query rectangle and the column counts, `N_s` and the
//! weight-model features by counting sample points. Because flattening makes
//! every marginal uniform, a dimension with `c` columns splits at
//! `i/c` for `i = 1..c` in flattened space.
//!
//! ## Two layers: data sample vs query layer
//!
//! The expensive half of a [`SampleSpace`] — sampling rows, training one RMI
//! per dimension, flattening the sample twice (row- and column-major) —
//! depends only on the *data*. The cheap half — flattening the queries and
//! computing per-dimension selectivities — depends on the *query set*.
//! [`DataSample`] holds the first and is shareable (behind an `Arc`) across
//! any number of query sets over the same table;
//! [`SampleSpace::over`] attaches a query layer without touching the data.
//! `AdaptiveFlood` exploits this across re-learns: the data multiset of a
//! clustered index never changes, so one [`DataSample`] serves every
//! observation window, keyed by [`SampleSpace::query_fingerprint`].
//!
//! ## Incremental per-dimension statistics
//!
//! A layout's statistics are a *conjunction* of independent per-dimension
//! facts about each sample point: which column it lands in under `c`
//! columns of grid dimension `d` (inside the query's column range? on a
//! boundary column?), and whether it passes the sort-dimension filter.
//! [`SampleSpace::query_stats`] recomputes all of them with one scan per
//! call; [`SampleSpace::query_stats_cached`] instead caches each filtered
//! query-dimension's contribution as bitsets keyed on
//! `(query fingerprint, dim, column_count)` in a [`StatsCache`], so a
//! gradient-descent probe that moves one dimension's column count
//! re-counts **only that dimension** (the dirty set) and re-derives
//! `N_s`/`N_c`/the exact-point count by AND-ing cached masks — a
//! word-parallel operation 64× narrower than the point scan. Keying by the
//! *query's own* fingerprint (not its position in some window) makes the
//! cache valid across query sets over the same data sample: sliding
//! observation windows share most of their queries, so an `AdaptiveFlood`
//! re-learn finds the masks its earlier checks and re-learns already
//! built. The two paths are bit-identical by construction: identical
//! column arithmetic, identical multiplication order for `N_c`, and one
//! shared [`QueryStatistics::estimated`] constructor (pinned by
//! `tests/prop_incremental.rs` over arbitrary probe sequences).
//!
//! Cache entries additionally remember the [`StatsCache::epoch`] they were
//! created in; reuses of entries born in an earlier epoch are counted
//! separately ([`StatsCache::cross_epoch_reuses`]), which is how
//! `AdaptiveFlood` attributes re-learn cache hits to work done by earlier
//! degradation checks.
//!
//! ## Correlation rewrite (Tsunami/COAX extension, beyond the Flood paper)
//!
//! [`DataSample::build`] also runs soft-FD detection over the sampled rows
//! ([`CorrelationModel`], behind [`CorrelationConfig::enabled`]). The
//! query layer then rewrites every filter on a *collapse-grade dependent*
//! into the equivalent host-dimension range before flattening, so the
//! statistics price each candidate layout under the same predicate routing
//! the built index will actually perform. Detection here only has to steer
//! the search — exactness at query time comes from the index's own
//! full-table envelopes, never from this sample.

use crate::correlation::{CorrelationConfig, CorrelationModel};
use crate::cost::features::QueryStatistics;
use flood_learned::cdf::CdfModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use std::collections::HashMap;
use std::sync::Arc;

/// A flattened query: per-dimension bounds in `[0, 1]` flat space.
#[derive(Debug, Clone)]
pub struct FlatQuery {
    /// `bounds[d] = Some((cdf(lo), cdf(hi)))` when dimension `d` is filtered.
    pub bounds: Vec<Option<(f32, f32)>>,
    /// Number of filtered dimensions.
    pub dims_filtered: usize,
}

/// The query-independent half of a [`SampleSpace`]: sampled rows flattened
/// through per-dimension RMIs. Building one costs a table sample, `dims`
/// RMI trainings, and two copies of the flattened sample — everything a
/// re-learn on the same table can skip by sharing it via `Arc`.
#[derive(Debug)]
pub struct DataSample {
    /// Row-major flattened sample values: `flat[p * dims + d]`.
    flat: Vec<f32>,
    /// Column-major copy: `flat_by_dim[d * n_points + p]`. Mask building in
    /// the incremental path walks one dimension over every point; the
    /// transposed layout keeps that walk sequential.
    flat_by_dim: Vec<f32>,
    n_points: usize,
    n_dims: usize,
    /// Scale factor from sample counts to full-dataset counts.
    scale: f64,
    full_n: usize,
    /// The per-dimension CDFs the sample was flattened through; kept so new
    /// query sets can be flattened against the *same* space later.
    cdfs: Vec<Rmi>,
    /// Process-unique identity stamped at build time; a [`StatsCache`]
    /// carries its creator's id so cross-space reuse panics instead of
    /// silently producing wrong statistics (sample sizes can collide,
    /// identities cannot).
    space_id: u64,
    /// Soft FDs detected on the sampled rows (Tsunami/COAX extension).
    /// Query layers built over this sample rewrite collapsed-dependent
    /// filters through it; empty when correlation is disabled.
    correlation: CorrelationModel,
}

/// Source of [`DataSample::space_id`] values.
static NEXT_SPACE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DataSample {
    /// Sample up to `max_sample` rows of `table`, train per-dimension RMIs
    /// on the sample, and flatten it (Algorithm 1 lines 6–8, data side).
    /// Soft-FD detection (`ccfg`) runs on the same sampled rows, after the
    /// RNG has been consumed, so correlation on/off never changes the
    /// sampling stream.
    pub fn build(
        table: &Table,
        max_sample: usize,
        rng: &mut StdRng,
        ccfg: &CorrelationConfig,
    ) -> Self {
        let full_n = table.len();
        let n_dims = table.dims();
        let take = max_sample.clamp(1, full_n.max(1));
        let rows: Vec<usize> = if take >= full_n {
            (0..full_n).collect()
        } else {
            index_sample(rng, full_n, take).into_vec()
        };
        let n_points = rows.len();
        let correlation = CorrelationModel::detect_rows(table, &rows, ccfg);

        // Per-dimension CDFs trained on the sample.
        let mut cdfs = Vec::with_capacity(n_dims);
        for d in 0..n_dims {
            let mut vals: Vec<u64> = rows.iter().map(|&r| table.value(r, d)).collect();
            vals.sort_unstable();
            cdfs.push(Rmi::build(&vals, RmiConfig::default()));
        }

        // Flatten the sample, row-major, plus a column-major transpose for
        // the incremental path's per-dimension mask builds.
        let mut flat = Vec::with_capacity(n_points * n_dims);
        for &r in &rows {
            for (d, cdf) in cdfs.iter().enumerate() {
                flat.push(cdf.cdf(table.value(r, d)) as f32);
            }
        }
        let mut flat_by_dim = vec![0.0f32; n_points * n_dims];
        for p in 0..n_points {
            for d in 0..n_dims {
                flat_by_dim[d * n_points + p] = flat[p * n_dims + d];
            }
        }

        DataSample {
            flat,
            flat_by_dim,
            n_points,
            n_dims,
            scale: full_n as f64 / n_points.max(1) as f64,
            full_n,
            cdfs,
            space_id: NEXT_SPACE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            correlation,
        }
    }

    /// The soft FDs detected on this sample (empty when disabled).
    pub fn correlation(&self) -> &CorrelationModel {
        &self.correlation
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Rows in the full table the sample stands in for.
    pub fn full_len(&self) -> usize {
        self.full_n
    }

    /// Dimensions per row.
    pub fn dims(&self) -> usize {
        self.n_dims
    }
}

/// The flattened data + query sample used for cost evaluation: a shared
/// [`DataSample`] plus one flattened query set.
#[derive(Debug, Clone)]
pub struct SampleSpace {
    data: Arc<DataSample>,
    queries: Vec<FlatQuery>,
    /// Per-query fingerprints, aligned with `queries` — the cache keys of
    /// the incremental path.
    qfps: Vec<u64>,
    /// Average flattened query width per dimension (selectivity), `None`
    /// for dimensions never filtered.
    avg_selectivity: Vec<Option<f64>>,
    /// Fingerprint of the raw query set this space was built over (see
    /// [`SampleSpace::query_fingerprint`]).
    query_fp: u64,
}

impl SampleSpace {
    /// Sample up to `max_sample` rows of `table`, train per-dimension RMIs
    /// on the sample, and flatten both the sample and the `queries`.
    pub fn build(
        table: &Table,
        queries: &[RangeQuery],
        max_sample: usize,
        rng: &mut StdRng,
        ccfg: &CorrelationConfig,
    ) -> Self {
        let data = Arc::new(DataSample::build(table, max_sample, rng, ccfg));
        SampleSpace::over(data, queries)
    }

    /// Attach a query layer to an existing (shared) data sample: flatten
    /// `queries` through the sample's CDFs and record selectivities. Costs
    /// no sampling, no RMI training, no data flattening.
    ///
    /// When the sample detected soft FDs, queries are first rewritten
    /// through [`DataSample::correlation`] — a filter on a collapsed
    /// dependent implies a host bound — so predicted costs price the
    /// correlation-tightened projection the built index will actually run.
    /// `query_fp` and the per-query mask-cache keys are both computed on
    /// the *rewritten* queries; rewriting is deterministic per sample, so
    /// repeat windows still collide. With no FDs this is the identity.
    pub fn over(data: Arc<DataSample>, queries: &[RangeQuery]) -> Self {
        let rewritten;
        let queries: &[RangeQuery] = if data.correlation.is_empty() {
            queries
        } else {
            rewritten = data.correlation.rewrite_all(queries);
            &rewritten
        };
        let n_dims = data.n_dims;
        let mut sel_sum = vec![0.0f64; n_dims];
        let mut sel_cnt = vec![0usize; n_dims];
        let flat_queries: Vec<FlatQuery> = queries
            .iter()
            .map(|q| {
                let mut bounds = Vec::with_capacity(n_dims);
                for d in 0..n_dims {
                    match q.bound(d) {
                        Some((lo, hi)) => {
                            let flo = data.cdfs[d].cdf(lo) as f32;
                            let fhi = data.cdfs[d].cdf(hi) as f32;
                            sel_sum[d] += (fhi - flo) as f64;
                            sel_cnt[d] += 1;
                            bounds.push(Some((flo, fhi)));
                        }
                        None => bounds.push(None),
                    }
                }
                FlatQuery {
                    dims_filtered: q.num_filtered(),
                    bounds,
                }
            })
            .collect();
        let avg_selectivity = (0..n_dims)
            .map(|d| {
                if sel_cnt[d] == 0 {
                    None
                } else {
                    Some(sel_sum[d] / sel_cnt[d] as f64)
                }
            })
            .collect();

        let qfps: Vec<u64> = queries.iter().map(fingerprint_query).collect();
        SampleSpace {
            query_fp: SampleSpace::query_fingerprint(queries),
            data,
            queries: flat_queries,
            qfps,
            avg_selectivity,
        }
    }

    /// Order-sensitive fingerprint of a query set: a stable 64-bit hash
    /// combining every query's own fingerprint. Two windows with equal
    /// queries in equal order collide by construction; anything else
    /// collides with probability ~2⁻⁶⁴. The keying `AdaptiveFlood` uses to
    /// recognise a repeat observation window.
    pub fn query_fingerprint(queries: &[RangeQuery]) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_eat(&mut h, queries.len() as u64);
        for q in queries {
            fnv_eat(&mut h, fingerprint_query(q));
        }
        h
    }

    /// The shared data sample.
    pub fn data(&self) -> &Arc<DataSample> {
        &self.data
    }

    /// Fingerprint of the query set this space carries.
    pub fn query_fp(&self) -> u64 {
        self.query_fp
    }

    /// Number of queries in this space's query layer.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Per-query fingerprints, aligned with the query layer.
    pub(crate) fn qfps(&self) -> &[u64] {
        &self.qfps
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.data.n_points
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.data.n_points == 0
    }

    /// Rows in the full table the sample stands in for.
    pub fn full_len(&self) -> usize {
        self.data.full_n
    }

    /// Dimensions per row.
    pub fn dims(&self) -> usize {
        self.data.n_dims
    }

    /// Dimensions filtered by at least one sampled query, most selective
    /// (smallest average flattened width) first — Algorithm 1's `dims`.
    pub fn dims_by_selectivity(&self) -> Vec<usize> {
        let mut dims: Vec<(usize, f64)> = self
            .avg_selectivity
            .iter()
            .enumerate()
            .filter_map(|(d, s)| s.map(|s| (d, s)))
            .collect();
        dims.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("selectivities are finite"));
        dims.into_iter().map(|(d, _)| d).collect()
    }

    /// Average selectivity (flattened width) of `dim`, if ever filtered.
    pub fn selectivity(&self, dim: usize) -> Option<f64> {
        self.avg_selectivity[dim]
    }

    /// Estimate the per-query statistics of layout `(order, cols)` — the
    /// cost-model inputs, without building anything (§4.2 step 3).
    ///
    /// `order` lists indexed dims (sort last), `cols` the grid column
    /// counts (`order.len() - 1` entries).
    pub fn query_stats(&self, order: &[usize], cols: &[usize]) -> Vec<QueryStatistics> {
        assert_eq!(cols.len() + 1, order.len());
        let n_dims = self.data.n_dims;
        let n_points = self.data.n_points;
        let grid_dims = &order[..order.len() - 1];
        let sort_dim = *order.last().expect("non-empty order");
        let total_cells: f64 = cols.iter().map(|&c| c as f64).product::<f64>().max(1.0);
        let avg_cell = self.data.full_n as f64 / total_cells;

        let mut out = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            // Projection: exact column ranges per grid dim.
            let mut nc = 1.0f64;
            let mut ranges: Vec<(u32, u32, bool)> = Vec::with_capacity(grid_dims.len());
            for (&d, &c) in grid_dims.iter().zip(cols) {
                match q.bounds[d] {
                    Some((lo, hi)) => {
                        let lo_col = ((lo as f64 * c as f64) as u32).min(c as u32 - 1);
                        let hi_col = ((hi as f64 * c as f64) as u32).min(c as u32 - 1);
                        nc *= (hi_col - lo_col + 1) as f64;
                        ranges.push((lo_col, hi_col, true));
                    }
                    None => {
                        // The query rectangle spans the whole dimension:
                        // every column contributes to N_c.
                        nc *= c as f64;
                        ranges.push((0, c as u32 - 1, false));
                    }
                }
            }
            let sort_bound = q.bounds[sort_dim];
            // Any filter on an unindexed dimension forces per-point checks,
            // so no sub-range can be exact.
            let has_unindexed_filter =
                (0..n_dims).any(|d| q.bounds[d].is_some() && !order.contains(&d));

            // Scan estimate from the sample.
            let mut ns_sample = 0usize;
            let mut exact_sample = 0usize;
            'points: for p in 0..n_points {
                let row = &self.data.flat[p * n_dims..(p + 1) * n_dims];
                let mut interior = !has_unindexed_filter;
                for ((&d, &c), &(lo_col, hi_col, filtered)) in
                    grid_dims.iter().zip(cols).zip(&ranges)
                {
                    let col = ((row[d] as f64 * c as f64) as u32).min(c as u32 - 1);
                    if col < lo_col || col > hi_col {
                        continue 'points;
                    }
                    if filtered && (col == lo_col || col == hi_col) {
                        interior = false;
                    }
                }
                if let Some((lo, hi)) = sort_bound {
                    let v = row[sort_dim];
                    if v < lo || v > hi {
                        continue 'points;
                    }
                }
                ns_sample += 1;
                if interior {
                    exact_sample += 1;
                }
            }
            let ns = ns_sample as f64 * self.data.scale;
            let exact = exact_sample as f64 * self.data.scale;
            out.push(QueryStatistics::estimated(
                nc,
                ns,
                exact,
                total_cells,
                avg_cell,
                q.dims_filtered as f64,
                sort_bound.is_some(),
            ));
        }
        out
    }

    /// A [`StatsCache`] bound to this sample and query set, for
    /// [`SampleSpace::query_stats_cached`].
    pub fn stats_cache(&self) -> StatsCache {
        StatsCache {
            grid: HashMap::new(),
            sort: HashMap::new(),
            costs: HashMap::new(),
            space_id: self.data.space_id,
            epoch: 0,
            recounts: 0,
            reuses: 0,
            cross_epoch_reuses: 0,
            cost_hits: 0,
            cost_misses: 0,
        }
    }

    /// [`SampleSpace::query_stats`], incrementally: identical output (bit
    /// for bit), but each filtered query-dimension's per-point contribution
    /// is cached in `cache` keyed on `(query fingerprint, dim, cols)`, so
    /// only contributions this probe actually introduced are re-counted —
    /// whether the previous probe differed by one column count, or by a
    /// whole observation window that shares queries with this one.
    ///
    /// # Panics
    /// Panics if `cache` was built over a different [`DataSample`] (the
    /// masks would be meaningless) or if `cols`/`order` lengths disagree.
    pub fn query_stats_cached(
        &self,
        order: &[usize],
        cols: &[usize],
        cache: &mut StatsCache,
    ) -> Vec<QueryStatistics> {
        let all: Vec<usize> = (0..self.queries.len()).collect();
        self.query_stats_cached_for(order, cols, &all, cache)
    }

    /// [`SampleSpace::query_stats_cached`] restricted to the queries at
    /// `subset` (indices into this space's query list), in `subset` order —
    /// the entry point for per-query cost memoization, which only needs
    /// statistics for the queries whose `(query, layout)` cost is not
    /// already known.
    pub fn query_stats_cached_for(
        &self,
        order: &[usize],
        cols: &[usize],
        subset: &[usize],
        cache: &mut StatsCache,
    ) -> Vec<QueryStatistics> {
        assert_eq!(cols.len() + 1, order.len());
        assert!(
            cache.space_id == self.data.space_id,
            "StatsCache built for a different SampleSpace"
        );
        let n_dims = self.data.n_dims;
        let n_points = self.data.n_points;
        let grid_dims = &order[..order.len() - 1];
        let sort_dim = *order.last().expect("non-empty order");
        let total_cells: f64 = cols.iter().map(|&c| c as f64).product::<f64>().max(1.0);
        let avg_cell = self.data.full_n as f64 / total_cells;

        // Dirty-set recomputation: build masks only for the filtered
        // (query, dim, cols) triples this probe introduced; everything else
        // is served from the cache, including entries built for *other*
        // query sets that share queries with this one.
        for &qi in subset {
            let (q, qfp) = (&self.queries[qi], self.qfps[qi]);
            for (&d, &c) in grid_dims.iter().zip(cols) {
                if q.bounds[d].is_none() {
                    continue;
                }
                if let Some(entry) = cache.grid.get_mut(&(qfp, d, c)) {
                    cache.reuses += 1;
                    if entry.created_epoch < cache.epoch {
                        cache.cross_epoch_reuses += 1;
                    }
                    entry.last_used_epoch = cache.epoch;
                } else {
                    cache.recounts += 1;
                    let entry = self.build_query_grid_masks(qi, d, c, cache.epoch);
                    cache.grid.insert((qfp, d, c), entry);
                }
            }
            if q.bounds[sort_dim].is_none() {
                continue;
            }
            if let Some(entry) = cache.sort.get_mut(&(qfp, sort_dim)) {
                cache.reuses += 1;
                if entry.created_epoch < cache.epoch {
                    cache.cross_epoch_reuses += 1;
                }
                entry.last_used_epoch = cache.epoch;
            } else {
                cache.recounts += 1;
                let entry = self.build_query_sort_mask(qi, sort_dim, cache.epoch);
                cache.sort.insert((qfp, sort_dim), entry);
            }
        }

        let words = n_points.div_ceil(WORD_BITS);
        // All-points mask, with trailing bits beyond `n_points` cleared so
        // popcounts equal point counts.
        let mut ones = vec![!0u64; words];
        if let Some(last) = ones.last_mut() {
            let tail = n_points % WORD_BITS;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        let mut acc = vec![0u64; words];
        let mut out = Vec::with_capacity(subset.len());
        for &qi in subset {
            let (q, qfp) = (&self.queries[qi], self.qfps[qi]);
            // N_c: multiply per-dimension column counts in `grid_dims`
            // order — the same f64 multiplication sequence as the full
            // scan, so the product is bit-identical.
            let mut nc = 1.0f64;
            acc.copy_from_slice(&ones);
            for (&d, &c) in grid_dims.iter().zip(cols) {
                match q.bounds[d] {
                    Some(_) => {
                        let masks = &cache.grid[&(qfp, d, c)];
                        nc *= masks.ncols;
                        and(&mut acc, &masks.pass);
                    }
                    // The query rectangle spans the whole dimension: every
                    // column contributes to N_c and every point passes.
                    None => nc *= c as f64,
                }
            }
            if q.bounds[sort_dim].is_some() {
                and(&mut acc, &cache.sort[&(qfp, sort_dim)].pass);
            }
            let ns_sample = popcount(&acc);
            // Any filter on an unindexed dimension forces per-point checks,
            // so no sub-range can be exact.
            let has_unindexed_filter =
                (0..n_dims).any(|d| q.bounds[d].is_some() && !order.contains(&d));
            let exact_sample = if has_unindexed_filter {
                0
            } else {
                for (&d, &c) in grid_dims.iter().zip(cols) {
                    if q.bounds[d].is_some() {
                        and_not(&mut acc, &cache.grid[&(qfp, d, c)].boundary);
                    }
                }
                popcount(&acc)
            };
            let ns = ns_sample as f64 * self.data.scale;
            let exact = exact_sample as f64 * self.data.scale;
            out.push(QueryStatistics::estimated(
                nc,
                ns,
                exact,
                total_cells,
                avg_cell,
                q.dims_filtered as f64,
                q.bounds[sort_dim].is_some(),
            ));
        }
        out
    }

    /// Count one filtered query's grid contribution at one column count:
    /// the per-point pass/boundary bitsets and the query rectangle's column
    /// span. Uses exactly the column arithmetic of the full scan.
    fn build_query_grid_masks(&self, qi: usize, dim: usize, c: usize, epoch: usize) -> GridMasks {
        let n_points = self.data.n_points;
        let words = n_points.div_ceil(WORD_BITS);
        let col_vals = &self.data.flat_by_dim[dim * n_points..(dim + 1) * n_points];
        let (lo, hi) = self.queries[qi].bounds[dim].expect("only filtered dims are cached");
        let lo_col = ((lo as f64 * c as f64) as u32).min(c as u32 - 1);
        let hi_col = ((hi as f64 * c as f64) as u32).min(c as u32 - 1);
        let mut pass = vec![0u64; words];
        let mut boundary = vec![0u64; words];
        for (p, &v) in col_vals.iter().enumerate() {
            let col = ((v as f64 * c as f64) as u32).min(c as u32 - 1);
            if col < lo_col || col > hi_col {
                continue;
            }
            pass[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
            if col == lo_col || col == hi_col {
                boundary[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
            }
        }
        GridMasks {
            ncols: (hi_col - lo_col + 1) as f64,
            pass,
            boundary,
            created_epoch: epoch,
            last_used_epoch: epoch,
        }
    }

    /// Count one filtered query's sort-dimension crossings: which points
    /// pass the query's sort-dimension bound. (Unfiltered sort dimensions
    /// are never cached — refinement never runs and every point passes.)
    fn build_query_sort_mask(&self, qi: usize, dim: usize, epoch: usize) -> SortMask {
        let n_points = self.data.n_points;
        let words = n_points.div_ceil(WORD_BITS);
        let col_vals = &self.data.flat_by_dim[dim * n_points..(dim + 1) * n_points];
        let (lo, hi) = self.queries[qi].bounds[dim].expect("only filtered dims are cached");
        let mut pass = vec![0u64; words];
        for (p, &v) in col_vals.iter().enumerate() {
            if v < lo || v > hi {
                continue;
            }
            pass[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
        }
        SortMask {
            pass,
            created_epoch: epoch,
            last_used_epoch: epoch,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over one little-endian word: stable across runs and toolchains
/// (unlike `DefaultHasher`), cheap, and collision-safe enough for cache
/// keying.
#[inline]
fn fnv_eat(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= byte as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Stable fingerprint of one query's per-dimension bounds — the
/// query-identity half of the [`StatsCache`] key. Equal-bound queries
/// collide by construction (their masks are identical, so sharing the
/// entry is exactly right).
fn fingerprint_query(q: &RangeQuery) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_eat(&mut h, q.dims() as u64);
    for d in 0..q.dims() {
        match q.bound(d) {
            Some((lo, hi)) => {
                fnv_eat(&mut h, 1);
                fnv_eat(&mut h, lo);
                fnv_eat(&mut h, hi);
            }
            None => fnv_eat(&mut h, 0),
        }
    }
    h
}

const WORD_BITS: usize = 64;

#[inline]
fn and(acc: &mut [u64], mask: &[u64]) {
    for (a, m) in acc.iter_mut().zip(mask) {
        *a &= m;
    }
}

#[inline]
fn and_not(acc: &mut [u64], mask: &[u64]) {
    for (a, m) in acc.iter_mut().zip(mask) {
        *a &= !m;
    }
}

#[inline]
fn popcount(acc: &[u64]) -> usize {
    acc.iter().map(|w| w.count_ones() as usize).sum()
}

/// One filtered query's cached grid contribution at one column count.
#[derive(Debug, Clone)]
struct GridMasks {
    /// Columns of this dimension inside the query rectangle — the factor
    /// this dimension contributes to `N_c`.
    ncols: f64,
    /// Bit `p` set ⇔ point `p`'s column lies inside the query's column
    /// range.
    pass: Vec<u64>,
    /// Bit `p` set ⇔ point `p` passes *and* lands on a boundary column
    /// (`lo_col` or `hi_col`) — it is visited but not inside an exact
    /// sub-range.
    boundary: Vec<u64>,
    /// Cache epoch this entry was counted in (see [`StatsCache::epoch`]).
    created_epoch: usize,
    /// Cache epoch this entry last served a probe (staleness pruning).
    last_used_epoch: usize,
}

/// One `(layout, query)` pair's cached predicted cost.
#[derive(Debug, Clone, Copy)]
struct CostEntry {
    /// The cost model's prediction for this query under this layout.
    time_ns: f64,
    /// Cache epoch this entry was computed in.
    created_epoch: usize,
    /// Cache epoch this entry last served a probe (staleness pruning).
    last_used_epoch: usize,
}

/// One filtered query's cached sort-dimension pass mask (column-count
/// independent: refinement bounds don't depend on the grid).
#[derive(Debug, Clone)]
struct SortMask {
    pass: Vec<u64>,
    /// Cache epoch this entry was counted in (see [`StatsCache::epoch`]).
    created_epoch: usize,
    /// Cache epoch this entry last served a probe (staleness pruning).
    last_used_epoch: usize,
}

/// Memo of per-query, per-dimension statistics over one [`DataSample`],
/// keyed on `(query fingerprint, dim, column_count)` — the dirty-set cache
/// behind [`SampleSpace::query_stats_cached`].
///
/// A gradient-descent probe that moves one dimension hits the cache for
/// every unmoved dimension and re-counts only the moved one; because the
/// finite-difference probes of [`crate::optimizer::gradient::descend`]
/// revisit the same per-dimension column counts over and over (and every
/// sort-dimension candidate of Algorithm 1 shares the cache), most probes
/// re-count *nothing* and reduce to bitset ANDs. Because entries are keyed
/// by query identity rather than window position, the cache also survives
/// the query set changing: re-pricing a slid observation window re-counts
/// only the queries that actually entered it. [`StatsCache::recounts`] /
/// [`StatsCache::reuses`] report the effect in (query, dim) units.
///
/// Validity is tied to the *data sample* only; the cache carries the
/// sample's process-unique identity and rejects use with any other.
#[derive(Debug, Clone)]
pub struct StatsCache {
    grid: HashMap<(u64, usize, usize), GridMasks>,
    sort: HashMap<(u64, usize), SortMask>,
    /// Per-(layout, query) predicted costs: `costs[(order, cols)][qfp]` is
    /// the cost model's `time_ns` for that query under that layout. A
    /// `(query, layout)` pair's cost depends on nothing else, so entries
    /// outlive the observation window that created them — the layer that
    /// makes repeat pricing of recurring queries free across re-learns.
    /// Valid for one cost model (the holder's optimizer never swaps its
    /// model mid-flight).
    costs: HashMap<(Vec<usize>, Vec<usize>), HashMap<u64, CostEntry>>,
    /// Identity of the owning data sample (process-unique, stamped at build
    /// time), to reject cross-space reuse — sizes alone can collide.
    space_id: u64,
    /// Current epoch: a caller-advanced generation counter. Entries
    /// remember their creation epoch, so reuse of work done in an earlier
    /// generation (e.g. a previous degradation check feeding a re-learn) is
    /// observable via [`StatsCache::cross_epoch_reuses`].
    epoch: usize,
    recounts: usize,
    reuses: usize,
    cross_epoch_reuses: usize,
    cost_hits: usize,
    cost_misses: usize,
}

impl StatsCache {
    /// The cached per-query cost of `layout_key` for the query with
    /// fingerprint `qfp`, counting the hit (cross-epoch hits feed
    /// [`StatsCache::cross_epoch_reuses`]).
    pub(crate) fn cost_probe(
        &mut self,
        layout_key: &(Vec<usize>, Vec<usize>),
        qfp: u64,
    ) -> Option<f64> {
        let entry = self.costs.get_mut(layout_key)?.get_mut(&qfp)?;
        self.cost_hits += 1;
        if entry.created_epoch < self.epoch {
            self.cross_epoch_reuses += 1;
        }
        entry.last_used_epoch = self.epoch;
        Some(entry.time_ns)
    }

    /// Record a freshly computed per-query cost.
    pub(crate) fn cost_insert(
        &mut self,
        layout_key: &(Vec<usize>, Vec<usize>),
        qfp: u64,
        time_ns: f64,
    ) {
        self.cost_misses += 1;
        self.costs.entry(layout_key.clone()).or_default().insert(
            qfp,
            CostEntry {
                time_ns,
                created_epoch: self.epoch,
                last_used_epoch: self.epoch,
            },
        );
    }

    /// Per-(layout, query) cost lookups served from the cache.
    pub fn cost_hits(&self) -> usize {
        self.cost_hits
    }

    /// Per-(layout, query) costs computed fresh (stats + weight models).
    pub fn cost_misses(&self) -> usize {
        self.cost_misses
    }

    /// Per-(query, dimension) contributions counted from scratch (cache
    /// misses).
    pub fn recounts(&self) -> usize {
        self.recounts
    }

    /// Per-(query, dimension) contributions served from the cache —
    /// contributions a probe needed but did not change.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Reuses of entries created in an earlier epoch (before the last
    /// [`StatsCache::advance_epoch`]).
    pub fn cross_epoch_reuses(&self) -> usize {
        self.cross_epoch_reuses
    }

    /// Start a new epoch: subsequent reuses of entries created before this
    /// call count as cross-epoch.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The current epoch.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Cached entries (grid + sort masks + per-query costs).
    pub fn entry_count(&self) -> usize {
        self.grid.len() + self.sort.len() + self.costs.values().map(HashMap::len).sum::<usize>()
    }

    /// Drop entries that last served a probe before `min_last_used` —
    /// long-lived holders (adaptive indexes) bound memory this way once
    /// old windows' queries stop recurring.
    pub fn prune_stale(&mut self, min_last_used: usize) {
        self.grid.retain(|_, e| e.last_used_epoch >= min_last_used);
        self.sort.retain(|_, e| e.last_used_epoch >= min_last_used);
        for per_query in self.costs.values_mut() {
            per_query.retain(|_, e| e.last_used_epoch >= min_last_used);
        }
        self.costs.retain(|_, per_query| !per_query.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        let n = 4_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| i % 1_000).collect(),
            (0..n).map(|i| (i * i) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn space(queries: &[RangeQuery], sample: usize) -> SampleSpace {
        let mut rng = StdRng::seed_from_u64(3);
        SampleSpace::build(
            &table(),
            queries,
            sample,
            &mut rng,
            &CorrelationConfig::default(),
        )
    }

    #[test]
    fn selectivity_ordering() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 9)
                .with_range(1, 0, 9_000),
            RangeQuery::all(3)
                .with_range(0, 10, 29)
                .with_range(1, 0, 8_000),
        ];
        let s = space(&qs, 2_000);
        // Dim 0 is ~1-3% selective, dim 1 ~80-90%; dim 2 never filtered.
        assert_eq!(s.dims_by_selectivity(), vec![0, 1]);
        assert!(s.selectivity(2).is_none());
        assert!(s.selectivity(0).expect("filtered") < s.selectivity(1).expect("filtered"));
    }

    #[test]
    fn ns_estimate_tracks_truth() {
        // Query selecting ~10% of dim 0 with full sample (scale = 1).
        // Correlation off: dim 0 (= row id % 1000) is detectably soft-FD
        // dependent on dim 2 (= row id), and the resulting query rewrite
        // would add a host bound on the sort dimension — correct, but not
        // what this test measures.
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        let mut rng = StdRng::seed_from_u64(3);
        let ccfg = CorrelationConfig {
            enabled: false,
            ..Default::default()
        };
        let s = SampleSpace::build(&table(), &qs, usize::MAX, &mut rng, &ccfg);
        // Layout: grid on dim 0 with 10 columns, sort dim 2.
        let stats = s.query_stats(&[0, 2], &[10]);
        assert_eq!(stats.len(), 1);
        let st = &stats[0];
        // True matching fraction is 10%; the scanned estimate covers whole
        // boundary columns so it is ≥ the true count but ≤ ~3 columns.
        let truth = 400.0; // 4000 rows * 10%
        assert!(st.ns >= truth * 0.8, "ns {}", st.ns);
        assert!(st.ns <= truth * 3.5, "ns {}", st.ns);
        assert!(st.nc >= 1.0 && st.nc <= 3.0, "nc {}", st.nc);
        assert!(!st.sort_filtered);
    }

    #[test]
    fn finer_grids_scan_fewer_points() {
        let qs = vec![RangeQuery::all(3).with_range(1, 0, 400)];
        let s = space(&qs, usize::MAX);
        let coarse = &s.query_stats(&[1, 2], &[2])[0];
        let fine = &s.query_stats(&[1, 2], &[64])[0];
        assert!(
            fine.ns <= coarse.ns,
            "finer grid must not scan more: {} vs {}",
            fine.ns,
            coarse.ns
        );
        assert!(fine.nc >= coarse.nc);
    }

    #[test]
    fn sort_filter_reduces_ns_via_refinement() {
        let qs = vec![RangeQuery::all(3)
            .with_range(0, 0, 499)
            .with_range(2, 0, 399)];
        let s = space(&qs, usize::MAX);
        // Sort dim = 2 → refinement prunes to ~10% of dim 2.
        let with_sort = &s.query_stats(&[0, 2], &[4])[0];
        // Sort dim = 1 (unfiltered sort) → dim 2 filter is unindexed → all
        // points in matching columns scanned.
        let without = &s.query_stats(&[0, 1], &[4])[0];
        assert!(
            with_sort.ns < without.ns,
            "refinement should prune: {} vs {}",
            with_sort.ns,
            without.ns
        );
        assert!(with_sort.sort_filtered);
        assert!(!without.sort_filtered);
        // The unindexed dim-2 filter kills exactness in the second layout.
        assert_eq!(without.exact_points, 0.0);
    }

    #[test]
    fn cached_stats_equal_full_scan_bit_for_bit() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 99)
                .with_range(2, 0, 399),
            RangeQuery::all(3)
                .with_range(1, 0, 4_000)
                .with_range(2, 100, 3_000),
            RangeQuery::all(3).with_range(1, 500, 600),
        ];
        let s = space(&qs, 1_500);
        let mut cache = s.stats_cache();
        // A probe sequence that moves one dimension at a time, revisits
        // earlier column counts, and switches orders mid-stream.
        let probes: &[(&[usize], &[usize])] = &[
            (&[0, 1, 2], &[8, 8]),
            (&[0, 1, 2], &[16, 8]),  // dim 0 moved
            (&[0, 1, 2], &[16, 4]),  // dim 1 moved
            (&[0, 1, 2], &[8, 8]),   // revisit
            (&[1, 0, 2], &[4, 32]),  // swapped order
            (&[2, 0], &[64]),        // subset order, unindexed filter on 1
            (&[0, 1, 2], &[16, 16]), // back to the first order
        ];
        for &(order, cols) in probes {
            let full = s.query_stats(order, cols);
            let cached = s.query_stats_cached(order, cols, &mut cache);
            assert_eq!(full, cached, "order {order:?} cols {cols:?}");
        }
        assert!(cache.reuses() > 0, "probe sequence must hit the cache");
    }

    #[test]
    #[should_panic(expected = "different SampleSpace")]
    fn cache_rejects_foreign_sample_space() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        // Identical sample size and query count — sizes collide, so only
        // the stamped identity can tell these spaces apart.
        let a = space(&qs, 500);
        let b = space(&qs, 500);
        let mut cache = a.stats_cache();
        let _ = b.query_stats_cached(&[0, 2], &[8], &mut cache);
    }

    #[test]
    fn masks_carry_across_overlapping_query_sets() {
        let q1 = RangeQuery::all(3)
            .with_range(0, 0, 99)
            .with_range(2, 0, 399);
        let q2 = RangeQuery::all(3)
            .with_range(1, 500, 600)
            .with_range(0, 10, 50);
        let q3 = RangeQuery::all(3).with_range(0, 200, 300);
        let data = {
            let mut rng = StdRng::seed_from_u64(3);
            Arc::new(DataSample::build(
                &table(),
                1_000,
                &mut rng,
                &CorrelationConfig::default(),
            ))
        };
        // Window A = {q1, q2}; window B slides to {q2, q3}. One cache
        // serves both: B's probe re-counts only q3's contributions.
        let a = SampleSpace::over(data.clone(), &[q1, q2.clone()]);
        let b = SampleSpace::over(data, &[q2, q3]);
        let mut cache = a.stats_cache();
        let probe: (&[usize], &[usize]) = (&[0, 1, 2], &[8, 16]);
        assert_eq!(
            a.query_stats(probe.0, probe.1),
            a.query_stats_cached(probe.0, probe.1, &mut cache)
        );
        let recounts_after_a = cache.recounts();
        assert_eq!(
            b.query_stats(probe.0, probe.1),
            b.query_stats_cached(probe.0, probe.1, &mut cache),
            "a cache warmed by window A must still price window B exactly"
        );
        // q2's grid entries (dims 0 and 1) are reused; q3 filters dim 0
        // only, so exactly one fresh grid entry is counted.
        assert_eq!(
            cache.recounts() - recounts_after_a,
            1,
            "only the query that entered the window is re-counted"
        );
    }

    #[test]
    fn prune_drops_only_stale_entries() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        let s = space(&qs, 500);
        let mut cache = s.stats_cache();
        let _ = s.query_stats_cached(&[0, 2], &[8], &mut cache);
        cache.advance_epoch();
        let _ = s.query_stats_cached(&[0, 2], &[16], &mut cache); // (q,0,8) idle
        let before = cache.entry_count();
        cache.prune_stale(cache.epoch());
        assert_eq!(cache.entry_count(), before - 1, "only (q,0,8) was stale");
        // The pruned entry rebuilds on demand, exactly.
        assert_eq!(
            s.query_stats(&[0, 2], &[8]),
            s.query_stats_cached(&[0, 2], &[8], &mut cache)
        );
    }

    #[test]
    fn shared_data_sample_matches_from_scratch_build() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 99)
                .with_range(2, 0, 399),
            RangeQuery::all(3).with_range(1, 500, 600),
        ];
        // Build once from the table, then re-attach the same queries to the
        // shared data sample: statistics must be identical bit for bit.
        let direct = space(&qs, 1_500);
        let reattached = SampleSpace::over(direct.data().clone(), &qs);
        assert_eq!(direct.query_fp(), reattached.query_fp());
        for (order, cols) in [
            (vec![0usize, 1, 2], vec![8usize, 8]),
            (vec![1, 0], vec![16]),
        ] {
            assert_eq!(
                direct.query_stats(&order, &cols),
                reattached.query_stats(&order, &cols),
            );
        }
        assert_eq!(
            direct.dims_by_selectivity(),
            reattached.dims_by_selectivity()
        );
    }

    #[test]
    fn query_fingerprint_tracks_content_and_order() {
        let a = vec![
            RangeQuery::all(3).with_range(0, 0, 99),
            RangeQuery::all(3).with_range(1, 5, 10),
        ];
        let b = a.clone();
        assert_eq!(
            SampleSpace::query_fingerprint(&a),
            SampleSpace::query_fingerprint(&b)
        );
        let shifted = vec![
            RangeQuery::all(3).with_range(0, 0, 100),
            RangeQuery::all(3).with_range(1, 5, 10),
        ];
        assert_ne!(
            SampleSpace::query_fingerprint(&a),
            SampleSpace::query_fingerprint(&shifted)
        );
        let reordered: Vec<RangeQuery> = a.iter().rev().cloned().collect();
        assert_ne!(
            SampleSpace::query_fingerprint(&a),
            SampleSpace::query_fingerprint(&reordered)
        );
        // Filtered vs unfiltered dimension must not collide with a (0,0)
        // bound.
        let unfiltered = vec![RangeQuery::all(3)];
        let zero_bound = vec![RangeQuery::all(3).with_range(0, 0, 0)];
        assert_ne!(
            SampleSpace::query_fingerprint(&unfiltered),
            SampleSpace::query_fingerprint(&zero_bound)
        );
    }

    #[test]
    fn epochs_attribute_cross_check_reuse() {
        let qs = vec![RangeQuery::all(3)
            .with_range(0, 0, 99)
            .with_range(2, 0, 399)];
        let s = space(&qs, 1_000);
        let mut cache = s.stats_cache();
        // Epoch 0: a "degradation check" prices one layout.
        let _ = s.query_stats_cached(&[0, 2], &[8], &mut cache);
        assert_eq!(cache.cross_epoch_reuses(), 0);
        // Epoch 1: a "re-learn" probes the same and a fresh layout.
        cache.advance_epoch();
        let _ = s.query_stats_cached(&[0, 2], &[8], &mut cache); // both entries old
        let _ = s.query_stats_cached(&[0, 2], &[16], &mut cache); // sort old, grid fresh
        assert_eq!(cache.cross_epoch_reuses(), 3);
        // Same-epoch reuse of the epoch-1 grid entry does not count.
        let before = cache.cross_epoch_reuses();
        let _ = s.query_stats_cached(&[0, 2], &[16], &mut cache);
        assert_eq!(cache.cross_epoch_reuses(), before + 1, "sort entry is old");
    }

    #[test]
    fn scale_extrapolates_sample_counts() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 999)];
        let full = space(&qs, usize::MAX);
        let sampled = space(&qs, 500);
        let a = &full.query_stats(&[0, 2], &[1])[0];
        let b = &sampled.query_stats(&[0, 2], &[1])[0];
        // Everything matches in both; scaled counts should agree.
        assert_eq!(a.ns, 4_000.0);
        assert!((b.ns - 4_000.0).abs() < 1e-6, "scaled ns {}", b.ns);
    }
}
