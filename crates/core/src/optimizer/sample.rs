//! The flattened sample space: the optimizer's stand-in for the full dataset.
//!
//! Algorithm 1 flattens a data sample and the query sample with per-dimension
//! RMIs, then evaluates every candidate layout against them: `N_c` exactly
//! from the (flattened) query rectangle and the column counts, `N_s` and the
//! weight-model features by counting sample points. Because flattening makes
//! every marginal uniform, a dimension with `c` columns splits at
//! `i/c` for `i = 1..c` in flattened space.
//!
//! ## Incremental per-dimension statistics
//!
//! A layout's statistics are a *conjunction* of independent per-dimension
//! facts about each sample point: which column it lands in under `c`
//! columns of grid dimension `d` (inside the query's column range? on a
//! boundary column?), and whether it passes the sort-dimension filter.
//! [`SampleSpace::query_stats`] recomputes all of them with one scan per
//! call; [`SampleSpace::query_stats_cached`] instead caches each
//! dimension's contribution as per-query bitsets keyed on
//! `(dim, column_count)` in a [`StatsCache`], so a gradient-descent probe
//! that moves one dimension's column count re-counts **only that
//! dimension** (the dirty set) and re-derives `N_s`/`N_c`/the exact-point
//! count by AND-ing cached masks — a word-parallel operation 64× narrower
//! than the point scan. The two paths are bit-identical by construction:
//! identical column arithmetic, identical multiplication order for `N_c`,
//! and one shared [`QueryStatistics::estimated`] constructor (pinned by
//! `tests/prop_incremental.rs` over arbitrary probe sequences).

use crate::cost::features::QueryStatistics;
use flood_learned::cdf::CdfModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use std::collections::HashMap;

/// A flattened query: per-dimension bounds in `[0, 1]` flat space.
#[derive(Debug, Clone)]
pub struct FlatQuery {
    /// `bounds[d] = Some((cdf(lo), cdf(hi)))` when dimension `d` is filtered.
    pub bounds: Vec<Option<(f32, f32)>>,
    /// Number of filtered dimensions.
    pub dims_filtered: usize,
}

/// The flattened data + query sample used for cost evaluation.
#[derive(Debug, Clone)]
pub struct SampleSpace {
    /// Row-major flattened sample values: `flat[p * dims + d]`.
    flat: Vec<f32>,
    /// Column-major copy: `flat_by_dim[d * n_points + p]`. Mask building in
    /// the incremental path walks one dimension over every point; the
    /// transposed layout keeps that walk sequential.
    flat_by_dim: Vec<f32>,
    n_points: usize,
    n_dims: usize,
    /// Scale factor from sample counts to full-dataset counts.
    scale: f64,
    full_n: usize,
    queries: Vec<FlatQuery>,
    /// Average flattened query width per dimension (selectivity), `None`
    /// for dimensions never filtered.
    avg_selectivity: Vec<Option<f64>>,
    /// Process-unique identity stamped at build time; a [`StatsCache`]
    /// carries its creator's id so cross-space reuse panics instead of
    /// silently producing wrong statistics (sample sizes can collide,
    /// identities cannot). Clones share the id — their masks are valid
    /// for each other by construction.
    space_id: u64,
}

/// Source of [`SampleSpace::space_id`] values.
static NEXT_SPACE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl SampleSpace {
    /// Sample up to `max_sample` rows of `table`, train per-dimension RMIs
    /// on the sample, and flatten both the sample and the `queries`.
    pub fn build(
        table: &Table,
        queries: &[RangeQuery],
        max_sample: usize,
        rng: &mut StdRng,
    ) -> Self {
        let full_n = table.len();
        let n_dims = table.dims();
        let take = max_sample.clamp(1, full_n.max(1));
        let rows: Vec<usize> = if take >= full_n {
            (0..full_n).collect()
        } else {
            index_sample(rng, full_n, take).into_vec()
        };
        let n_points = rows.len();

        // Per-dimension CDFs trained on the sample (Algorithm 1 line 6-8).
        let mut cdfs = Vec::with_capacity(n_dims);
        for d in 0..n_dims {
            let mut vals: Vec<u64> = rows.iter().map(|&r| table.value(r, d)).collect();
            vals.sort_unstable();
            cdfs.push(Rmi::build(&vals, RmiConfig::default()));
        }

        // Flatten the sample, row-major, plus a column-major transpose for
        // the incremental path's per-dimension mask builds.
        let mut flat = Vec::with_capacity(n_points * n_dims);
        for &r in &rows {
            for (d, cdf) in cdfs.iter().enumerate() {
                flat.push(cdf.cdf(table.value(r, d)) as f32);
            }
        }
        let mut flat_by_dim = vec![0.0f32; n_points * n_dims];
        for p in 0..n_points {
            for d in 0..n_dims {
                flat_by_dim[d * n_points + p] = flat[p * n_dims + d];
            }
        }

        // Flatten the queries and record selectivities.
        let mut sel_sum = vec![0.0f64; n_dims];
        let mut sel_cnt = vec![0usize; n_dims];
        let flat_queries: Vec<FlatQuery> = queries
            .iter()
            .map(|q| {
                let mut bounds = Vec::with_capacity(n_dims);
                for d in 0..n_dims {
                    match q.bound(d) {
                        Some((lo, hi)) => {
                            let flo = cdfs[d].cdf(lo) as f32;
                            let fhi = cdfs[d].cdf(hi) as f32;
                            sel_sum[d] += (fhi - flo) as f64;
                            sel_cnt[d] += 1;
                            bounds.push(Some((flo, fhi)));
                        }
                        None => bounds.push(None),
                    }
                }
                FlatQuery {
                    dims_filtered: q.num_filtered(),
                    bounds,
                }
            })
            .collect();
        let avg_selectivity = (0..n_dims)
            .map(|d| {
                if sel_cnt[d] == 0 {
                    None
                } else {
                    Some(sel_sum[d] / sel_cnt[d] as f64)
                }
            })
            .collect();

        SampleSpace {
            flat,
            flat_by_dim,
            n_points,
            n_dims,
            scale: full_n as f64 / n_points.max(1) as f64,
            full_n,
            queries: flat_queries,
            avg_selectivity,
            space_id: NEXT_SPACE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Dimensions filtered by at least one sampled query, most selective
    /// (smallest average flattened width) first — Algorithm 1's `dims`.
    pub fn dims_by_selectivity(&self) -> Vec<usize> {
        let mut dims: Vec<(usize, f64)> = self
            .avg_selectivity
            .iter()
            .enumerate()
            .filter_map(|(d, s)| s.map(|s| (d, s)))
            .collect();
        dims.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("selectivities are finite"));
        dims.into_iter().map(|(d, _)| d).collect()
    }

    /// Average selectivity (flattened width) of `dim`, if ever filtered.
    pub fn selectivity(&self, dim: usize) -> Option<f64> {
        self.avg_selectivity[dim]
    }

    /// Estimate the per-query statistics of layout `(order, cols)` — the
    /// cost-model inputs, without building anything (§4.2 step 3).
    ///
    /// `order` lists indexed dims (sort last), `cols` the grid column
    /// counts (`order.len() - 1` entries).
    pub fn query_stats(&self, order: &[usize], cols: &[usize]) -> Vec<QueryStatistics> {
        assert_eq!(cols.len() + 1, order.len());
        let grid_dims = &order[..order.len() - 1];
        let sort_dim = *order.last().expect("non-empty order");
        let total_cells: f64 = cols.iter().map(|&c| c as f64).product::<f64>().max(1.0);
        let avg_cell = self.full_n as f64 / total_cells;

        let mut out = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            // Projection: exact column ranges per grid dim.
            let mut nc = 1.0f64;
            let mut ranges: Vec<(u32, u32, bool)> = Vec::with_capacity(grid_dims.len());
            for (&d, &c) in grid_dims.iter().zip(cols) {
                match q.bounds[d] {
                    Some((lo, hi)) => {
                        let lo_col = ((lo as f64 * c as f64) as u32).min(c as u32 - 1);
                        let hi_col = ((hi as f64 * c as f64) as u32).min(c as u32 - 1);
                        nc *= (hi_col - lo_col + 1) as f64;
                        ranges.push((lo_col, hi_col, true));
                    }
                    None => {
                        // The query rectangle spans the whole dimension:
                        // every column contributes to N_c.
                        nc *= c as f64;
                        ranges.push((0, c as u32 - 1, false));
                    }
                }
            }
            let sort_bound = q.bounds[sort_dim];
            // Any filter on an unindexed dimension forces per-point checks,
            // so no sub-range can be exact.
            let has_unindexed_filter =
                (0..self.n_dims).any(|d| q.bounds[d].is_some() && !order.contains(&d));

            // Scan estimate from the sample.
            let mut ns_sample = 0usize;
            let mut exact_sample = 0usize;
            'points: for p in 0..self.n_points {
                let row = &self.flat[p * self.n_dims..(p + 1) * self.n_dims];
                let mut interior = !has_unindexed_filter;
                for ((&d, &c), &(lo_col, hi_col, filtered)) in
                    grid_dims.iter().zip(cols).zip(&ranges)
                {
                    let col = ((row[d] as f64 * c as f64) as u32).min(c as u32 - 1);
                    if col < lo_col || col > hi_col {
                        continue 'points;
                    }
                    if filtered && (col == lo_col || col == hi_col) {
                        interior = false;
                    }
                }
                if let Some((lo, hi)) = sort_bound {
                    let v = row[sort_dim];
                    if v < lo || v > hi {
                        continue 'points;
                    }
                }
                ns_sample += 1;
                if interior {
                    exact_sample += 1;
                }
            }
            let ns = ns_sample as f64 * self.scale;
            let exact = exact_sample as f64 * self.scale;
            out.push(QueryStatistics::estimated(
                nc,
                ns,
                exact,
                total_cells,
                avg_cell,
                q.dims_filtered as f64,
                sort_bound.is_some(),
            ));
        }
        out
    }

    /// A [`StatsCache`] bound to this sample, for
    /// [`SampleSpace::query_stats_cached`].
    pub fn stats_cache(&self) -> StatsCache {
        StatsCache {
            grid: HashMap::new(),
            sort: HashMap::new(),
            space_id: self.space_id,
            recounts: 0,
            reuses: 0,
        }
    }

    /// [`SampleSpace::query_stats`], incrementally: identical output (bit
    /// for bit), but each dimension's per-point contribution is cached in
    /// `cache` keyed on `(dim, column_count)`, so only dimensions whose
    /// column count this probe actually changed are re-counted.
    ///
    /// # Panics
    /// Panics if `cache` was built by a different [`SampleSpace`] (the
    /// masks would be meaningless) or if `cols`/`order` lengths disagree.
    pub fn query_stats_cached(
        &self,
        order: &[usize],
        cols: &[usize],
        cache: &mut StatsCache,
    ) -> Vec<QueryStatistics> {
        assert_eq!(cols.len() + 1, order.len());
        assert!(
            cache.space_id == self.space_id,
            "StatsCache built for a different SampleSpace"
        );
        let grid_dims = &order[..order.len() - 1];
        let sort_dim = *order.last().expect("non-empty order");
        let total_cells: f64 = cols.iter().map(|&c| c as f64).product::<f64>().max(1.0);
        let avg_cell = self.full_n as f64 / total_cells;

        // Dirty-set recomputation: build masks only for (dim, cols) pairs
        // this probe introduced; everything else is served from the cache.
        for (&d, &c) in grid_dims.iter().zip(cols) {
            if cache.grid.contains_key(&(d, c)) {
                cache.reuses += 1;
            } else {
                cache.recounts += 1;
                let entry = self.build_grid_entry(d, c);
                cache.grid.insert((d, c), entry);
            }
        }
        if cache.sort.contains_key(&sort_dim) {
            cache.reuses += 1;
        } else {
            cache.recounts += 1;
            let entry = self.build_sort_entry(sort_dim);
            cache.sort.insert(sort_dim, entry);
        }

        let words = self.n_points.div_ceil(WORD_BITS);
        // All-points mask, with trailing bits beyond `n_points` cleared so
        // popcounts equal point counts.
        let mut ones = vec![!0u64; words];
        if let Some(last) = ones.last_mut() {
            let tail = self.n_points % WORD_BITS;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        let sort_entry = &cache.sort[&sort_dim];
        let mut acc = vec![0u64; words];
        let mut out = Vec::with_capacity(self.queries.len());
        for (qi, q) in self.queries.iter().enumerate() {
            // N_c: multiply per-dimension column counts in `grid_dims`
            // order — the same f64 multiplication sequence as the full
            // scan, so the product is bit-identical.
            let mut nc = 1.0f64;
            acc.copy_from_slice(&ones);
            for (&d, &c) in grid_dims.iter().zip(cols) {
                let masks = &cache.grid[&(d, c)].per_query[qi];
                nc *= masks.ncols;
                if let Some(f) = &masks.filtered {
                    and(&mut acc, &f.pass);
                }
            }
            if let Some(m) = &sort_entry.per_query[qi] {
                and(&mut acc, m);
            }
            let ns_sample = popcount(&acc);
            // Any filter on an unindexed dimension forces per-point checks,
            // so no sub-range can be exact.
            let has_unindexed_filter =
                (0..self.n_dims).any(|d| q.bounds[d].is_some() && !order.contains(&d));
            let exact_sample = if has_unindexed_filter {
                0
            } else {
                for (&d, &c) in grid_dims.iter().zip(cols) {
                    if let Some(f) = &cache.grid[&(d, c)].per_query[qi].filtered {
                        and_not(&mut acc, &f.boundary);
                    }
                }
                popcount(&acc)
            };
            let ns = ns_sample as f64 * self.scale;
            let exact = exact_sample as f64 * self.scale;
            out.push(QueryStatistics::estimated(
                nc,
                ns,
                exact,
                total_cells,
                avg_cell,
                q.dims_filtered as f64,
                q.bounds[sort_dim].is_some(),
            ));
        }
        out
    }

    /// Count one grid dimension at one column count, for every query: the
    /// per-point pass/boundary bitsets and the query rectangle's column
    /// span. Uses exactly the column arithmetic of the full scan.
    fn build_grid_entry(&self, dim: usize, c: usize) -> GridEntry {
        let words = self.n_points.div_ceil(WORD_BITS);
        let col_vals = &self.flat_by_dim[dim * self.n_points..(dim + 1) * self.n_points];
        let per_query = self
            .queries
            .iter()
            .map(|q| match q.bounds[dim] {
                Some((lo, hi)) => {
                    let lo_col = ((lo as f64 * c as f64) as u32).min(c as u32 - 1);
                    let hi_col = ((hi as f64 * c as f64) as u32).min(c as u32 - 1);
                    let mut pass = vec![0u64; words];
                    let mut boundary = vec![0u64; words];
                    for (p, &v) in col_vals.iter().enumerate() {
                        let col = ((v as f64 * c as f64) as u32).min(c as u32 - 1);
                        if col < lo_col || col > hi_col {
                            continue;
                        }
                        pass[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
                        if col == lo_col || col == hi_col {
                            boundary[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
                        }
                    }
                    GridMasks {
                        ncols: (hi_col - lo_col + 1) as f64,
                        filtered: Some(FilteredMasks { pass, boundary }),
                    }
                }
                // The query rectangle spans the whole dimension: every
                // column contributes to N_c, every point passes, and no
                // boundary column shrinks the exact sub-range.
                None => GridMasks {
                    ncols: c as f64,
                    filtered: None,
                },
            })
            .collect();
        GridEntry { per_query }
    }

    /// Count the sort-dimension crossings for every query: which points
    /// pass the query's sort-dimension bound (`None` when unfiltered —
    /// refinement never runs and every point passes).
    fn build_sort_entry(&self, dim: usize) -> SortEntry {
        let words = self.n_points.div_ceil(WORD_BITS);
        let col_vals = &self.flat_by_dim[dim * self.n_points..(dim + 1) * self.n_points];
        let per_query = self
            .queries
            .iter()
            .map(|q| {
                q.bounds[dim].map(|(lo, hi)| {
                    let mut pass = vec![0u64; words];
                    for (p, &v) in col_vals.iter().enumerate() {
                        if v < lo || v > hi {
                            continue;
                        }
                        pass[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
                    }
                    pass
                })
            })
            .collect();
        SortEntry { per_query }
    }
}

const WORD_BITS: usize = 64;

#[inline]
fn and(acc: &mut [u64], mask: &[u64]) {
    for (a, m) in acc.iter_mut().zip(mask) {
        *a &= m;
    }
}

#[inline]
fn and_not(acc: &mut [u64], mask: &[u64]) {
    for (a, m) in acc.iter_mut().zip(mask) {
        *a &= !m;
    }
}

#[inline]
fn popcount(acc: &[u64]) -> usize {
    acc.iter().map(|w| w.count_ones() as usize).sum()
}

/// One grid dimension's cached contribution to one query at one column
/// count.
#[derive(Debug, Clone)]
struct GridMasks {
    /// Columns of this dimension inside the query rectangle — the factor
    /// this dimension contributes to `N_c`.
    ncols: f64,
    /// Pass/boundary bitsets when the query filters this dimension; `None`
    /// when unfiltered (every point passes, no boundary).
    filtered: Option<FilteredMasks>,
}

/// Bitsets over sample points for one filtered (query, dim, cols) triple.
#[derive(Debug, Clone)]
struct FilteredMasks {
    /// Bit `p` set ⇔ point `p`'s column lies inside the query's column
    /// range.
    pass: Vec<u64>,
    /// Bit `p` set ⇔ point `p` passes *and* lands on a boundary column
    /// (`lo_col` or `hi_col`) — it is visited but not inside an exact
    /// sub-range.
    boundary: Vec<u64>,
}

/// All queries' masks for one `(dim, cols)` pair.
#[derive(Debug, Clone)]
struct GridEntry {
    per_query: Vec<GridMasks>,
}

/// All queries' sort-dimension pass masks for one dimension (column-count
/// independent: refinement bounds don't depend on the grid).
#[derive(Debug, Clone)]
struct SortEntry {
    per_query: Vec<Option<Vec<u64>>>,
}

/// Memo of per-dimension statistics for one [`SampleSpace`], keyed on
/// `(dim, column_count)` — the dirty-set cache behind
/// [`SampleSpace::query_stats_cached`].
///
/// A gradient-descent probe that moves one dimension hits the cache for
/// every unmoved dimension and re-counts only the moved one; because the
/// finite-difference probes of [`crate::optimizer::gradient::descend`]
/// revisit the same per-dimension column counts over and over (and every
/// sort-dimension candidate of Algorithm 1 shares the cache), most probes
/// re-count *nothing* and reduce to bitset ANDs. [`StatsCache::recounts`] /
/// [`StatsCache::reuses`] report the effect.
#[derive(Debug, Clone)]
pub struct StatsCache {
    grid: HashMap<(usize, usize), GridEntry>,
    sort: HashMap<usize, SortEntry>,
    /// Identity of the owning sample (process-unique, stamped at build
    /// time), to reject cross-space reuse — sizes alone can collide.
    space_id: u64,
    recounts: usize,
    reuses: usize,
}

impl StatsCache {
    /// Per-dimension contributions counted from scratch (cache misses).
    pub fn recounts(&self) -> usize {
        self.recounts
    }

    /// Per-dimension contributions served from the cache — dimensions a
    /// probe needed but did not move.
    pub fn reuses(&self) -> usize {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        let n = 4_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| i % 1_000).collect(),
            (0..n).map(|i| (i * i) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn space(queries: &[RangeQuery], sample: usize) -> SampleSpace {
        let mut rng = StdRng::seed_from_u64(3);
        SampleSpace::build(&table(), queries, sample, &mut rng)
    }

    #[test]
    fn selectivity_ordering() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 9)
                .with_range(1, 0, 9_000),
            RangeQuery::all(3)
                .with_range(0, 10, 29)
                .with_range(1, 0, 8_000),
        ];
        let s = space(&qs, 2_000);
        // Dim 0 is ~1-3% selective, dim 1 ~80-90%; dim 2 never filtered.
        assert_eq!(s.dims_by_selectivity(), vec![0, 1]);
        assert!(s.selectivity(2).is_none());
        assert!(s.selectivity(0).expect("filtered") < s.selectivity(1).expect("filtered"));
    }

    #[test]
    fn ns_estimate_tracks_truth() {
        // Query selecting ~10% of dim 0 with full sample (scale = 1).
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        let s = space(&qs, usize::MAX);
        // Layout: grid on dim 0 with 10 columns, sort dim 2.
        let stats = s.query_stats(&[0, 2], &[10]);
        assert_eq!(stats.len(), 1);
        let st = &stats[0];
        // True matching fraction is 10%; the scanned estimate covers whole
        // boundary columns so it is ≥ the true count but ≤ ~3 columns.
        let truth = 400.0; // 4000 rows * 10%
        assert!(st.ns >= truth * 0.8, "ns {}", st.ns);
        assert!(st.ns <= truth * 3.5, "ns {}", st.ns);
        assert!(st.nc >= 1.0 && st.nc <= 3.0, "nc {}", st.nc);
        assert!(!st.sort_filtered);
    }

    #[test]
    fn finer_grids_scan_fewer_points() {
        let qs = vec![RangeQuery::all(3).with_range(1, 0, 400)];
        let s = space(&qs, usize::MAX);
        let coarse = &s.query_stats(&[1, 2], &[2])[0];
        let fine = &s.query_stats(&[1, 2], &[64])[0];
        assert!(
            fine.ns <= coarse.ns,
            "finer grid must not scan more: {} vs {}",
            fine.ns,
            coarse.ns
        );
        assert!(fine.nc >= coarse.nc);
    }

    #[test]
    fn sort_filter_reduces_ns_via_refinement() {
        let qs = vec![RangeQuery::all(3)
            .with_range(0, 0, 499)
            .with_range(2, 0, 399)];
        let s = space(&qs, usize::MAX);
        // Sort dim = 2 → refinement prunes to ~10% of dim 2.
        let with_sort = &s.query_stats(&[0, 2], &[4])[0];
        // Sort dim = 1 (unfiltered sort) → dim 2 filter is unindexed → all
        // points in matching columns scanned.
        let without = &s.query_stats(&[0, 1], &[4])[0];
        assert!(
            with_sort.ns < without.ns,
            "refinement should prune: {} vs {}",
            with_sort.ns,
            without.ns
        );
        assert!(with_sort.sort_filtered);
        assert!(!without.sort_filtered);
        // The unindexed dim-2 filter kills exactness in the second layout.
        assert_eq!(without.exact_points, 0.0);
    }

    #[test]
    fn cached_stats_equal_full_scan_bit_for_bit() {
        let qs = vec![
            RangeQuery::all(3)
                .with_range(0, 0, 99)
                .with_range(2, 0, 399),
            RangeQuery::all(3)
                .with_range(1, 0, 4_000)
                .with_range(2, 100, 3_000),
            RangeQuery::all(3).with_range(1, 500, 600),
        ];
        let s = space(&qs, 1_500);
        let mut cache = s.stats_cache();
        // A probe sequence that moves one dimension at a time, revisits
        // earlier column counts, and switches orders mid-stream.
        let probes: &[(&[usize], &[usize])] = &[
            (&[0, 1, 2], &[8, 8]),
            (&[0, 1, 2], &[16, 8]),  // dim 0 moved
            (&[0, 1, 2], &[16, 4]),  // dim 1 moved
            (&[0, 1, 2], &[8, 8]),   // revisit
            (&[1, 0, 2], &[4, 32]),  // swapped order
            (&[2, 0], &[64]),        // subset order, unindexed filter on 1
            (&[0, 1, 2], &[16, 16]), // back to the first order
        ];
        for &(order, cols) in probes {
            let full = s.query_stats(order, cols);
            let cached = s.query_stats_cached(order, cols, &mut cache);
            assert_eq!(full, cached, "order {order:?} cols {cols:?}");
        }
        assert!(cache.reuses() > 0, "probe sequence must hit the cache");
    }

    #[test]
    #[should_panic(expected = "different SampleSpace")]
    fn cache_rejects_foreign_sample_space() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 99)];
        // Identical sample size and query count — sizes collide, so only
        // the stamped identity can tell these spaces apart.
        let a = space(&qs, 500);
        let b = space(&qs, 500);
        let mut cache = a.stats_cache();
        let _ = b.query_stats_cached(&[0, 2], &[8], &mut cache);
    }

    #[test]
    fn scale_extrapolates_sample_counts() {
        let qs = vec![RangeQuery::all(3).with_range(0, 0, 999)];
        let full = space(&qs, usize::MAX);
        let sampled = space(&qs, 500);
        let a = &full.query_stats(&[0, 2], &[1])[0];
        let b = &sampled.query_stats(&[0, 2], &[1])[0];
        // Everything matches in both; scaled counts should agree.
        assert_eq!(a.ns, 4_000.0);
        assert!((b.ns - 4_000.0).abs() < 1e-6, "scaled ns {}", b.ns);
    }
}
