//! k-nearest-neighbor queries over the Flood grid (§6).
//!
//! "Flood can easily locate adjacent cells in its grid layout, allowing a
//! similar kNN algorithm" to the k-d tree's: locate the cell containing the
//! query point, then check adjacent cells ring by ring until the best `k`
//! cannot improve. The paper excludes kNN from its evaluation (no geospatial
//! focus); we implement it as the natural extension.
//!
//! Distances are L2 over a chosen dimension subset, with every dimension
//! normalized by its value range so heterogeneous attributes are
//! comparable. Ring pruning uses column edges in value space: every cell
//! outside Chebyshev ring `r` differs from the query's cell by more than
//! `r` columns in some grid dimension, so its points lie at least the
//! distance to that column edge away.

use crate::index::FloodIndex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One kNN result: a physical row of [`FloodIndex::data`] and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row id in the index's storage order.
    pub row: usize,
    /// Normalized L2 distance to the query point.
    pub distance: f64,
}

/// Max-heap entry keyed on distance.
struct HeapItem(f64, usize);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// A reusable kNN searcher over a built index.
#[derive(Debug)]
pub struct KnnSearcher<'a> {
    index: &'a FloodIndex,
    /// Dimensions participating in the distance.
    dims: Vec<usize>,
    /// Per-distance-dimension normalization factor (1 / range).
    inv_range: Vec<f64>,
    /// For each *grid* dimension: its position-aligned column count and the
    /// value at each column's lower edge (for ring pruning).
    grid_edges: Vec<Vec<u64>>,
}

impl<'a> KnnSearcher<'a> {
    /// Prepare a searcher computing distances over `dims`.
    ///
    /// # Panics
    /// Panics if `dims` is empty or out of bounds.
    pub fn new(index: &'a FloodIndex, dims: Vec<usize>) -> Self {
        assert!(
            !dims.is_empty(),
            "kNN needs at least one distance dimension"
        );
        let data = index.data();
        for &d in &dims {
            assert!(d < data.dims(), "distance dimension {d} out of bounds");
        }
        let inv_range = dims
            .iter()
            .map(|&d| {
                let (lo, hi) = data.dim_bounds(d);
                1.0 / ((hi - lo).max(1) as f64)
            })
            .collect();
        // Column lower edges per grid dim: the smallest value mapping to
        // each column, found by binary search on the monotone bucket map.
        let layout = index.layout();
        let grid_edges = layout
            .grid_dims()
            .iter()
            .zip(layout.cols())
            .map(|(&d, &c)| {
                (0..c)
                    .map(|col| smallest_value_in_column(index, d, c, col))
                    .collect()
            })
            .collect();
        KnnSearcher {
            index,
            dims,
            inv_range,
            grid_edges,
        }
    }

    /// The `k` nearest rows to `point` (one value per table dimension),
    /// sorted by ascending distance. Returns fewer than `k` when the table
    /// is smaller.
    pub fn knn(&self, point: &[u64], k: usize) -> Vec<Neighbor> {
        let index = self.index;
        let data = index.data();
        let layout = index.layout();
        assert_eq!(point.len(), data.dims(), "point arity mismatch");
        if k == 0 || data.is_empty() {
            return Vec::new();
        }
        let grid_dims = layout.grid_dims();
        let cols = layout.cols();
        // The query point's cell coordinates.
        let center: Vec<usize> = grid_dims
            .iter()
            .zip(cols)
            .map(|(&d, &c)| index.flattener().bucket(d, point[d], c))
            .collect();

        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        let max_ring = cols.iter().copied().max().unwrap_or(1);
        for ring in 0..=max_ring {
            // Prune: if the heap is full and even the closest possible point
            // of this ring is worse than our kth best, stop.
            if heap.len() == k && ring > 0 {
                let kth = heap.peek().expect("full heap").0;
                if self.ring_lower_bound(point, &center, ring) > kth {
                    break;
                }
            }
            self.for_each_ring_cell(&center, cols, ring, |cell| {
                let (s, e) = index.cell_range(cell);
                for row in s..e {
                    let dist = self.distance(point, row);
                    if heap.len() < k {
                        heap.push(HeapItem(dist, row));
                    } else if dist < heap.peek().expect("full heap").0 {
                        heap.pop();
                        heap.push(HeapItem(dist, row));
                    }
                }
            });
            if grid_dims.is_empty() {
                break; // single cell: one pass covers everything
            }
        }
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|HeapItem(distance, row)| Neighbor { row, distance })
            .collect();
        out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite"));
        out
    }

    /// Normalized L2 distance between `point` and stored row `row`.
    fn distance(&self, point: &[u64], row: usize) -> f64 {
        let data = self.index.data();
        let mut acc = 0.0;
        for (&d, &inv) in self.dims.iter().zip(&self.inv_range) {
            let a = point[d] as f64;
            let b = data.value(row, d) as f64;
            let delta = (a - b) * inv;
            acc += delta * delta;
        }
        acc.sqrt()
    }

    /// Lower bound on the distance from `point` to any cell whose Chebyshev
    /// column distance from `center` is ≥ `ring`.
    fn ring_lower_bound(&self, point: &[u64], center: &[usize], ring: usize) -> f64 {
        let layout = self.index.layout();
        let grid_dims = layout.grid_dims();
        let mut best = f64::INFINITY;
        for (i, (&d, edges)) in grid_dims.iter().zip(&self.grid_edges).enumerate() {
            // Distance contribution only matters for dims in the metric.
            let Some(pos) = self.dims.iter().position(|&x| x == d) else {
                // A grid dim outside the metric gives a zero lower bound:
                // cells far away there can still be distance-0.
                return 0.0;
            };
            let inv = self.inv_range[pos];
            let c = edges.len();
            let p = point[d] as f64;
            // Going down `ring` columns: the upper edge of column
            // center-ring is edges[center-ring+1] - 1.
            let down = if center[i] >= ring {
                let col = center[i] - ring;
                if col + 1 < c {
                    let edge = edges[col + 1].saturating_sub(1) as f64;
                    (p - edge).max(0.0) * inv
                } else {
                    0.0
                }
            } else {
                f64::INFINITY
            };
            // Going up `ring` columns: the lower edge of column center+ring.
            let up = if center[i] + ring < c {
                let edge = edges[center[i] + ring] as f64;
                (edge - p).max(0.0) * inv
            } else {
                f64::INFINITY
            };
            best = best.min(down.min(up));
        }
        if best.is_infinite() {
            // Every direction exhausted: nothing outside remains.
            f64::INFINITY
        } else {
            best
        }
    }

    /// Invoke `f(cell_id)` for every cell at Chebyshev distance exactly
    /// `ring` from `center` (clipped to the grid).
    fn for_each_ring_cell(
        &self,
        center: &[usize],
        cols: &[usize],
        ring: usize,
        mut f: impl FnMut(usize),
    ) {
        let grid = self.index.grid();
        if cols.is_empty() {
            if ring == 0 {
                f(0);
            }
            return;
        }
        // Iterate the bounding box of the ring and keep exact-distance cells.
        let lo: Vec<usize> = center.iter().map(|&c| c.saturating_sub(ring)).collect();
        let hi: Vec<usize> = center
            .iter()
            .zip(cols)
            .map(|(&c, &n)| (c + ring).min(n - 1))
            .collect();
        let ranges: Vec<(usize, usize)> = lo.into_iter().zip(hi).collect();
        grid.for_each_cell(&ranges, |cell, coords| {
            let cheb = coords
                .iter()
                .zip(center)
                .map(|(&a, &b)| a.abs_diff(b))
                .max()
                .unwrap_or(0);
            if cheb == ring {
                f(cell);
            }
        });
    }
}

/// Smallest raw value that maps to column `col` of dimension `d` (binary
/// search over the monotone bucket function).
fn smallest_value_in_column(index: &FloodIndex, d: usize, c: usize, col: usize) -> u64 {
    if col == 0 {
        return 0;
    }
    let f = index.flattener();
    let (mut lo, mut hi) = (0u64, u64::MAX);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if f.bucket(d, mid, c) < col {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FloodBuilder;
    use crate::layout::Layout;
    use flood_store::Table;

    fn table(n: usize, seed: u64) -> Table {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        Table::from_columns(vec![
            (0..n).map(|_| next() % 10_000).collect(),
            (0..n).map(|_| next() % 10_000).collect(),
            (0..n).map(|_| next() % 10_000).collect(),
        ])
    }

    fn brute_force(data: &Table, dims: &[usize], point: &[u64], k: usize) -> Vec<f64> {
        let ranges: Vec<f64> = dims
            .iter()
            .map(|&d| {
                let (lo, hi) = data.dim_bounds(d);
                (hi - lo).max(1) as f64
            })
            .collect();
        let mut dists: Vec<f64> = (0..data.len())
            .map(|r| {
                dims.iter()
                    .zip(&ranges)
                    .map(|(&d, rg)| {
                        let delta = (point[d] as f64 - data.value(r, d) as f64) / rg;
                        delta * delta
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        dists.truncate(k);
        dists
    }

    #[test]
    fn matches_brute_force() {
        let t = table(5_000, 77);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![8, 8]))
            .build(&t);
        let searcher = KnnSearcher::new(&index, vec![0, 1]);
        for probe in [[500u64, 500, 0], [9_999, 0, 5_000], [4_321, 8_765, 1]] {
            for k in [1usize, 5, 20] {
                let got = searcher.knn(&probe, k);
                let want = brute_force(index.data(), &[0, 1], &probe, k);
                assert_eq!(got.len(), k);
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.distance - w).abs() < 1e-9,
                        "probe {probe:?} k={k}: {} vs {w}",
                        g.distance
                    );
                }
            }
        }
    }

    #[test]
    fn distance_over_all_three_dims() {
        let t = table(3_000, 99);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
            .build(&t);
        let searcher = KnnSearcher::new(&index, vec![0, 1, 2]);
        let probe = [5_000u64, 5_000, 5_000];
        let got = searcher.knn(&probe, 10);
        let want = brute_force(index.data(), &[0, 1, 2], &probe, 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_table() {
        let t = table(7, 3);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1], vec![2]))
            .build(&t);
        let searcher = KnnSearcher::new(&index, vec![0]);
        let got = searcher.knn(&[0, 0, 0], 100);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn results_sorted_by_distance() {
        let t = table(2_000, 5);
        let index = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&t);
        let searcher = KnnSearcher::new(&index, vec![0, 1]);
        let got = searcher.knn(&[100, 100, 100], 25);
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn sort_only_layout_falls_back_to_full_scan() {
        let t = table(1_000, 9);
        let index = FloodBuilder::new().layout(Layout::sort_only(2)).build(&t);
        let searcher = KnnSearcher::new(&index, vec![0, 1]);
        let got = searcher.knn(&[42, 42, 42], 3);
        let want = brute_force(index.data(), &[0, 1], &[42, 42, 42], 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w).abs() < 1e-9);
        }
    }
}
