//! Soft functional dependencies between dimensions — detection and
//! exploitation (an **extension** beyond the Flood paper, following the
//! correlation ideas of Tsunami (arXiv 2006.13282) and COAX
//! (arXiv 2006.16393)).
//!
//! Real multi-dimensional data is rarely independent: a "dependent"
//! dimension often tracks a "host" dimension up to a bounded residual
//! (ship date ≈ receipt date + a few days). Flood's grid treats the two as
//! independent, so it spends columns on both and projects rectangles over
//! a diagonal support — most projected cells are empty or boundary cells.
//!
//! This module implements the three stages the optimizer and the index use
//! to exploit such **soft functional dependencies** (soft FDs):
//!
//! 1. **Detection** ([`CorrelationModel::detect`]): on a deterministic row
//!    sample, sort each (host, dep) pair by the host value, split into
//!    host-quantile buckets, and fit a trimmed `[lo, hi]` envelope of the
//!    dependent values per bucket (a monotone piecewise-constant fit with
//!    residual bounds, COAX-style). The fit is scored by *strength*
//!    (1 − mean envelope width / global dep width) and *outlier rate*
//!    (fraction of sampled rows outside their bucket's envelope).
//! 2. **Collapse / re-weight** (the optimizer, see `optimizer::search`):
//!    strong fits collapse the dependent dimension out of the candidate
//!    grid — its predicates are routed through the host dimension by
//!    [`CorrelationModel::rewrite`] — while mid-strength fits only shrink
//!    the dependent dimension's column budget in the gradient search.
//! 3. **Residual check** (`CorrSupport`, built inside
//!    `FloodIndex::build`): the index rebuilds *exact* envelopes over the
//!    **full** table (per host grid column, or per host-value bucket when
//!    the host is the sort dimension) plus the exact sorted set of rows
//!    outside their envelope (*outlier rows*). At query time a filter on
//!    a collapsed dimension tightens the projection to the host columns
//!    whose envelope intersects the filter; outlier rows whose dependent
//!    value matches the filter are re-added **individually** with full
//!    per-point checks (so residual cost is bounded by the outlier count,
//!    never by cell size), and the dependent dimension's own bound is
//!    still verified per point by the scan kernels (`scan_checked_dims*`)
//!    — so results are bit-identical to a correlation-off index over the
//!    same layout.
//!
//! Everything is behind [`CorrelationConfig::enabled`] (default **on**);
//! disabled, detection returns an empty model and every hook degenerates
//! to the pre-correlation code path, bit for bit.

use flood_store::{RangeQuery, Table};
use serde::{Deserialize, Serialize};

use crate::grid::Grid;
use crate::layout::Layout;

/// Knobs for soft-FD detection and exploitation. Carried by both
/// `OptimizerConfig` (collapse / re-weight during the layout search) and
/// `FloodConfig` (projection tightening + residual checks at query time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Master switch. Off ⇒ no detection, no rewriting, no tightening —
    /// bit-identical to the pre-correlation system.
    pub enabled: bool,
    /// Detection sample size (rows). Detection cost is
    /// `O(dims² · sample · log sample)`; the envelopes the *index* uses
    /// for tightening are always rebuilt exactly over the full table.
    pub sample: usize,
    /// Host-quantile buckets for the monotone envelope fit (fewer buckets
    /// are used when the sample is small).
    pub buckets: usize,
    /// Collapse threshold: dependents whose fit strength reaches this are
    /// removed from the candidate grid and routed through their host.
    pub min_strength: f64,
    /// Re-weight band: fits in `[reweight_strength, min_strength)` keep
    /// the dependent dimension in the grid but cap its column budget to
    /// `max_col_log2 · (1 − strength)`.
    pub reweight_strength: f64,
    /// Maximum tolerated fraction of rows outside their bucket envelope;
    /// also the trim budget when fitting envelopes (half per side).
    pub max_outlier_rate: f64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            enabled: true,
            sample: 4_096,
            buckets: 48,
            min_strength: 0.9,
            reweight_strength: 0.5,
            max_outlier_rate: 0.02,
        }
    }
}

/// A detected soft functional dependency: `dep ≈ f(host)` for a monotone
/// piecewise-constant `f` with bounded residual.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftFd {
    /// The dimension the dependent is routed through.
    pub host: usize,
    /// The dependent dimension.
    pub dep: usize,
    /// 1 − mean bucket-envelope width / global dependent width, in
    /// `[0, 1]`; 1.0 is an exact (sampled) functional dependency.
    pub strength: f64,
    /// Fraction of sampled rows outside their bucket's envelope.
    pub outlier_rate: f64,
    /// Strong enough to collapse (vs. merely re-weight)?
    pub collapse: bool,
}

/// The per-bucket envelope backing one detected FD: bucket `b` covers host
/// values `[host_lo[b], host_hi[b]]` and its sampled dependents fall in
/// `[dep_lo[b], dep_hi[b]]` (outliers excepted).
#[derive(Debug, Clone, PartialEq)]
struct FdEnvelope {
    host_lo: Vec<u64>,
    host_hi: Vec<u64>,
    dep_lo: Vec<u64>,
    dep_hi: Vec<u64>,
}

impl FdEnvelope {
    /// Host range covering every bucket whose dependent envelope
    /// intersects `[lo, hi]`; `None` when no bucket does.
    fn translate(&self, lo: u64, hi: u64) -> Option<(u64, u64)> {
        let mut out: Option<(u64, u64)> = None;
        for b in 0..self.host_lo.len() {
            if self.dep_lo[b] <= hi && lo <= self.dep_hi[b] {
                out = Some(match out {
                    None => (self.host_lo[b], self.host_hi[b]),
                    Some((a, z)) => (a.min(self.host_lo[b]), z.max(self.host_hi[b])),
                });
            }
        }
        out
    }
}

/// The set of soft FDs detected on one table (sample), with enough fit
/// state to translate dependent-dimension predicates into host ranges.
///
/// Assignments are acyclic and functional: each dependent has at most one
/// host, no dimension is simultaneously a host and a dependent (no
/// chains), chosen greedily by descending strength with deterministic
/// tie-breaks.
#[derive(Debug, Clone, Default)]
pub struct CorrelationModel {
    fds: Vec<SoftFd>,
    envelopes: Vec<FdEnvelope>,
}

/// One candidate pair fit, before the greedy assignment.
struct PairFit {
    fd: SoftFd,
    env: FdEnvelope,
}

/// Fit a trimmed monotone envelope to `pairs` (already `(host, dep)`,
/// unsorted). Returns `None` when the sample is too small to trust.
fn fit_pair(mut pairs: Vec<(u64, u64)>, cfg: &CorrelationConfig) -> Option<(f64, f64, FdEnvelope)> {
    let n = pairs.len();
    if n < 64 {
        return None;
    }
    pairs.sort_unstable();
    let k = cfg.buckets.clamp(1, n / 16);
    let mut env = FdEnvelope {
        host_lo: Vec::with_capacity(k),
        host_hi: Vec::with_capacity(k),
        dep_lo: Vec::with_capacity(k),
        dep_hi: Vec::with_capacity(k),
    };
    let mut width_sum = 0.0f64;
    let mut deps: Vec<u64> = Vec::with_capacity(n / k + 1);
    for b in 0..k {
        let (s, e) = (b * n / k, (b + 1) * n / k);
        deps.clear();
        deps.extend(pairs[s..e].iter().map(|&(_, d)| d));
        deps.sort_unstable();
        // Adaptive trim: even small buckets must shed their extremes (one
        // broken row blows the envelope up to the global width and masks a
        // strong fit), but clean buckets keep every row.
        let t = adaptive_trim(&deps, cfg.max_outlier_rate);
        let (lo, hi) = (deps[t], deps[deps.len() - 1 - t]);
        env.host_lo.push(pairs[s].0);
        env.host_hi.push(pairs[e - 1].0);
        env.dep_lo.push(lo);
        env.dep_hi.push(hi);
        width_sum += (hi - lo) as f64;
    }
    // Outliers: rows *well* outside their bucket's envelope — beyond half
    // an envelope width of margin. Trimmed edge rows sit just outside the
    // envelope by construction and must not count as evidence of a broken
    // dependency, while genuinely broken rows (drawn far from the fit)
    // land past the margin regardless of how much the trim absorbed.
    let mut outliers = 0usize;
    for b in 0..k {
        let (s, e) = (b * n / k, (b + 1) * n / k);
        let margin = (env.dep_hi[b] - env.dep_lo[b]) / 2;
        let lo = env.dep_lo[b].saturating_sub(margin);
        let hi = env.dep_hi[b].saturating_add(margin);
        outliers += pairs[s..e]
            .iter()
            .filter(|&&(_, d)| d < lo || d > hi)
            .count();
    }
    let global_lo = env.dep_lo.iter().min().copied().unwrap_or(0);
    let global_hi = env.dep_hi.iter().max().copied().unwrap_or(0);
    let global_w = (global_hi - global_lo) as f64;
    let strength = if global_w == 0.0 {
        1.0
    } else {
        (1.0 - width_sum / k as f64 / global_w).clamp(0.0, 1.0)
    };
    Some((strength, outliers as f64 / n as f64, env))
}

impl CorrelationModel {
    /// Detect soft FDs on a deterministic stride sample of `table`
    /// (≤ `cfg.sample` rows). The empty model when disabled or the table
    /// is too small.
    pub fn detect(table: &Table, cfg: &CorrelationConfig) -> Self {
        Self::detect_hosted(table, cfg, None)
    }

    /// [`CorrelationModel::detect`] with host candidates restricted to
    /// `hosts` (when given). A linear dependency fits equally well in both
    /// directions, so unrestricted detection picks its host by sampling
    /// noise; the index restricts hosts to the layout's indexed dimensions
    /// so every detected FD is one its grid or sort order can exploit.
    pub fn detect_hosted(table: &Table, cfg: &CorrelationConfig, hosts: Option<&[usize]>) -> Self {
        let n = table.len();
        if !cfg.enabled || n < 64 || table.dims() < 2 {
            return Self::default();
        }
        let take = cfg.sample.clamp(1, n);
        let stride = n / take;
        let rows: Vec<usize> = (0..take).map(|i| i * stride).collect();
        Self::detect_impl(table, &rows, cfg, hosts)
    }

    /// Detect soft FDs on an explicit row sample (the optimizer reuses the
    /// rows its `DataSample` already drew).
    pub fn detect_rows(table: &Table, rows: &[usize], cfg: &CorrelationConfig) -> Self {
        Self::detect_impl(table, rows, cfg, None)
    }

    fn detect_impl(
        table: &Table,
        rows: &[usize],
        cfg: &CorrelationConfig,
        hosts: Option<&[usize]>,
    ) -> Self {
        let d = table.dims();
        if !cfg.enabled || rows.len() < 64 || d < 2 {
            return Self::default();
        }
        let mut fits: Vec<PairFit> = Vec::new();
        for host in 0..d {
            if hosts.is_some_and(|hs| !hs.contains(&host)) {
                continue;
            }
            for dep in 0..d {
                if dep == host {
                    continue;
                }
                let pairs: Vec<(u64, u64)> = rows
                    .iter()
                    .map(|&r| (table.value(r, host), table.value(r, dep)))
                    .collect();
                if let Some((strength, outlier_rate, env)) = fit_pair(pairs, cfg) {
                    if strength >= cfg.reweight_strength && outlier_rate <= cfg.max_outlier_rate {
                        fits.push(PairFit {
                            fd: SoftFd {
                                host,
                                dep,
                                strength,
                                outlier_rate,
                                collapse: strength >= cfg.min_strength,
                            },
                            env,
                        });
                    }
                }
            }
        }
        // Greedy assignment, strongest first; deterministic tie-break on
        // (host, dep). Each dependent gets one host; a host may serve many
        // dependents; no dimension is both (no chains, no cycles).
        fits.sort_by(|a, b| {
            b.fd.strength
                .partial_cmp(&a.fd.strength)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.fd.host, a.fd.dep).cmp(&(b.fd.host, b.fd.dep)))
        });
        let mut model = Self::default();
        let mut is_dep = vec![false; d];
        let mut is_host = vec![false; d];
        for f in fits {
            if is_dep[f.fd.dep] || is_host[f.fd.dep] || is_dep[f.fd.host] {
                continue;
            }
            is_dep[f.fd.dep] = true;
            is_host[f.fd.host] = true;
            model.fds.push(f.fd);
            model.envelopes.push(f.env);
        }
        model
    }

    /// No dependencies detected (also the disabled case).
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Every detected dependency, strongest first.
    pub fn fds(&self) -> &[SoftFd] {
        &self.fds
    }

    /// Whether `dim` is the dependent of a collapse-grade FD.
    pub fn is_collapsed_dep(&self, dim: usize) -> bool {
        self.fds.iter().any(|f| f.collapse && f.dep == dim)
    }

    /// Strength of the re-weight-grade FD whose dependent is `dim`, if any.
    pub fn reweight_strength_of(&self, dim: usize) -> Option<f64> {
        self.fds
            .iter()
            .find(|f| !f.collapse && f.dep == dim)
            .map(|f| f.strength)
    }

    /// Translate a bound on the dependent of FD `i` into a host range
    /// (buckets whose envelope intersects). `None`: no bucket intersects.
    pub fn translate(&self, i: usize, lo: u64, hi: u64) -> Option<(u64, u64)> {
        self.envelopes[i].translate(lo, hi)
    }

    /// Rewrite a query for layout pricing: every filter on a collapsed
    /// dependent also implies (via the envelopes) a bound on its host,
    /// intersected into the query. The dependent's own filter is kept —
    /// it still costs a per-point check. Conservative: when no bucket
    /// intersects, or the implied host range is disjoint from an existing
    /// host bound, the query is left unchanged.
    pub fn rewrite(&self, q: &RangeQuery) -> RangeQuery {
        let mut out = q.clone();
        for (i, f) in self.fds.iter().enumerate() {
            if !f.collapse {
                continue;
            }
            if let Some((lo, hi)) = q.bound(f.dep) {
                if let Some((tlo, thi)) = self.translate(i, lo, hi) {
                    out.tighten(f.host, tlo, thi);
                }
            }
        }
        out
    }

    /// [`CorrelationModel::rewrite`] over a whole workload.
    pub fn rewrite_all(&self, qs: &[RangeQuery]) -> Vec<RangeQuery> {
        qs.iter().map(|q| self.rewrite(q)).collect()
    }
}

/// Where a supported FD's host sits in the index layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HostSlot {
    /// Grid dimension at this position of the layout ordering.
    Grid(usize),
    /// The sort dimension.
    Sort,
}

/// One FD's exact, full-table support inside a built index: dependent
/// envelopes per host grid column (or per host-value bucket when the host
/// is the sort dimension) and the sorted set of rows falling outside their
/// envelope.
#[derive(Debug, Clone)]
pub(crate) struct FdSupport {
    pub fd: SoftFd,
    pub slot: HostSlot,
    /// Per column (Grid) or per bucket (Sort): dependent envelope; only
    /// meaningful where `present`.
    env_lo: Vec<u64>,
    env_hi: Vec<u64>,
    present: Vec<bool>,
    /// Sort host only: bucket `b` covers host values `(cuts[b-1], cuts[b]]`
    /// (`min_host` floors bucket 0).
    cuts: Vec<u64>,
    min_host: u64,
    /// Rows (indices into the *reordered* table) outside their envelope,
    /// as `(dep value, row, cell)` sorted by value: the residual pass
    /// binary searches the dependent filter's bound, so query-time residual
    /// work is proportional to the *matching* outliers, never to cell
    /// sizes — and the precomputed cell id spares it a `cell_starts`
    /// search per row.
    pub outliers: Vec<(u64, u32, u32)>,
}

impl FdSupport {
    /// Host *column* range covering every column whose envelope intersects
    /// the dependent bound `[lo, hi]`. `None`: no non-outlier row can
    /// match — only the outlier rows need visiting.
    pub fn translate_cols(&self, lo: u64, hi: u64) -> Option<(usize, usize)> {
        debug_assert!(matches!(self.slot, HostSlot::Grid(_)));
        let mut out: Option<(usize, usize)> = None;
        for c in 0..self.present.len() {
            if self.present[c] && self.env_lo[c] <= hi && lo <= self.env_hi[c] {
                out = Some(match out {
                    None => (c, c),
                    Some((a, _)) => (a, c),
                });
            }
        }
        out
    }

    /// Host *value* range covering every bucket whose envelope intersects
    /// the dependent bound. `None`: no non-outlier row can match.
    pub fn translate_sort(&self, lo: u64, hi: u64) -> Option<(u64, u64)> {
        debug_assert!(matches!(self.slot, HostSlot::Sort));
        let mut first: Option<usize> = None;
        let mut last = 0usize;
        for b in 0..self.present.len() {
            if self.present[b] && self.env_lo[b] <= hi && lo <= self.env_hi[b] {
                first.get_or_insert(b);
                last = b;
            }
        }
        let first = first?;
        let vlo = if first == 0 {
            self.min_host
        } else {
            self.cuts[first - 1].saturating_add(1)
        };
        Some((vlo, self.cuts[last]))
    }

    /// Rows whose dependent value falls in `[lo, hi]`, ascending by value.
    pub fn outliers_in(&self, lo: u64, hi: u64) -> &[(u64, u32, u32)] {
        let a = self.outliers.partition_point(|&(v, _, _)| v < lo);
        let b = self.outliers.partition_point(|&(v, _, _)| v <= hi);
        &self.outliers[a..b]
    }

    /// Whether `row` is outside its envelope (test support).
    #[cfg(test)]
    pub fn is_outlier_row(&self, row: u32) -> bool {
        self.outliers.iter().any(|&(_, r, _)| r == row)
    }
}

/// All exploitable FDs of one built index. Detection runs on a sample;
/// the envelopes and outlier sets here are **exact** over the full
/// (reordered) table, which is what makes query-time tightening lossless.
#[derive(Debug, Clone, Default)]
pub(crate) struct CorrSupport {
    pub fds: Vec<FdSupport>,
}

impl CorrSupport {
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Detect FDs on `data` (the reordered table) and build exact support
    /// for every collapse-grade FD whose host is indexed by `layout`.
    pub fn build(
        cfg: &CorrelationConfig,
        layout: &Layout,
        grid: &Grid,
        data: &Table,
        cell_starts: &[u32],
    ) -> Self {
        if !cfg.enabled || data.is_empty() {
            return Self::default();
        }
        // Restrict hosts to indexed dimensions: a symmetric (e.g. linear)
        // dependency then resolves in the direction the layout can exploit
        // instead of whichever direction sampling noise favoured.
        let model = CorrelationModel::detect_hosted(data, cfg, Some(layout.order()));
        let mut out = Self::default();
        for f in model.fds() {
            // Exploit an FD when its dependent is *not* indexed (the
            // optimizer collapsed it — or never indexed it — so envelope
            // tightening is the only acceleration its filters get, at any
            // strength), or when the fit is collapse-grade (tight enough
            // to out-tighten the dependent's own grid columns). A mid
            // strength FD over an indexed dependent is pure overhead: the
            // grid already handles those filters.
            if !f.collapse && layout.order().contains(&f.dep) {
                continue;
            }
            let slot = if layout.has_sort_dim() && layout.sort_dim() == f.host {
                HostSlot::Sort
            } else {
                match layout.grid_dims().iter().position(|&d| d == f.host) {
                    Some(i) => HostSlot::Grid(i),
                    None => continue, // host unindexed: nothing to tighten
                }
            };
            let support = match slot {
                HostSlot::Grid(i) => build_grid_support(*f, i, cfg, grid, data, cell_starts),
                HostSlot::Sort => build_sort_support(*f, cfg, data, cell_starts),
            };
            // A dependency whose exact outlier set is large (the sample
            // under-reported how dirty the pair is) costs more to patch
            // per query than it saves — drop it rather than exploit it.
            if support.outliers.len() * 8 > data.len() {
                continue;
            }
            out.fds.push(support);
        }
        out
    }
}

/// Smallest per-side trim whose envelope is within 25% of the width at the
/// maximum trim (the outlier budget plus 3σ of slack): clean columns keep
/// every row — no residual rows at all — while dirty columns shed just
/// their broken rows instead of letting one of them stretch the envelope
/// to the global width.
fn adaptive_trim(sorted: &[u64], rate: f64) -> usize {
    let len = sorted.len();
    let m = len as f64 * rate * 0.5;
    let t_max = ((m + 3.0 * m.sqrt()).ceil() as usize).min(len.saturating_sub(1) / 2);
    let target = (sorted[len - 1 - t_max] - sorted[t_max]) as f64 * 1.25;
    (0..=t_max)
        .find(|&t| ((sorted[len - 1 - t] - sorted[t]) as f64) <= target)
        .unwrap_or(t_max)
}

/// Exact per-host-column envelopes: rows are contiguous per cell after the
/// build reorder, and a cell's host column is a coordinate of its id.
fn build_grid_support(
    fd: SoftFd,
    pos: usize,
    cfg: &CorrelationConfig,
    grid: &Grid,
    data: &Table,
    cell_starts: &[u32],
) -> FdSupport {
    let ncols = grid.cols()[pos];
    let mut per_col: Vec<Vec<u64>> = vec![Vec::new(); ncols];
    for cell in 0..grid.num_cells() {
        let (s, e) = (cell_starts[cell] as usize, cell_starts[cell + 1] as usize);
        if s == e {
            continue;
        }
        let col = grid.cell_coords(cell)[pos];
        per_col[col].extend((s..e).map(|r| data.value(r, fd.dep)));
    }
    let mut env_lo = vec![0u64; ncols];
    let mut env_hi = vec![0u64; ncols];
    let mut present = vec![false; ncols];
    for (c, vals) in per_col.iter_mut().enumerate() {
        if vals.is_empty() {
            continue;
        }
        vals.sort_unstable();
        let t = adaptive_trim(vals, cfg.max_outlier_rate);
        env_lo[c] = vals[t];
        env_hi[c] = vals[vals.len() - 1 - t];
        present[c] = true;
    }
    // Exact outlier set: every row outside its column's envelope, keyed
    // by dependent value for the residual pass's binary search.
    let mut outliers = Vec::new();
    for cell in 0..grid.num_cells() {
        let (s, e) = (cell_starts[cell] as usize, cell_starts[cell + 1] as usize);
        if s == e {
            continue;
        }
        let col = grid.cell_coords(cell)[pos];
        let (lo, hi) = (env_lo[col], env_hi[col]);
        for r in s..e {
            let v = data.value(r, fd.dep);
            if v < lo || v > hi {
                outliers.push((v, r as u32, cell as u32));
            }
        }
    }
    outliers.sort_unstable();
    FdSupport {
        fd,
        slot: HostSlot::Grid(pos),
        env_lo,
        env_hi,
        present,
        cuts: Vec::new(),
        min_host: 0,
        outliers,
    }
}

/// Exact envelopes over host-value quantile buckets when the host is the
/// sort dimension (there are no host columns to key on).
fn build_sort_support(
    fd: SoftFd,
    cfg: &CorrelationConfig,
    data: &Table,
    cell_starts: &[u32],
) -> FdSupport {
    let n = data.len();
    let mut vals: Vec<u64> = (0..n).map(|r| data.value(r, fd.host)).collect();
    vals.sort_unstable();
    let k = cfg.buckets.clamp(1, n.max(1));
    let mut cuts: Vec<u64> = (0..k).map(|b| vals[(b + 1) * n / k - 1]).collect();
    cuts.dedup();
    let min_host = vals[0];
    let nb = cuts.len();
    let bucket_of = |v: u64| -> usize { cuts.partition_point(|&c| c < v).min(nb - 1) };

    let mut per_bucket: Vec<Vec<u64>> = vec![Vec::new(); nb];
    for r in 0..n {
        per_bucket[bucket_of(data.value(r, fd.host))].push(data.value(r, fd.dep));
    }
    let mut env_lo = vec![0u64; nb];
    let mut env_hi = vec![0u64; nb];
    let mut present = vec![false; nb];
    for (b, deps) in per_bucket.iter_mut().enumerate() {
        if deps.is_empty() {
            continue;
        }
        deps.sort_unstable();
        let t = adaptive_trim(deps, cfg.max_outlier_rate);
        env_lo[b] = deps[t];
        env_hi[b] = deps[deps.len() - 1 - t];
        present[b] = true;
    }
    let mut outliers = Vec::new();
    let mut cell = 0usize; // rows are cell-contiguous: one monotone cursor
    for r in 0..n {
        while cell_starts[cell + 1] as usize <= r {
            cell += 1;
        }
        let b = bucket_of(data.value(r, fd.host));
        let v = data.value(r, fd.dep);
        if v < env_lo[b] || v > env_hi[b] {
            outliers.push((v, r as u32, cell as u32));
        }
    }
    outliers.sort_unstable();
    FdSupport {
        fd,
        slot: HostSlot::Sort,
        env_lo,
        env_hi,
        present,
        cuts,
        min_host,
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// host uniform, dep = host/2 + noise in [0, w), optional outliers.
    fn correlated_table(n: usize, w: u64, outlier_every: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut host = Vec::with_capacity(n);
        let mut dep = Vec::with_capacity(n);
        let mut indep = Vec::with_capacity(n);
        for i in 0..n {
            let h: u64 = rng.gen_range(0..1_000_000);
            let d = if outlier_every > 0 && i % outlier_every == 0 {
                rng.gen_range(0..1_000_000)
            } else {
                h / 2 + rng.gen_range(0..w.max(1))
            };
            host.push(h);
            dep.push(d);
            indep.push(rng.gen_range(0..1_000_000));
        }
        Table::from_columns(vec![host, dep, indep])
    }

    /// host uniform, dep = |host − 500k|/2 + noise in [0, w): a vee-shaped
    /// dependency. Unlike a linear relation (where both directions have the
    /// same relative residual and quantization noise picks the winner),
    /// this one is only functional host→dep — the inverse maps each dep
    /// value to two distant host branches — so the detected direction is
    /// decidable.
    fn vee_table(n: usize, w: u64, outlier_every: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut host = Vec::with_capacity(n);
        let mut dep = Vec::with_capacity(n);
        let mut indep = Vec::with_capacity(n);
        for i in 0..n {
            let h: u64 = rng.gen_range(0..1_000_000);
            let d = if outlier_every > 0 && i % outlier_every == 0 {
                rng.gen_range(0..1_000_000)
            } else {
                (h as i64 - 500_000).unsigned_abs() / 2 + rng.gen_range(0..w.max(1))
            };
            host.push(h);
            dep.push(d);
            indep.push(rng.gen_range(0..1_000_000));
        }
        Table::from_columns(vec![host, dep, indep])
    }

    #[test]
    fn detects_strong_dependency_and_direction() {
        let t = vee_table(4_000, 1_000, 0, 7);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        assert!(
            m.fds()
                .iter()
                .any(|f| f.host == 0 && f.dep == 1 && f.collapse),
            "expected collapse-grade 0→1 FD, got {:?}",
            m.fds()
        );
        assert!(m.is_collapsed_dep(1));
        assert!(!m.is_collapsed_dep(0));
        assert!(!m.is_collapsed_dep(2));
    }

    #[test]
    fn linear_dependency_collapses_in_one_direction() {
        // A linear relation fits equally well both ways; either direction
        // is a correct exploitation, but exactly one must be assigned.
        let t = correlated_table(4_000, 1_000, 0, 7);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        let pair: Vec<_> = m
            .fds()
            .iter()
            .filter(|f| f.collapse && f.host != 2 && f.dep != 2)
            .collect();
        assert_eq!(pair.len(), 1, "got {:?}", m.fds());
        assert!(!m.is_collapsed_dep(2));
    }

    #[test]
    fn independent_dimensions_stay_unassigned() {
        let mut rng = StdRng::seed_from_u64(3);
        let cols: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..4_000).map(|_| rng.gen_range(0..1_000_000)).collect())
            .collect();
        let t = Table::from_columns(cols);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        assert!(m.is_empty(), "spurious FDs: {:?}", m.fds());
    }

    #[test]
    fn disabled_config_detects_nothing() {
        let t = correlated_table(2_000, 100, 0, 7);
        let cfg = CorrelationConfig {
            enabled: false,
            ..Default::default()
        };
        assert!(CorrelationModel::detect(&t, &cfg).is_empty());
    }

    #[test]
    fn outlier_rate_threshold_rejects_noisy_fits() {
        // Every 10th row breaks the dependency: ~10% outliers ≫ 2% budget.
        let t = correlated_table(4_000, 1_000, 10, 7);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        assert!(
            !m.fds().iter().any(|f| f.host == 0 && f.dep == 1),
            "10% outliers must not pass: {:?}",
            m.fds()
        );
    }

    #[test]
    fn detection_is_deterministic() {
        let t = correlated_table(3_000, 500, 0, 11);
        let cfg = CorrelationConfig::default();
        let a = CorrelationModel::detect(&t, &cfg);
        let b = CorrelationModel::detect(&t, &cfg);
        assert_eq!(a.fds(), b.fds());
    }

    #[test]
    fn no_chains_or_shared_roles() {
        // dim1 = f(dim0), dim2 = g(dim1) — transitively correlated; the
        // greedy assignment must not make dim1 both host and dependent.
        let mut rng = StdRng::seed_from_u64(5);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        for _ in 0..4_000 {
            let h: u64 = rng.gen_range(0..1_000_000);
            let a = h + rng.gen_range(0u64..500);
            let b = a / 2 + rng.gen_range(0u64..300);
            c0.push(h);
            c1.push(a);
            c2.push(b);
        }
        let t = Table::from_columns(vec![c0, c1, c2]);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        assert!(!m.is_empty());
        for f in m.fds() {
            assert!(
                !m.fds().iter().any(|g| g.dep == f.host),
                "chained assignment: {:?}",
                m.fds()
            );
            assert_eq!(
                m.fds().iter().filter(|g| g.dep == f.dep).count(),
                1,
                "dependent with two hosts: {:?}",
                m.fds()
            );
        }
    }

    #[test]
    fn rewrite_routes_dep_bound_through_host() {
        let t = vee_table(4_000, 1_000, 0, 7);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        assert!(m.is_collapsed_dep(1));
        let q = RangeQuery::all(3).with_range(1, 100_000, 110_000);
        let rq = m.rewrite(&q);
        // The dependent's own bound is kept (still checked per point)...
        assert_eq!(rq.bound(1), Some((100_000, 110_000)));
        // ...and a host bound appears. dep = |host − 500k|/2 + [0, 1000)
        // means matching hosts sit in [280k, 302k] ∪ [698k, 720k]; the
        // translated bound must cover both branches (plus bucket slack)...
        let (hlo, hhi) = rq.bound(0).expect("host bound implied");
        assert!(hlo <= 281_000 && hhi >= 719_000, "({hlo}, {hhi})");
        // ...while still being a useful restriction on the 1M domain.
        assert!(hlo >= 150_000 && hhi <= 850_000, "({hlo}, {hhi})");
    }

    #[test]
    fn rewrite_is_identity_without_fds() {
        let m = CorrelationModel::default();
        let q = RangeQuery::all(2).with_range(0, 5, 10);
        assert_eq!(m.rewrite(&q), q);
    }

    #[test]
    fn constant_dependent_is_a_perfect_fit() {
        let n = 2_000;
        let host: Vec<u64> = (0..n as u64).collect();
        let dep = vec![42u64; n];
        let mut rng = StdRng::seed_from_u64(9);
        let indep: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        let t = Table::from_columns(vec![host, dep, indep]);
        let m = CorrelationModel::detect(&t, &CorrelationConfig::default());
        let f = m
            .fds()
            .iter()
            .find(|f| f.dep == 1)
            .expect("constant column collapses");
        assert_eq!(f.strength, 1.0);
        assert!(f.collapse);
    }

    #[test]
    fn support_envelopes_are_exact_over_the_full_table() {
        // Build support for a tiny grid-hosted FD and verify the exactness
        // invariant directly: every row is inside its column's envelope or
        // listed in the outlier-row set.
        let t = vee_table(2_000, 800, 97, 13);
        let layout = Layout::new(vec![0, 2], vec![8]);
        let grid = Grid::new(&layout);
        // Reorder the way FloodIndex::build does (uniform flattening is
        // fine for the invariant).
        let flattener = crate::flatten::Flattener::build(
            &t,
            layout.grid_dims(),
            crate::flatten::Flattening::Uniform,
        );
        let mut keyed: Vec<(u64, u64, u32)> = (0..t.len())
            .map(|r| {
                let col = flattener.bucket(0, t.value(r, 0), 8);
                (col as u64, t.value(r, 2), r as u32)
            })
            .collect();
        keyed.sort_unstable();
        let perm: Vec<u32> = keyed.iter().map(|&(_, _, r)| r).collect();
        let data = t.permuted(&perm);
        let mut cell_starts = vec![0u32; grid.num_cells() + 1];
        for &(cell, _, _) in &keyed {
            cell_starts[cell as usize + 1] += 1;
        }
        for i in 0..grid.num_cells() {
            cell_starts[i + 1] += cell_starts[i];
        }
        let support = CorrSupport::build(
            &CorrelationConfig::default(),
            &layout,
            &grid,
            &data,
            &cell_starts,
        );
        let Some(fd) = support.fds.iter().find(|s| s.fd.host == 0 && s.fd.dep == 1) else {
            // Outliers every 97 rows ≈ 1% — inside the 2% budget, so the
            // FD should be detected; if thresholds change, fail loudly.
            panic!("expected grid-hosted FD support, got {:?}", support.fds);
        };
        for cell in 0..grid.num_cells() {
            let (s, e) = (cell_starts[cell] as usize, cell_starts[cell + 1] as usize);
            for r in s..e {
                if fd.is_outlier_row(r as u32) {
                    continue;
                }
                let v = data.value(r, 1);
                let (lo, hi) = match fd.translate_cols(v, v) {
                    Some(range) => range,
                    None => panic!("non-outlier value {v} outside every envelope"),
                };
                let col = grid.cell_coords(cell)[0];
                assert!(
                    (lo..=hi).contains(&col),
                    "row {r} (dep {v}) in col {col} outside translated [{lo}, {hi}]"
                );
            }
        }
        // Row-granular means the residual set stays near the injected ~1%
        // rate instead of inflating to whole cells.
        assert!(
            fd.outliers.len() < data.len() / 20,
            "outlier set too large: {} of {}",
            fd.outliers.len(),
            data.len()
        );
    }
}
