//! Grid arithmetic: mapping column tuples to cell ids and enumerating the
//! cells that intersect a query rectangle (§3.2.1 projection).
//!
//! Cells are numbered row-major along the layout's dimension ordering, i.e.
//! "a depth-first traversal of the cells along the dimension ordering"
//! (§3.1): `order[0]` is the outermost (largest stride) dimension.

use crate::layout::Layout;
use serde::{Deserialize, Serialize};

/// Precomputed strides for a layout's grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    cols: Vec<usize>,
    strides: Vec<usize>,
    num_cells: usize,
}

impl Grid {
    /// Build the grid for `layout`.
    pub fn new(layout: &Layout) -> Self {
        let cols = layout.cols().to_vec();
        let mut strides = vec![1usize; cols.len()];
        for i in (0..cols.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * cols[i + 1];
        }
        let num_cells = cols.iter().product::<usize>().max(1);
        Grid {
            cols,
            strides,
            num_cells,
        }
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of grid dimensions.
    #[inline]
    pub fn num_grid_dims(&self) -> usize {
        self.cols.len()
    }

    /// Column counts per grid dimension (ordering positions).
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Cell id of a column tuple.
    ///
    /// # Panics
    /// Debug-panics when a column exceeds its dimension's count.
    #[inline]
    pub fn cell_id(&self, cols: &[usize]) -> usize {
        debug_assert_eq!(cols.len(), self.cols.len());
        let mut id = 0;
        for (i, &c) in cols.iter().enumerate() {
            debug_assert!(c < self.cols[i]);
            id += c * self.strides[i];
        }
        id
    }

    /// Column tuple of a cell id (diagnostics / tests).
    pub fn cell_coords(&self, mut id: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.cols.len());
        for &s in &self.strides {
            out.push(id / s);
            id %= s;
        }
        out
    }

    /// Whether cell `id`'s coordinates all lie inside the inclusive
    /// per-dimension column `ranges` — [`Grid::cell_coords`] without the
    /// allocation, for per-row hot paths.
    #[inline]
    pub fn cell_in_ranges(&self, mut id: usize, ranges: &[(usize, usize)]) -> bool {
        debug_assert_eq!(ranges.len(), self.strides.len());
        for (&s, &(lo, hi)) in self.strides.iter().zip(ranges) {
            let c = id / s;
            id %= s;
            if c < lo || c > hi {
                return false;
            }
        }
        true
    }

    /// Number of cells in the hyper-rectangle spanned by the inclusive
    /// per-dimension column `ranges` (the cost model's N_c).
    pub fn cells_in_ranges(ranges: &[(usize, usize)]) -> usize {
        ranges
            .iter()
            .map(|&(lo, hi)| hi - lo + 1)
            .product::<usize>()
            .max(1)
    }

    /// Invoke `f(cell_id, cols)` for every cell in the cross product of the
    /// inclusive per-dimension column `ranges`, in ascending cell-id order.
    ///
    /// # Panics
    /// Debug-panics when a range is inverted or out of bounds.
    pub fn for_each_cell(&self, ranges: &[(usize, usize)], mut f: impl FnMut(usize, &[usize])) {
        debug_assert_eq!(ranges.len(), self.cols.len());
        if self.cols.is_empty() {
            f(0, &[]);
            return;
        }
        debug_assert!(ranges
            .iter()
            .zip(&self.cols)
            .all(|(&(lo, hi), &c)| lo <= hi && hi < c));
        let mut cur: Vec<usize> = ranges.iter().map(|&(lo, _)| lo).collect();
        let mut id = self.cell_id(&cur);
        loop {
            f(id, &cur);
            // Odometer increment, last dimension fastest (stride 1).
            let mut dim = self.cols.len();
            loop {
                if dim == 0 {
                    return;
                }
                dim -= 1;
                if cur[dim] < ranges[dim].1 {
                    cur[dim] += 1;
                    id += self.strides[dim];
                    break;
                }
                // Reset and carry.
                id -= (cur[dim] - ranges[dim].0) * self.strides[dim];
                cur[dim] = ranges[dim].0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn grid(cols: Vec<usize>) -> Grid {
        let d = cols.len() + 1;
        let order: Vec<usize> = (0..d).collect();
        Grid::new(&Layout::new(order, cols))
    }

    #[test]
    fn strides_row_major() {
        let g = grid(vec![3, 4, 5]);
        assert_eq!(g.num_cells(), 60);
        assert_eq!(g.cell_id(&[0, 0, 0]), 0);
        assert_eq!(g.cell_id(&[0, 0, 1]), 1);
        assert_eq!(g.cell_id(&[0, 1, 0]), 5);
        assert_eq!(g.cell_id(&[1, 0, 0]), 20);
        assert_eq!(g.cell_id(&[2, 3, 4]), 59);
    }

    #[test]
    fn coords_roundtrip() {
        let g = grid(vec![3, 4, 5]);
        for id in 0..60 {
            assert_eq!(g.cell_id(&g.cell_coords(id)), id);
        }
    }

    #[test]
    fn enumeration_is_sorted_and_complete() {
        let g = grid(vec![3, 4]);
        let mut seen = Vec::new();
        g.for_each_cell(&[(1, 2), (0, 3)], |id, cols| {
            assert_eq!(g.cell_coords(id), cols);
            seen.push(id);
        });
        assert_eq!(seen.len(), 8);
        assert!(
            seen.windows(2).all(|w| w[0] < w[1]),
            "not ascending: {seen:?}"
        );
        // Expected: rows 1..=2 × cols 0..=3 → ids 4..=7 and 8..=11.
        assert_eq!(seen, vec![4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn single_cell_range() {
        let g = grid(vec![4, 4]);
        let mut seen = Vec::new();
        g.for_each_cell(&[(2, 2), (3, 3)], |id, _| seen.push(id));
        assert_eq!(seen, vec![11]);
    }

    #[test]
    fn no_grid_dims_single_cell() {
        let g = Grid::new(&Layout::sort_only(0));
        assert_eq!(g.num_cells(), 1);
        let mut seen = Vec::new();
        g.for_each_cell(&[], |id, cols| {
            assert!(cols.is_empty());
            seen.push(id)
        });
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn cells_in_ranges_product() {
        assert_eq!(Grid::cells_in_ranges(&[(0, 2), (1, 1), (0, 4)]), 15);
        assert_eq!(Grid::cells_in_ranges(&[]), 1);
    }

    #[test]
    fn full_enumeration_covers_grid() {
        let g = grid(vec![2, 3, 2]);
        let mut n = 0;
        g.for_each_cell(&[(0, 1), (0, 2), (0, 1)], |_, _| n += 1);
        assert_eq!(n, g.num_cells());
    }
}
