//! Build-time configuration for a [`FloodIndex`](crate::index::FloodIndex).

use crate::correlation::CorrelationConfig;
use crate::flatten::Flattening;
use crate::layout::Layout;
use flood_learned::plm::DEFAULT_DELTA;
use flood_store::ScanMode;
use serde::{Deserialize, Serialize};

/// How refinement (§3.2.2) locates the per-cell physical sub-range over the
/// sort dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Refinement {
    /// Per-cell piecewise linear models with exponential-search
    /// rectification (§5.2 — the full Flood design).
    #[default]
    Plm,
    /// Plain binary search within each cell (the §3.2.2 baseline; the
    /// "learned per-cell models" ablation of Fig 17).
    BinarySearch,
}

/// Configuration knobs for building a Flood index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloodConfig {
    /// CDF models used to place points into grid columns.
    pub flattening: Flattening,
    /// Refinement strategy over the sort dimension.
    pub refinement: Refinement,
    /// Average-error budget δ of the per-cell PLMs (Fig 17b; default 50).
    pub plm_delta: f64,
    /// Cells smaller than this skip the PLM and always binary-search —
    /// a model on a handful of points buys nothing.
    pub plm_min_cell_size: usize,
    /// Compress the reordered data copy with block-delta encoding.
    pub compress: bool,
    /// Dimensions to pre-build cumulative SUM columns for (enables the O(1)
    /// exact-range aggregation fast path of §7.1 on those dimensions).
    pub cumulative_dims: Vec<usize>,
    /// How per-cell scans resolve filters against compressed columns
    /// (default: packed-domain, no effect on uncompressed tables).
    pub scan_mode: ScanMode,
    /// Soft-FD exploitation (Tsunami/COAX extension): detect correlated
    /// dimension pairs at build time and tighten projection/refinement
    /// through exact per-host envelopes, with residual per-point checks
    /// keeping results identical. Default on; disabled ⇒ bit-identical to
    /// the pre-correlation index.
    pub correlation: CorrelationConfig,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            flattening: Flattening::Learned,
            refinement: Refinement::Plm,
            plm_delta: DEFAULT_DELTA,
            plm_min_cell_size: 64,
            compress: false,
            cumulative_dims: Vec::new(),
            scan_mode: ScanMode::default(),
            correlation: CorrelationConfig::default(),
        }
    }
}

/// Fluent builder for [`FloodIndex`](crate::index::FloodIndex).
///
/// ```
/// use flood_core::{FloodBuilder, Layout};
/// use flood_store::Table;
///
/// let table = Table::from_columns(vec![(0..100u64).collect(), (0..100u64).rev().collect()]);
/// let index = FloodBuilder::new()
///     .layout(Layout::new(vec![0, 1], vec![4]))
///     .compress(true)
///     .build(&table);
/// assert_eq!(index.layout().num_cells(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FloodBuilder {
    layout: Option<Layout>,
    cfg: FloodConfig,
}

impl FloodBuilder {
    /// Start a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the layout (required; learn one with
    /// [`LayoutOptimizer`](crate::optimizer::LayoutOptimizer) first to get
    /// the paper's automatic path).
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Set the flattening mode (default: learned RMI CDFs).
    pub fn flattening(mut self, f: Flattening) -> Self {
        self.cfg.flattening = f;
        self
    }

    /// Set the refinement strategy (default: per-cell PLMs).
    pub fn refinement(mut self, r: Refinement) -> Self {
        self.cfg.refinement = r;
        self
    }

    /// Set the PLM error budget δ (default 50).
    pub fn plm_delta(mut self, delta: f64) -> Self {
        self.cfg.plm_delta = delta;
        self
    }

    /// Only build PLMs for cells at least this large (default 64).
    pub fn plm_min_cell_size(mut self, n: usize) -> Self {
        self.cfg.plm_min_cell_size = n;
        self
    }

    /// Store the reordered data block-delta compressed (default off).
    pub fn compress(mut self, on: bool) -> Self {
        self.cfg.compress = on;
        self
    }

    /// Pre-build a cumulative SUM column over `dim` for O(1) exact-range
    /// SUM aggregation.
    pub fn cumulative_sum(mut self, dim: usize) -> Self {
        self.cfg.cumulative_dims.push(dim);
        self
    }

    /// Select the scan kernel for compressed columns (default:
    /// [`ScanMode::Packed`]).
    pub fn scan_mode(mut self, mode: ScanMode) -> Self {
        self.cfg.scan_mode = mode;
        self
    }

    /// Configure soft-FD detection and exploitation (default: enabled with
    /// [`CorrelationConfig::default`]). Pass `enabled: false` to get the
    /// pre-correlation scan path, bit for bit.
    pub fn correlation(mut self, c: CorrelationConfig) -> Self {
        self.cfg.correlation = c;
        self
    }

    /// Current configuration (for inspection / tests).
    pub fn config(&self) -> &FloodConfig {
        &self.cfg
    }

    /// Build the index over `table` with the configured layout.
    ///
    /// # Panics
    /// Panics if no layout was provided.
    pub fn build(self, table: &flood_store::Table) -> crate::index::FloodIndex {
        let layout = self.layout.expect("FloodBuilder: layout is required");
        crate::index::FloodIndex::build(table, layout, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FloodConfig::default();
        assert_eq!(c.flattening, Flattening::Learned);
        assert_eq!(c.refinement, Refinement::Plm);
        assert_eq!(c.plm_delta, 50.0);
    }

    #[test]
    fn builder_accumulates() {
        let b = FloodBuilder::new()
            .flattening(Flattening::Uniform)
            .refinement(Refinement::BinarySearch)
            .plm_delta(10.0)
            .compress(true)
            .cumulative_sum(3);
        assert_eq!(b.config().flattening, Flattening::Uniform);
        assert_eq!(b.config().refinement, Refinement::BinarySearch);
        assert_eq!(b.config().plm_delta, 10.0);
        assert!(b.config().compress);
        assert_eq!(b.config().cumulative_dims, vec![3]);
    }

    #[test]
    #[should_panic(expected = "layout is required")]
    fn build_without_layout_panics() {
        let t = flood_store::Table::from_columns(vec![vec![1, 2, 3]]);
        let _ = FloodBuilder::new().build(&t);
    }
}
