//! # flood-core
//!
//! Flood: a learned multi-dimensional in-memory index, reproducing
//! *Learning Multi-dimensional Indexes* (Nathan, Ding, Alizadeh, Kraska —
//! SIGMOD 2020).
//!
//! Flood is a clustered index: it chooses the physical storage order of the
//! data. Given `d` indexed dimensions it:
//!
//! 1. imposes a (d−1)-dimensional **grid** over the first d−1 dimensions of a
//!    chosen ordering, and sorts points within each cell by the d-th — the
//!    *sort dimension* (§3.1);
//! 2. **flattens** each grid dimension through a learned CDF (an RMI) so
//!    every column carries roughly equal mass regardless of skew (§5.1);
//! 3. answers a query by **projection** (find intersecting cells),
//!    **refinement** (narrow each cell's physical range via a per-cell
//!    piecewise-linear model over the sort dimension), and **scan** (§3.2);
//! 4. **learns its layout** — the dimension ordering, the sort dimension and
//!    the per-dimension column counts — for a target query workload, by
//!    minimizing a cost model whose weights are predicted by random forests
//!    calibrated on the host machine (§4).
//!
//! ## Quick start
//!
//! ```
//! use flood_core::{FloodBuilder, Layout};
//! use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, Table};
//!
//! // Three attributes; we index dims {0, 1} on a grid and sort by dim 2.
//! let table = Table::from_columns(vec![
//!     (0..10_000u64).map(|i| i % 100).collect(),
//!     (0..10_000u64).map(|i| (i * 37) % 1_000).collect(),
//!     (0..10_000u64).collect(),
//! ]);
//! let layout = Layout::new(vec![0, 1, 2], vec![8, 8]);
//! let index = FloodBuilder::new().layout(layout).build(&table);
//!
//! let q = RangeQuery::all(3).with_range(0, 10, 20).with_range(2, 0, 5_000);
//! let mut count = CountVisitor::default();
//! index.execute(&q, None, &mut count);
//! assert!(count.count > 0);
//! ```
//!
//! To *learn* the layout for a workload instead of specifying one, see
//! [`optimizer::LayoutOptimizer`].

pub mod adaptive;
pub mod config;
pub mod correlation;
pub mod cost;
pub mod delta;
pub mod flatten;
pub mod grid;
pub mod index;
pub mod knn;
pub mod layout;
pub mod optimizer;

pub use adaptive::{AdaptiveConfig, AdaptiveDiagnostics, AdaptiveFlood, ObservationLog, Relearner};
pub use config::{FloodBuilder, FloodConfig, Refinement};
pub use correlation::{CorrelationConfig, CorrelationModel, SoftFd};
pub use cost::{CostModel, QueryCostEstimate, WeightModels};
pub use delta::DeltaFlood;
pub use flatten::{Flattener, Flattening};
pub use grid::Grid;
pub use index::FloodIndex;
pub use knn::{KnnSearcher, Neighbor};
pub use layout::Layout;
pub use optimizer::{CostEvaluator, EvaluatorCache, LayoutOptimizer, OptimizerConfig};
