//! Insert support via a delta buffer (§8, Insertions).
//!
//! "It could also maintain a delta index in which updates are buffered and
//! periodically merged into the data store, similar to Bigtable." —
//! [`DeltaFlood`] wraps a read-optimized [`FloodIndex`] with an unsorted
//! append buffer; queries consult both; when the buffer exceeds a threshold
//! the index is rebuilt with the buffered rows merged in (keeping the same
//! learned layout).

use crate::config::FloodConfig;
use crate::index::FloodIndex;
use crate::layout::Layout;
use flood_store::{MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};

/// A Flood index that accepts inserts through a delta buffer.
#[derive(Debug)]
pub struct DeltaFlood {
    base: FloodIndex,
    cfg: FloodConfig,
    /// Buffered rows, column-major (one Vec per dimension).
    delta: Vec<Vec<u64>>,
    merge_threshold: usize,
    merges: usize,
}

impl DeltaFlood {
    /// Build over an initial table; buffered inserts merge once the buffer
    /// reaches `merge_threshold` rows.
    pub fn build(table: &Table, layout: Layout, cfg: FloodConfig, merge_threshold: usize) -> Self {
        assert!(merge_threshold >= 1);
        let dims = table.dims();
        DeltaFlood {
            base: FloodIndex::build(table, layout, cfg.clone()),
            cfg,
            delta: vec![Vec::new(); dims],
            merge_threshold,
            merges: 0,
        }
    }

    /// Insert one row (one value per dimension). Returns `true` when the
    /// insert triggered a merge.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, row: &[u64]) -> bool {
        assert_eq!(row.len(), self.delta.len(), "row arity mismatch");
        for (col, &v) in self.delta.iter_mut().zip(row) {
            col.push(v);
        }
        if self.delta_len() >= self.merge_threshold {
            self.merge();
            true
        } else {
            false
        }
    }

    /// Rows currently sitting in the delta buffer.
    pub fn delta_len(&self) -> usize {
        self.delta.first().map_or(0, Vec::len)
    }

    /// Total rows (base + delta).
    pub fn len(&self) -> usize {
        self.base.data().len() + self.delta_len()
    }

    /// True when the structure holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of merges performed so far.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// The underlying read-optimized index.
    pub fn base(&self) -> &FloodIndex {
        &self.base
    }

    /// Merge the delta buffer into the base index (rebuild with the same
    /// layout — re-learning the layout is [`crate::adaptive`]'s job).
    pub fn merge(&mut self) {
        if self.delta_len() == 0 {
            return;
        }
        let base_data = self.base.data();
        let dims = base_data.dims();
        let mut cols: Vec<Vec<u64>> = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut col = base_data.column(d).to_vec();
            col.extend_from_slice(&self.delta[d]);
            cols.push(col);
        }
        let merged = Table::from_named_columns(cols, base_data.names().to_vec());
        self.base = FloodIndex::build(&merged, self.base.layout().clone(), self.cfg.clone());
        for col in &mut self.delta {
            col.clear();
        }
        self.merges += 1;
    }
}

impl MultiDimIndex for DeltaFlood {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        // Indexed part…
        let mut stats = self.base.execute(query, agg_dim, visitor);
        // …plus a linear pass over the (small) delta buffer. Delta rows are
        // reported with ids offset past the base data.
        let n_delta = self.delta_len();
        let base_len = self.base.data().len();
        let needs_value = visitor.needs_value();
        'rows: for i in 0..n_delta {
            for d in query.filtered_dims() {
                let v = self.delta[d][i];
                if !query.matches_dim(d, v) {
                    continue 'rows;
                }
            }
            let v = match agg_dim {
                Some(d) if needs_value => self.delta[d][i],
                _ => 0,
            };
            visitor.visit(base_len + i, v);
            stats.points_matched += 1;
        }
        stats.points_scanned += n_delta as u64;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.base.index_size_bytes() + self.delta_len() * self.delta.len() * 8
    }

    fn name(&self) -> &'static str {
        "Flood+delta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn base_table(n: u64) -> Table {
        Table::from_columns(vec![(0..n).map(|i| i % 100).collect(), (0..n).collect()])
    }

    fn count(idx: &DeltaFlood, q: &RangeQuery) -> u64 {
        let mut v = CountVisitor::default();
        idx.execute(q, None, &mut v);
        v.count
    }

    #[test]
    fn inserts_are_visible_before_merge() {
        let t = base_table(1_000);
        let mut idx = DeltaFlood::build(
            &t,
            Layout::new(vec![0, 1], vec![8]),
            FloodConfig::default(),
            100,
        );
        let q = RangeQuery::all(2).with_eq(0, 7);
        let before = count(&idx, &q);
        assert!(!idx.insert(&[7, 55_555]));
        assert_eq!(count(&idx, &q), before + 1);
        assert_eq!(idx.delta_len(), 1);
    }

    #[test]
    fn merge_triggers_at_threshold_and_preserves_results() {
        let t = base_table(2_000);
        let mut idx = DeltaFlood::build(
            &t,
            Layout::new(vec![0, 1], vec![8]),
            FloodConfig::default(),
            50,
        );
        let q = RangeQuery::all(2).with_range(0, 0, 9);
        let mut expected = count(&idx, &q);
        let mut merged = false;
        for i in 0..50u64 {
            let row = [i % 10, 1_000_000 + i];
            merged |= idx.insert(&row);
            expected += 1; // every inserted row matches 0..=9
        }
        assert!(merged, "threshold must trigger a merge");
        assert_eq!(idx.delta_len(), 0);
        assert_eq!(idx.merges(), 1);
        assert_eq!(count(&idx, &q), expected);
        assert_eq!(idx.len(), 2_050);
    }

    #[test]
    fn repeated_merges_accumulate() {
        let t = base_table(500);
        let mut idx = DeltaFlood::build(
            &t,
            Layout::new(vec![0, 1], vec![4]),
            FloodConfig::default(),
            10,
        );
        for i in 0..35u64 {
            idx.insert(&[i % 100, i]);
        }
        assert_eq!(idx.merges(), 3);
        assert_eq!(idx.len(), 535);
        assert_eq!(idx.delta_len(), 5);
        // Full count across base + delta.
        assert_eq!(count(&idx, &RangeQuery::all(2)), 535);
    }

    #[test]
    fn sum_aggregation_covers_delta() {
        use flood_store::SumVisitor;
        let t = base_table(100);
        let mut idx = DeltaFlood::build(
            &t,
            Layout::new(vec![0, 1], vec![4]),
            FloodConfig::default(),
            1_000,
        );
        idx.insert(&[5, 10_000]);
        idx.insert(&[5, 20_000]);
        let q = RangeQuery::all(2).with_eq(0, 5);
        let mut v = SumVisitor::default();
        idx.execute(&q, Some(1), &mut v);
        let base_sum: u64 = (0..100u64).filter(|i| i % 100 == 5).sum();
        assert_eq!(v.sum, base_sum + 30_000);
    }
}
