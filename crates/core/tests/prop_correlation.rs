//! Correlation exploitation must be invisible in results: for any table,
//! any injected soft functional dependency (any noise width, any broken-row
//! rate), any layout, and every visitor, a correlation-**on** index returns
//! exactly what the correlation-**off** index (and a brute-force oracle)
//! returns. Detection quality is deliberately *not* assumed — the config
//! used here is far more aggressive than the default so that weak, dirty
//! fits get exploited too, and the exact-envelope + residual-pass design
//! has to absorb them losslessly.
//!
//! `FLOOD_PROPTEST_CASES` scales the case count (CI raises it on push).

use flood_core::{
    AdaptiveConfig, AdaptiveFlood, CorrelationConfig, CostModel, FloodBuilder, FloodConfig, Layout,
    LayoutOptimizer, OptimizerConfig,
};
use flood_store::{
    CollectVisitor, CountVisitor, MinMaxVisitor, MultiDimIndex, RangeQuery, SumVisitor, Table,
};
use proptest::prelude::*;

/// Case-count override from `FLOOD_PROPTEST_CASES` (unset/invalid → default).
fn cases(default: u32) -> u32 {
    std::env::var("FLOOD_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Exploit-everything config: full-table detection sample, thresholds low
/// enough that even a noise-dominated fit is taken. Results must not care.
fn aggressive() -> CorrelationConfig {
    CorrelationConfig {
        enabled: true,
        sample: usize::MAX,
        min_strength: 0.3,
        reweight_strength: 0.1,
        max_outlier_rate: 0.1,
        ..Default::default()
    }
}

fn off() -> CorrelationConfig {
    CorrelationConfig {
        enabled: false,
        ..Default::default()
    }
}

/// 4-dim table with an injected soft FD `d1 ≈ 2·d0 + noise`, where
/// `outlier_pct`% of rows break the dependency entirely (uniform d1).
fn fd_table(n: usize, seed: u64, noise_w: u64, outlier_pct: u32) -> Table {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let host: Vec<u64> = (0..n).map(|_| next() % 10_000).collect();
    let dep: Vec<u64> = host
        .iter()
        .map(|&h| {
            if next() % 100 < outlier_pct as u64 {
                next() % 30_000 // broken row: no relation to the host
            } else {
                2 * h + next() % noise_w
            }
        })
        .collect();
    let c2: Vec<u64> = (0..n).map(|_| next() % 64).collect();
    let c3: Vec<u64> = (0..n).map(|_| next() % (1 << 20)).collect();
    Table::from_columns(vec![host, dep, c2, c3])
}

fn arb_fd_table() -> impl Strategy<Value = Table> {
    (
        40usize..400,
        any::<u64>(),
        prop_oneof![Just(1u64), Just(64), Just(4_000)],
        prop_oneof![Just(0u32), Just(5), Just(25)],
    )
        .prop_map(|(n, seed, w, o)| fd_table(n, seed, w, o))
}

/// Queries over the 4 dims; the dependent (d1) is always filtered so the
/// translate/tighten/residual machinery actually runs on every case (the
/// unfiltered-dependent path is covered by the other suites).
fn arb_query() -> impl Strategy<Value = RangeQuery> {
    let host = prop_oneof![Just(None), bound(10_000)];
    let dep = bound(26_000);
    let b2 = prop_oneof![Just(None), bound(64)];
    let b3 = prop_oneof![Just(None), bound(1 << 20)];
    (host, dep, b2, b3).prop_map(|(b0, b1, b2, b3)| {
        let mut q = RangeQuery::all(4);
        for (d, b) in [b0, b1, b2, b3].into_iter().enumerate() {
            if let Some((lo, hi)) = b {
                q = q.with_range(d, lo, hi);
            }
        }
        q
    })
}

fn bound(domain: u64) -> impl Strategy<Value = Option<(u64, u64)>> {
    (0..domain, 1..domain / 2).prop_map(|(lo, w)| Some((lo, lo + w)))
}

fn oracle_count(t: &Table, q: &RangeQuery) -> u64 {
    (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
}

/// Matching rows as value tuples (physical ids differ between layouts).
fn collected_tuples(idx: &flood_core::FloodIndex, q: &RangeQuery) -> Vec<Vec<u64>> {
    let mut v = CollectVisitor::default();
    idx.execute(q, None, &mut v);
    let mut rows: Vec<Vec<u64>> = v.rows.iter().map(|&r| idx.data().row(r)).collect();
    rows.sort_unstable();
    rows
}

/// Every visitor, on vs off vs oracle, for one (table, query, layout).
fn check_all_visitors(
    t: &Table,
    q: &RangeQuery,
    layout: Layout,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let on = FloodBuilder::new()
        .layout(layout.clone())
        .correlation(aggressive())
        .build(t);
    let off_idx = FloodBuilder::new()
        .layout(layout)
        .correlation(off())
        .build(t);

    let mut c_on = CountVisitor::default();
    let mut c_off = CountVisitor::default();
    on.execute(q, None, &mut c_on);
    off_idx.execute(q, None, &mut c_off);
    prop_assert_eq!(c_on.count, c_off.count, "COUNT diverged");
    prop_assert_eq!(c_on.count, oracle_count(t, q), "COUNT wrong vs oracle");

    let mut s_on = SumVisitor::default();
    let mut s_off = SumVisitor::default();
    on.execute(q, Some(3), &mut s_on);
    off_idx.execute(q, Some(3), &mut s_off);
    prop_assert_eq!(s_on.sum, s_off.sum, "SUM diverged");

    let mut m_on = MinMaxVisitor::default();
    let mut m_off = MinMaxVisitor::default();
    on.execute(q, Some(1), &mut m_on);
    off_idx.execute(q, Some(1), &mut m_off);
    prop_assert_eq!(
        (m_on.min, m_on.max),
        (m_off.min, m_off.max),
        "MIN/MAX diverged"
    );

    prop_assert_eq!(
        collected_tuples(&on, q),
        collected_tuples(&off_idx, q),
        "COLLECT diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// Grid-hosted exploitation: the dependent is unindexed, its host is a
    /// grid dimension, so every d1 filter routes through d0's envelopes.
    #[test]
    fn grid_hosted_on_equals_off(t in arb_fd_table(), q in arb_query()) {
        check_all_visitors(&t, &q, Layout::new(vec![0, 2, 3], vec![6, 4]))?;
    }

    /// Sort-hosted exploitation: the host is the sort dimension, so
    /// tightening goes through host-value buckets instead of grid columns.
    #[test]
    fn sort_hosted_on_equals_off(t in arb_fd_table(), q in arb_query()) {
        check_all_visitors(&t, &q, Layout::new(vec![2, 3, 0], vec![5, 4]))?;
    }

    /// The dependent indexed alongside its host: only collapse-grade fits
    /// may tighten here, and they must still change nothing.
    #[test]
    fn indexed_dep_on_equals_off(t in arb_fd_table(), q in arb_query()) {
        check_all_visitors(&t, &q, Layout::new(vec![0, 1, 2, 3], vec![4, 3, 3]))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// End-to-end: layouts *learned* with correlation on and off (the on
    /// side may collapse or re-weight the dependent) return identical
    /// results for queries the optimizer never saw.
    #[test]
    fn learned_layouts_agree_on_results(
        t in arb_fd_table(),
        train in proptest::collection::vec(arb_query(), 8),
        test in proptest::collection::vec(arb_query(), 8),
    ) {
        let learn = |enabled: bool| {
            let ocfg = OptimizerConfig {
                data_sample: usize::MAX,
                query_sample: 8,
                gd_steps: 4,
                max_total_cells: 1 << 8,
                correlation: if enabled { aggressive() } else { off() },
                ..Default::default()
            };
            let opt = LayoutOptimizer::with_config(CostModel::analytic_default(), ocfg);
            let layout = opt.optimize(&t, &train).layout;
            FloodBuilder::new()
                .layout(layout)
                .correlation(if enabled { aggressive() } else { off() })
                .build(&t)
        };
        let on = learn(true);
        let off_idx = learn(false);
        for q in &test {
            let mut v_on = CountVisitor::default();
            let mut v_off = CountVisitor::default();
            on.execute(q, None, &mut v_on);
            off_idx.execute(q, None, &mut v_off);
            prop_assert_eq!(v_on.count, v_off.count, "learned layouts diverged");
            prop_assert_eq!(v_on.count, oracle_count(&t, q), "wrong vs oracle");
        }
    }
}

/// Re-learning re-detects: an adaptive index with correlation on serves a
/// stream that drifts from host-filtering to dependent-filtering. The
/// re-learn must rebuild the support on the new layout (collapse or not)
/// and every single answer along the way must match brute force and a
/// correlation-off twin.
#[test]
fn adaptive_relearn_under_drifting_correlation_stays_exact() {
    let t = fd_table(3_000, 42, 64, 5);
    // Phase 1 filters the host; phase 2 drifts to the dependent plus an
    // independent dimension the initial layout never indexed.
    let phase1 = (0..30).map(|i| {
        let lo = (i as u64 * 977) % 9_000;
        RangeQuery::all(4).with_range(0, lo, lo + 400)
    });
    let phase2 = (0..30).map(|i| {
        let lo = (i as u64 * 977) % 16_000;
        RangeQuery::all(4).with_range(1, lo, lo + 800).with_range(
            3,
            (i as u64 * 31_337) % (1 << 19),
            1 << 19,
        )
    });
    let stream: Vec<RangeQuery> = phase1.chain(phase2).collect();
    let train: Vec<RangeQuery> = stream[..16].to_vec();

    let adaptive = |ccfg: CorrelationConfig| {
        let ocfg = OptimizerConfig {
            data_sample: usize::MAX,
            query_sample: 10,
            gd_steps: 5,
            max_total_cells: 1 << 10,
            correlation: ccfg,
            ..Default::default()
        };
        AdaptiveFlood::build(
            &t,
            &train,
            LayoutOptimizer::with_config(CostModel::analytic_default(), ocfg),
            FloodConfig {
                correlation: ccfg,
                ..Default::default()
            },
            AdaptiveConfig {
                window: 16,
                check_every: 8,
                degradation_factor: 1.0, // re-learn at every check
                share_cache: true,
            },
        )
    };
    let mut on = adaptive(aggressive());
    let mut off_twin = adaptive(off());

    for q in &stream {
        let mut v_on = CountVisitor::default();
        let mut v_off = CountVisitor::default();
        on.execute_adaptive(q, None, &mut v_on);
        off_twin.execute_adaptive(q, None, &mut v_off);
        assert_eq!(v_on.count, v_off.count, "adaptive on/off diverged");
        assert_eq!(v_on.count, oracle_count(&t, q), "adaptive wrong vs oracle");
    }
    assert!(
        on.relearns() >= 1,
        "the drifting stream must trigger at least one re-learn"
    );
}
