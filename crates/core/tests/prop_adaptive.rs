//! Adaptive re-learning under drift: the shared-cache path must be a pure
//! optimization — same decisions, same layouts, same results as the cold
//! path — and the diagnostics must prove the sharing actually happened.
//!
//! The deterministic scenario runs with `data_sample ≥ n` (the whole table
//! flattened), where cold and shared are **bit-identical** by construction:
//! the data multiset never changes across rebuilds, so a full sample gives
//! both paths identical CDFs, identical flattened queries, and
//! multiset-invariant point counts. With a partial sample the two paths
//! keep different (equally valid) samples alive, so the property test
//! checks the invariant that really matters: query *results* never depend
//! on the cache mode.

use flood_core::{
    AdaptiveConfig, AdaptiveFlood, CostModel, FloodConfig, LayoutOptimizer, OptimizerConfig,
};
use flood_store::{CountVisitor, RangeQuery, Table};
use proptest::prelude::*;

fn table(n: u64) -> Table {
    Table::from_columns(vec![
        (0..n).map(|i| (i * 7919) % 10_000).collect(),
        (0..n).map(|i| (i * 104729) % 10_000).collect(),
        (0..n).collect(),
    ])
}

fn optimizer(full_sample: bool) -> LayoutOptimizer {
    LayoutOptimizer::with_config(
        CostModel::analytic_default(),
        OptimizerConfig {
            data_sample: if full_sample { usize::MAX } else { 400 },
            query_sample: 10,
            gd_steps: 5,
            max_total_cells: 1 << 10,
            ..Default::default()
        },
    )
}

/// A two-phase drifting stream: dim-0 ranges, then dim-1 ranges.
fn drifting_stream(per_phase: usize) -> Vec<RangeQuery> {
    let phase = |dim: usize| {
        (0..per_phase).map(move |i| {
            RangeQuery::all(3).with_range(
                dim,
                (i as u64 * 53) % 9_000,
                (i as u64 * 53) % 9_000 + 180,
            )
        })
    };
    phase(0).chain(phase(1)).collect()
}

fn adaptive(
    share_cache: bool,
    full_sample: bool,
    t: &Table,
    train: &[RangeQuery],
) -> AdaptiveFlood {
    AdaptiveFlood::build(
        t,
        train,
        optimizer(full_sample),
        FloodConfig::default(),
        AdaptiveConfig {
            window: 16,
            check_every: 8,
            degradation_factor: 1.1,
            share_cache,
        },
    )
}

/// With the full table as the sample, cold and shared make bit-identical
/// decisions: same re-learn points, same layouts, same predicted baseline
/// — and the diagnostics pin down that shared did the work once while cold
/// re-flattened every time.
#[test]
fn shared_and_cold_agree_bit_for_bit_on_full_sample() {
    let t = table(3_000);
    let stream = drifting_stream(30);
    let train: Vec<RangeQuery> = stream[..16].to_vec();
    let mut cold = adaptive(false, true, &t, &train);
    let mut shared = adaptive(true, true, &t, &train);
    assert_eq!(
        cold.index().layout(),
        shared.index().layout(),
        "initial learn must agree"
    );

    for q in &stream {
        let mut vc = CountVisitor::default();
        let mut vs = CountVisitor::default();
        let (_, rc) = cold.execute_adaptive(q, None, &mut vc);
        let (_, rs) = shared.execute_adaptive(q, None, &mut vs);
        assert_eq!(rc, rs, "re-learn decisions must coincide");
        assert_eq!(vc.count, vs.count, "results must coincide");
    }

    let (dc, ds) = (cold.diagnostics(), shared.diagnostics());
    assert!(
        ds.relearns >= 1,
        "the drift must trigger a re-learn: {ds:?}"
    );
    assert_eq!(dc.relearns, ds.relearns);
    assert_eq!(dc.checks, ds.checks);
    assert_eq!(cold.index().layout(), shared.index().layout());
    assert_eq!(
        cold.baseline_cost().to_bits(),
        shared.baseline_cost().to_bits(),
        "predicted costs must be bit-identical"
    );

    // The work ledger: shared flattened once ever; cold re-flattened at
    // every check and every re-learn search.
    assert_eq!(ds.sample_flattens, 1, "{ds:?}");
    assert_eq!(
        dc.sample_flattens,
        1 + dc.checks + dc.relearn_wall.len(),
        "{dc:?}"
    );
    assert_eq!(
        ds.window_flattens,
        1 + ds.checks,
        "one per build + check: {ds:?}"
    );
    assert!(
        ds.cache_hits_across_relearns > 0,
        "the check's pricing must feed the search: {ds:?}"
    );
    assert_eq!(dc.cache_hits_across_relearns, 0, "{dc:?}");
    assert_eq!(dc.window_reuses, 0);
}

/// Re-running the same deterministic scenario reproduces the same
/// diagnostics — the counters are part of the observable contract.
#[test]
fn diagnostics_are_deterministic() {
    let t = table(2_000);
    let stream = drifting_stream(24);
    let train: Vec<RangeQuery> = stream[..16].to_vec();
    let run = || {
        let mut a = adaptive(true, true, &t, &train);
        for q in &stream {
            let mut v = CountVisitor::default();
            a.execute_adaptive(q, None, &mut v);
        }
        let mut d = a.diagnostics();
        d.relearn_wall.clear(); // wall-clock is the only nondeterministic field
        d
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `share_cache` on/off never changes what queries return, whatever the
    /// stream looks like — layouts may differ under partial samples, but
    /// layouts never change result sets.
    #[test]
    fn cache_mode_never_changes_results(
        seed in any::<u64>(),
        n_raw in 0u64..3,
        stream_len in 8usize..40,
    ) {
        let n = 600 + n_raw * 350;
        let t = table(n);
        // Seed-derived stream mixing dims and widths (vendored proptest
        // has no flat_map; derive structure from a splitmix-style stream).
        let mut x = seed | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let stream: Vec<RangeQuery> = (0..stream_len)
            .map(|_| {
                let dim = (next() % 3) as usize;
                let lo = next() % 9_000;
                let width = 50 + next() % 2_000;
                RangeQuery::all(3).with_range(dim, lo, lo + width)
            })
            .collect();
        let train: Vec<RangeQuery> = stream[..stream.len().min(8)].to_vec();

        let mut cold = adaptive(false, false, &t, &train);
        let mut shared = adaptive(true, false, &t, &train);
        for q in &stream {
            let mut vc = CountVisitor::default();
            let mut vs = CountVisitor::default();
            cold.execute_adaptive(q, None, &mut vc);
            shared.execute_adaptive(q, None, &mut vs);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            prop_assert_eq!(vc.count, truth, "cold mode must stay correct");
            prop_assert_eq!(vs.count, truth, "shared mode must stay correct");
        }
    }
}
