//! Property tests for the Flood index: equivalence with brute force under
//! every configuration axis (flattening × refinement × compression ×
//! cumulative columns), and grid/cell-table invariants.

use flood_core::{Flattening, FloodBuilder, Layout, Refinement};
use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, SumVisitor, Table};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..300, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        Table::from_columns(
            (0..3)
                .map(|d| {
                    let domain = [32u64, 5_000, 1 << 30][d];
                    (0..n).map(|_| next() % domain).collect()
                })
                .collect(),
        )
    })
}

fn arb_query() -> impl Strategy<Value = RangeQuery> {
    let bound = prop_oneof![
        Just(None),
        (0u64..5_000, 0u64..5_000).prop_map(|(a, b)| Some((a.min(b), a.max(b)))),
    ];
    proptest::collection::vec(bound, 3).prop_map(|bs| {
        let mut q = RangeQuery::all(3);
        for (d, b) in bs.into_iter().enumerate() {
            if let Some((lo, hi)) = b {
                q = q.with_range(d, lo, hi);
            }
        }
        q
    })
}

fn oracle_count(t: &Table, q: &RangeQuery) -> u64 {
    (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
}

fn oracle_sum(t: &Table, q: &RangeQuery, agg: usize) -> u64 {
    (0..t.len())
        .filter(|&r| q.matches(&t.row(r)))
        .fold(0u64, |acc, r| acc.wrapping_add(t.value(r, agg)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_configurations_match_oracle(
        t in arb_table(),
        q in arb_query(),
        uniform in any::<bool>(),
        binsearch in any::<bool>(),
        compress in any::<bool>(),
    ) {
        let mut b = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![5, 4]))
            .compress(compress);
        if uniform {
            b = b.flattening(Flattening::Uniform);
        }
        if binsearch {
            b = b.refinement(Refinement::BinarySearch);
        }
        let idx = b.build(&t);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        prop_assert_eq!(v.count, oracle_count(&t, &q));
    }

    #[test]
    fn sum_with_cumulative_matches_oracle(t in arb_table(), q in arb_query()) {
        let idx = FloodBuilder::new()
            .layout(Layout::new(vec![0, 2, 1], vec![4, 4]))
            .cumulative_sum(1)
            .build(&t);
        let mut v = SumVisitor::default();
        idx.execute(&q, Some(1), &mut v);
        prop_assert_eq!(v.sum, oracle_sum(&t, &q, 1));
    }

    #[test]
    fn sort_only_layout_matches_oracle(t in arb_table(), q in arb_query()) {
        let idx = FloodBuilder::new().layout(Layout::sort_only(1)).build(&t);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        prop_assert_eq!(v.count, oracle_count(&t, &q));
    }

    #[test]
    fn cell_table_partitions_the_data(t in arb_table()) {
        let idx = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
            .build(&t);
        // Cell sizes sum to the table size; data within each cell is sorted
        // by the sort dimension.
        let sizes = idx.cell_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), t.len());
        let data = idx.data();
        let sort_dim = idx.layout().sort_dim();
        let mut at = 0usize;
        for sz in sizes {
            for i in at + 1..at + sz {
                prop_assert!(
                    data.value(i - 1, sort_dim) <= data.value(i, sort_dim),
                    "cell not sorted at row {i}"
                );
            }
            at += sz;
        }
    }

    #[test]
    fn stats_scan_overhead_at_least_one(t in arb_table(), q in arb_query()) {
        let idx = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&t);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        if let Some(so) = stats.scan_overhead() {
            prop_assert!(so >= 1.0, "scan overhead below 1: {so}");
        }
    }
}
