//! Property suite: the incremental per-dimension statistics path is
//! **bit-identical** to a from-scratch `query_stats` over arbitrary probe
//! sequences — the invariant that lets `LayoutOptimizer` swap one in for
//! the other freely (the optimizer-search analogue of PR 3's
//! parallel ≡ serial suite).
//!
//! Each case builds one `SampleSpace` (arbitrary table, dimension count,
//! query set, sample size) and drives one persistent `StatsCache` through
//! an arbitrary sequence of `(order, cols)` probes: single-dimension moves,
//! revisits, order swaps, and indexed-dimension subsets all arise from the
//! generator. Every probe's cached statistics must equal the full scan's
//! exactly (`QueryStatistics` is compared field-for-field via `PartialEq`;
//! both paths share one arithmetic skeleton, so equal counts give equal
//! floats).
//!
//! The vendored proptest subset has no `prop_flat_map`, so the
//! dimension-dependent structures (columns, query bounds, probe orders)
//! are synthesized from drawn seeds with a splitmix-style stream — the
//! same idiom `prop_flood.rs` uses for table content.

use flood_core::optimizer::SampleSpace;
use flood_core::CorrelationConfig;
use flood_store::{RangeQuery, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Value domains cycled across dimensions: wide, narrow, tiny — so column
/// boundaries land on ties, repeated values, and near-empty marginals.
const DOMAINS: [u64; 5] = [1 << 30, 5_000, 97, 1 << 16, 33];

/// A deterministic 64-bit stream for seed-derived structure.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform draw from `[0, bound)`.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn make_table(d: usize, n: usize, seed: u64) -> Table {
    let mut s = Stream(seed | 1);
    Table::from_columns(
        (0..d)
            .map(|dim| {
                let domain = DOMAINS[dim % DOMAINS.len()];
                (0..n).map(|_| s.next() % domain).collect()
            })
            .collect(),
    )
}

/// 0–4 queries; each dimension is left unfiltered ~40% of the time.
fn make_queries(d: usize, seed: u64) -> Vec<RangeQuery> {
    let mut s = Stream(seed | 1);
    let count = s.below(5);
    (0..count)
        .map(|_| {
            let mut q = RangeQuery::all(d);
            for dim in 0..d {
                if s.below(5) < 2 {
                    continue;
                }
                let a = s.next() % 6_000;
                let b = s.next() % 6_000;
                q = q.with_range(dim, a.min(b), a.max(b));
            }
            q
        })
        .collect()
}

/// 1–7 probes; each is a shuffled subset of the dimensions (sort dimension
/// last) plus per-grid-dim column counts in `1..=64`. Shuffling a fixed
/// universe guarantees orders never contain duplicates.
fn make_probes(d: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut s = Stream(seed | 1);
    let count = 1 + s.below(7);
    (0..count)
        .map(|_| {
            let mut order: Vec<usize> = (0..d).collect();
            for i in (1..d).rev() {
                let j = s.below(i + 1);
                order.swap(i, j);
            }
            order.truncate(1 + s.below(d));
            let cols = (1..order.len()).map(|_| 1 + s.below(64)).collect();
            (order, cols)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_full_over_probe_sequences(
        d_raw in 0usize..4,
        n in 8usize..250,
        table_seed in any::<u64>(),
        q_seed in any::<u64>(),
        probe_seed in any::<u64>(),
        sample in 16usize..400,
    ) {
        let d = 2 + d_raw;
        let table = make_table(d, n, table_seed);
        let queries = make_queries(d, q_seed);
        let mut rng = StdRng::seed_from_u64(table_seed ^ q_seed);
        let space = SampleSpace::build(&table, &queries, sample, &mut rng, &CorrelationConfig::default());
        let mut cache = space.stats_cache();
        for (order, cols) in make_probes(d, probe_seed) {
            let full = space.query_stats(&order, &cols);
            let cached = space.query_stats_cached(&order, &cols, &mut cache);
            prop_assert_eq!(&full, &cached, "order {:?} cols {:?}", &order, &cols);
        }
    }

    /// The same probes replayed in reverse through a warm cache — with
    /// every per-dimension entry already present — must still match the
    /// full scan (cache entries are immutable facts, never invalidated by
    /// later probes).
    #[test]
    fn revisits_through_a_warm_cache_stay_exact(
        d_raw in 0usize..3,
        n in 8usize..200,
        table_seed in any::<u64>(),
        q_seed in any::<u64>(),
        probe_seed in any::<u64>(),
    ) {
        let d = 2 + d_raw;
        let table = make_table(d, n, table_seed);
        let queries = make_queries(d, q_seed);
        let mut rng = StdRng::seed_from_u64(table_seed ^ q_seed);
        let space = SampleSpace::build(&table, &queries, usize::MAX, &mut rng, &CorrelationConfig::default());
        let mut cache = space.stats_cache();
        let probes = make_probes(d, probe_seed);
        for (order, cols) in &probes {
            let _ = space.query_stats_cached(order, cols, &mut cache);
        }
        let warm_recounts = cache.recounts();
        for (order, cols) in probes.iter().rev() {
            let full = space.query_stats(order, cols);
            let cached = space.query_stats_cached(order, cols, &mut cache);
            prop_assert_eq!(&full, &cached, "order {:?} cols {:?}", order, cols);
        }
        prop_assert_eq!(
            cache.recounts(),
            warm_recounts,
            "a warm cache must re-count nothing on replay"
        );
    }
}
