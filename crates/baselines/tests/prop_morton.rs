//! Property tests for the Morton/BIGMIN machinery: encode/decode
//! round-trips, Z-range containment, and BIGMIN minimality against a
//! brute-force oracle on small domains.

use flood_baselines::morton::MortonEncoder;
use flood_store::Table;
use proptest::prelude::*;

/// Build an encoder over `d` dims spanning `0..=max` each.
fn encoder(d: usize, max: u64) -> MortonEncoder {
    let cols: Vec<Vec<u64>> = (0..d).map(|_| vec![0, max]).collect();
    let t = Table::from_columns(cols);
    MortonEncoder::new(&t, (0..d).collect())
}

/// A small-budget encoder so the BIGMIN oracle stays brute-forceable.
fn tiny_encoder(d: usize, max: u64, bits: u32) -> MortonEncoder {
    let cols: Vec<Vec<u64>> = (0..d).map(|_| vec![0, max]).collect();
    let t = Table::from_columns(cols);
    MortonEncoder::with_bits(&t, (0..d).collect(), bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_roundtrip(d in 1usize..6, coords in proptest::collection::vec(0u64..1_000, 6)) {
        let e = encoder(d, 1_000);
        let norm: Vec<u64> = coords[..d].iter().enumerate().map(|(i, &c)| e.normalize(i, c)).collect();
        let z = e.encode_coords(&norm);
        prop_assert_eq!(e.decode(z), norm);
    }

    #[test]
    fn z_range_contains_all_rect_codes(
        lo0 in 0u64..200, w0 in 0u64..100,
        lo1 in 0u64..200, w1 in 0u64..100,
        probe0 in 0u64..100, probe1 in 0u64..100,
    ) {
        let e = encoder(2, 300);
        let lo = [e.normalize(0, lo0), e.normalize(1, lo1)];
        let hi = [e.normalize(0, lo0 + w0), e.normalize(1, lo1 + w1)];
        let (zlo, zhi) = e.z_range(&lo, &hi);
        // Any point inside the raw rect encodes within [zlo, zhi].
        let p0 = lo0 + probe0 % (w0 + 1);
        let p1 = lo1 + probe1 % (w1 + 1);
        let z = e.encode_coords(&[e.normalize(0, p0), e.normalize(1, p1)]);
        prop_assert!(z >= zlo && z <= zhi);
    }

    #[test]
    fn bigmin_is_minimal_in_rect(
        z in 0u64..4096,
        lo0 in 0u64..16, w0 in 0u64..15,
        lo1 in 0u64..16, w1 in 0u64..15,
    ) {
        // 2 dims × 6 bits = 4096 codes; domain 0..=63 per dim, so
        // normalize is the identity.
        let e = tiny_encoder(2, 63, 6);
        let lo = [e.normalize(0, lo0.min(63)), e.normalize(1, lo1.min(63))];
        let hi = [
            e.normalize(0, (lo0 + w0).min(63)),
            e.normalize(1, (lo1 + w1).min(63)),
        ];
        if e.z_in_rect(z, &lo, &hi) {
            // Contract: callers only invoke BIGMIN for z outside the rect.
            return Ok(());
        }
        let got = e.bigmin(z, &lo, &hi);
        // Brute-force oracle over all codes.
        let mut want = None;
        let total_bits = 2 * e.bits();
        for cand in (z + 1)..(1u64 << total_bits) {
            if e.z_in_rect(cand, &lo, &hi) {
                want = Some(cand);
                break;
            }
        }
        prop_assert_eq!(got, want, "z={} rect={:?}..{:?}", z, lo, hi);
    }
}
