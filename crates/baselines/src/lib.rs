//! # flood-baselines
//!
//! The eight baseline indexes of §7.2, all implemented on the same column
//! store (`flood-store`) and the same [`MultiDimIndex`] interface as Flood,
//! with the same optimizations where applicable (exact-range scan elision,
//! cumulative aggregation columns):
//!
//! 1. [`FullScan`] — visits every point, touching only filtered columns.
//! 2. [`ClusteredIndex`] — data sorted by one dimension, an RMI locating the
//!    endpoints (a learned clustered B-Tree equivalent; Appendix A).
//! 3. [`GridFile`] — incremental bucket-splitting grid (Nievergelt et al.).
//! 4. [`ZOrderIndex`] — points ordered by Morton code, paged with min/max
//!    metadata.
//! 5. [`UbTree`] — Z-ordered pages plus BIGMIN "skip ahead".
//! 6. [`Hyperoctree`] — recursive 2^d splitting with a page-size cap.
//! 7. [`KdTree`] — median splits, dimensions round-robin by selectivity.
//! 8. [`RStarTree`] — an STR bulk-loaded, read-optimized R-tree (the paper
//!    benchmarks libspatialindex's R*; STR packing reproduces its read-path
//!    behaviour).
//!
//! Every index here answers queries identically to [`FullScan`]; the
//! integration suite enforces it.
//!
//! [`MultiDimIndex`]: flood_store::MultiDimIndex

pub mod clustered;
pub mod full_scan;
pub mod grid_file;
pub mod kd_tree;
pub mod morton;
pub mod octree;
pub mod rtree;
pub mod ub_tree;
pub mod zorder;

pub use clustered::ClusteredIndex;
pub use full_scan::FullScan;
pub use grid_file::GridFile;
pub use kd_tree::KdTree;
pub use octree::Hyperoctree;
pub use rtree::RStarTree;
pub use ub_tree::UbTree;
pub use zorder::ZOrderIndex;
