//! Hyperoctree (§7.2(6), Appendix A).
//!
//! Space is recursively halved along every indexed dimension at once
//! (2^k children per node) until a node holds at most `page_size` points.
//! Points within a page are contiguous; pages follow an in-order traversal.
//! Each node stores its children, the min/max per dimension of its points,
//! and its physical range. Children are kept sparse: only non-empty
//! hyperoctants are materialized.

use crate::full_scan::CountingVisitor;
use flood_store::{
    scan_exact, scan_filtered, MultiDimIndex, RangeQuery, ScanStats, Table, Visitor,
};

/// Default page size (points per leaf).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;

/// Cap on split dimensions: 2^k children per node; beyond this fan-out the
/// tree degenerates into allocation noise, so only the first
/// `MAX_SPLIT_DIMS` (most selective) indexed dimensions participate in
/// splitting. Remaining filters are applied during scans.
pub const MAX_SPLIT_DIMS: usize = 10;

#[derive(Debug)]
struct Node {
    /// (octant code, child node id), sorted by code; empty for leaves.
    children: Vec<(u32, u32)>,
    /// Per *table* dimension min/max of the subtree's points.
    box_lo: Vec<u64>,
    box_hi: Vec<u64>,
    start: u32,
    end: u32,
}

/// The hyperoctree index.
#[derive(Debug)]
pub struct Hyperoctree {
    data: Table,
    nodes: Vec<Node>,
    page_size: usize,
}

struct Builder<'a> {
    table: &'a Table,
    split_dims: Vec<usize>,
    page_size: usize,
    nodes: Vec<Node>,
    order: Vec<u32>,
}

impl Hyperoctree {
    /// Build over `table`, splitting on `dims` (most selective first).
    pub fn build(table: &Table, dims: Vec<usize>) -> Self {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE)
    }

    /// Build with an explicit page size.
    pub fn build_with_page_size(table: &Table, dims: Vec<usize>, page_size: usize) -> Self {
        assert!(page_size >= 1);
        let split_dims: Vec<usize> = dims.into_iter().take(MAX_SPLIT_DIMS).collect();
        let mut b = Builder {
            table,
            split_dims,
            page_size,
            nodes: Vec::new(),
            order: Vec::new(),
        };
        let mut rows: Vec<u32> = (0..table.len() as u32).collect();
        // The root's split region spans each dimension's value range.
        let region: Vec<(u64, u64)> = b.split_dims.iter().map(|&d| table.dim_bounds(d)).collect();
        if !rows.is_empty() {
            b.build_node(&mut rows, &region, 0);
        }
        let data = table.permuted(&b.order);
        Hyperoctree {
            data,
            nodes: b.nodes,
            page_size,
        }
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Page size this tree was built with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

impl Builder<'_> {
    /// Build the subtree over `rows` within `region`; returns the node id.
    fn build_node(&mut self, rows: &mut Vec<u32>, region: &[(u64, u64)], depth: usize) -> u32 {
        let id = self.nodes.len() as u32;
        let dims_n = self.table.dims();
        let mut box_lo = vec![u64::MAX; dims_n];
        let mut box_hi = vec![0u64; dims_n];
        for &r in rows.iter() {
            for d in 0..dims_n {
                let v = self.table.value(r as usize, d);
                box_lo[d] = box_lo[d].min(v);
                box_hi[d] = box_hi[d].max(v);
            }
        }
        let start = self.order.len() as u32;
        self.nodes.push(Node {
            children: Vec::new(),
            box_lo,
            box_hi,
            start,
            end: start,
        });

        // Leaf: small enough, or the region can no longer shrink.
        let degenerate = region.iter().all(|&(lo, hi)| lo >= hi);
        if rows.len() <= self.page_size || degenerate || depth >= 64 {
            self.order.extend_from_slice(rows);
            self.nodes[id as usize].end = self.order.len() as u32;
            return id;
        }

        // Partition into hyperoctants around the region midpoints.
        let mids: Vec<u64> = region.iter().map(|&(lo, hi)| lo + (hi - lo) / 2).collect();
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for &r in rows.iter() {
            let mut code = 0u32;
            for (i, &d) in self.split_dims.iter().enumerate() {
                if self.table.value(r as usize, d) > mids[i] {
                    code |= 1 << i;
                }
            }
            match groups.binary_search_by_key(&code, |&(c, _)| c) {
                Ok(g) => groups[g].1.push(r),
                Err(pos) => groups.insert(pos, (code, vec![r])),
            }
        }
        rows.clear();
        rows.shrink_to_fit();

        let mut children = Vec::with_capacity(groups.len());
        for (code, mut group) in groups {
            let child_region: Vec<(u64, u64)> = region
                .iter()
                .zip(&mids)
                .enumerate()
                .map(|(i, (&(lo, hi), &mid))| {
                    if code & (1 << i) == 0 {
                        (lo, mid)
                    } else {
                        (mid.saturating_add(1).min(hi), hi)
                    }
                })
                .collect();
            let child = self.build_node(&mut group, &child_region, depth + 1);
            children.push((code, child));
        }
        self.nodes[id as usize].children = children;
        self.nodes[id as usize].end = self.order.len() as u32;
        id
    }
}

impl MultiDimIndex for Hyperoctree {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        if self.nodes.is_empty() {
            return stats;
        }
        let rect = query.rect();
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            stats.cells_visited += 1;
            if !rect.intersects_box(&node.box_lo, &node.box_hi) {
                continue;
            }
            if rect.contains_box(&node.box_lo, &node.box_hi) {
                // Whole subtree matches: exact scan, no per-point checks.
                stats.ranges_scanned += 1;
                scan_exact(
                    &self.data,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    None,
                    &mut counter,
                    &mut stats,
                );
                continue;
            }
            if node.children.is_empty() {
                stats.ranges_scanned += 1;
                scan_filtered(
                    &self.data,
                    query,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    &mut counter,
                    &mut stats,
                );
            } else {
                stack.extend(node.children.iter().map(|&(_, c)| c));
            }
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.children.len() * 8
                    + (n.box_lo.len() + n.box_hi.len()) * 8
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "Hyperoctree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * i) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 2_000),
            RangeQuery::all(3)
                .with_range(0, 0, 5_000)
                .with_range(1, 100, 900),
            RangeQuery::all(3).with_range(2, 100, 200),
            RangeQuery::all(3).with_eq(0, 761),
        ]
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(8_000);
        let idx = Hyperoctree::build_with_page_size(&t, vec![0, 1, 2], 64);
        for (i, q) in queries().iter().enumerate() {
            let mut v = CountVisitor::default();
            let stats = idx.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
            assert_eq!(stats.points_matched, v.count);
        }
    }

    #[test]
    fn containment_triggers_exact_scans() {
        let t = table(8_000);
        let idx = Hyperoctree::build_with_page_size(&t, vec![0, 1, 2], 64);
        // A query covering everything: the root box is contained.
        let mut v = CountVisitor::default();
        let stats = idx.execute(&RangeQuery::all(3), None, &mut v);
        assert_eq!(v.count, 8_000);
        assert_eq!(stats.points_scanned, 0, "root containment ⇒ all exact");
        assert_eq!(stats.points_in_exact_ranges, 8_000);
    }

    #[test]
    fn selective_query_prunes_subtrees() {
        let t = table(20_000);
        let idx = Hyperoctree::build_with_page_size(&t, vec![0, 1, 2], 128);
        let q = RangeQuery::all(3).with_range(0, 0, 99).with_range(1, 0, 99);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        let touched = stats.points_scanned + stats.points_in_exact_ranges;
        assert!(
            touched < t.len() as u64 / 4,
            "expected pruning, touched {touched}"
        );
    }

    #[test]
    fn identical_points_terminate() {
        let t = Table::from_columns(vec![vec![7u64; 5_000], vec![9u64; 5_000]]);
        let idx = Hyperoctree::build_with_page_size(&t, vec![0, 1], 64);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(2).with_eq(0, 7), None, &mut v);
        assert_eq!(v.count, 5_000);
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        let idx = Hyperoctree::build(&t, vec![0, 1]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(2), None, &mut v);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn caps_split_dimensions() {
        // 12 dims: only the first MAX_SPLIT_DIMS participate in splits, but
        // results stay correct.
        let n = 2_000u64;
        let cols: Vec<Vec<u64>> = (0..12)
            .map(|d| (0..n).map(|i| (i * (d as u64 * 13 + 7)) % 1_000).collect())
            .collect();
        let t = Table::from_columns(cols);
        let idx = Hyperoctree::build_with_page_size(&t, (0..12).collect(), 32);
        let q = RangeQuery::all(12).with_range(11, 0, 500);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
    }
}
