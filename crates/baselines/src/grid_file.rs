//! Grid File (§7.2(3), Appendix A) — Nievergelt, Hinterberger & Sevcik.
//!
//! The d-dimensional space is divided into *blocks* by per-dimension split
//! boundaries; multiple adjacent blocks form a *bucket*, and all points of a
//! bucket are stored contiguously and unsorted. The grid is built
//! incrementally: a bucket that overflows the page size is split (1) along
//! an existing block boundary inside it if one exists, else (2) by adding a
//! new grid column at the bucket's midpoint along a round-robin dimension.
//!
//! Unlike Flood, columns are determined incrementally, nothing adapts to the
//! query workload, and points within buckets are unsorted — querying a
//! bucket means scanning all of it. The directory is a dense d-dimensional
//! array, so heavily skewed data blows it up super-linearly (§2, ref \[9\]); the
//! builder enforces a block budget and reports failure the way the paper
//! timed out its runs.

use crate::full_scan::CountingVisitor;
use flood_store::{scan_filtered, MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};

/// Default page size (points per bucket before splitting).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;
/// Default cap on directory blocks before the build reports failure.
pub const DEFAULT_MAX_BLOCKS: usize = 1 << 22;

/// Why a Grid File build was abandoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridFileError {
    /// The directory exceeded the block budget (the paper's ">1 hour on
    /// heavily skewed data" cases).
    DirectoryBlowup {
        /// Number of directory blocks at abandonment.
        blocks: usize,
    },
}

impl std::fmt::Display for GridFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridFileError::DirectoryBlowup { blocks } => {
                write!(
                    f,
                    "grid-file directory exceeded block budget ({blocks} blocks)"
                )
            }
        }
    }
}

impl std::error::Error for GridFileError {}

/// A bucket's region in block space: an inclusive box per dimension.
#[derive(Debug, Clone)]
struct Bucket {
    /// Inclusive block-coordinate box `[lo_i, hi_i]` per indexed dim.
    blo: Vec<u32>,
    bhi: Vec<u32>,
    rows: Vec<u32>,
    /// Storage range after finalization.
    start: u32,
    end: u32,
}

/// The Grid File index.
#[derive(Debug)]
pub struct GridFile {
    data: Table,
    dims: Vec<usize>,
    /// Per-dimension sorted split boundaries (a value `b` splits `< b` from
    /// `>= b`).
    boundaries: Vec<Vec<u64>>,
    /// Dense directory: block coords (row-major) → bucket id.
    directory: Vec<u32>,
    buckets: Vec<Bucket>,
}

impl GridFile {
    /// Build over `table`, indexing `dims`, with default page size/budget.
    pub fn build(table: &Table, dims: Vec<usize>) -> Result<Self, GridFileError> {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE, DEFAULT_MAX_BLOCKS)
    }

    /// Build with explicit page size and directory budget.
    pub fn build_with_page_size(
        table: &Table,
        dims: Vec<usize>,
        page_size: usize,
        max_blocks: usize,
    ) -> Result<Self, GridFileError> {
        assert!(page_size >= 1);
        assert!(!dims.is_empty());
        let k = dims.len();
        let mut gf = GridFile {
            data: table.clone(), // replaced by the permuted copy at the end
            dims,
            boundaries: vec![Vec::new(); k],
            directory: vec![0],
            buckets: vec![Bucket {
                blo: vec![0; k],
                bhi: vec![0; k],
                rows: Vec::new(),
                start: 0,
                end: 0,
            }],
        };
        let mut rr_dim = 0usize; // round-robin split dimension
        for row in 0..table.len() {
            gf.insert(table, row as u32, page_size, &mut rr_dim, max_blocks)?;
        }
        gf.finalize(table);
        Ok(gf)
    }

    /// Block count of the directory.
    pub fn num_blocks(&self) -> usize {
        self.directory.len()
    }

    /// Bucket count.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Block coordinate of value `v` along indexed dim `i`.
    #[inline]
    fn block_coord(&self, i: usize, v: u64) -> u32 {
        self.boundaries[i].partition_point(|&b| b <= v) as u32
    }

    /// Row-major directory offset of block coords.
    fn dir_offset(&self, coords: &[u32]) -> usize {
        let mut off = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            off = off * (self.boundaries[i].len() + 1) + c as usize;
        }
        off
    }

    fn insert(
        &mut self,
        table: &Table,
        row: u32,
        page_size: usize,
        rr_dim: &mut usize,
        max_blocks: usize,
    ) -> Result<(), GridFileError> {
        let coords: Vec<u32> = self
            .dims
            .iter()
            .enumerate()
            .map(|(i, &d)| self.block_coord(i, table.value(row as usize, d)))
            .collect();
        let b = self.directory[self.dir_offset(&coords)] as usize;
        self.buckets[b].rows.push(row);
        if self.buckets[b].rows.len() > page_size {
            self.split_bucket(table, b, rr_dim, max_blocks)?;
        }
        Ok(())
    }

    /// Split bucket `b` (Appendix A's two cases).
    fn split_bucket(
        &mut self,
        table: &Table,
        b: usize,
        rr_dim: &mut usize,
        max_blocks: usize,
    ) -> Result<(), GridFileError> {
        let k = self.dims.len();
        // Case 1: an existing block boundary inside the bucket's region.
        let case1 = (0..k)
            .map(|off| (*rr_dim + off) % k)
            .find(|&i| self.buckets[b].bhi[i] > self.buckets[b].blo[i]);
        let split_dim = if let Some(i) = case1 {
            i
        } else {
            // Case 2: add a new grid column at the bucket's value midpoint
            // along a round-robin dimension with a non-degenerate extent.
            let mut added = None;
            for off in 0..k {
                let i = (*rr_dim + off) % k;
                let (lo, hi) = self.block_value_extent(table, b, i);
                if lo >= hi {
                    continue;
                }
                let mid = lo + (hi - lo) / 2 + 1; // boundary splits `< mid`
                self.add_boundary(i, mid, max_blocks)?;
                added = Some(i);
                break;
            }
            match added {
                Some(i) => i,
                None => return Ok(()), // all dims degenerate: oversize bucket
            }
        };
        *rr_dim = (split_dim + 1) % k;

        // Split the bucket's block box in half along split_dim.
        let (blo, bhi) = (
            self.buckets[b].blo[split_dim],
            self.buckets[b].bhi[split_dim],
        );
        debug_assert!(bhi > blo);
        let cut = blo + (bhi - blo) / 2; // left keeps [blo, cut]
        let mut right = Bucket {
            blo: self.buckets[b].blo.clone(),
            bhi: self.buckets[b].bhi.clone(),
            rows: Vec::new(),
            start: 0,
            end: 0,
        };
        right.blo[split_dim] = cut + 1;
        self.buckets[b].bhi[split_dim] = cut;
        let right_id = self.buckets.len() as u32;

        // Reassign points.
        let dim = self.dims[split_dim];
        let rows = std::mem::take(&mut self.buckets[b].rows);
        for row in rows {
            let c = self.block_coord(split_dim, table.value(row as usize, dim));
            if c > cut {
                right.rows.push(row);
            } else {
                self.buckets[b].rows.push(row);
            }
        }
        self.buckets.push(right);

        // Re-point the directory for the right half.
        self.repoint(right_id);
        Ok(())
    }

    /// Value extent of bucket `b` along indexed dim `i` (the region's value
    /// bounds, derived from its block box and the boundary list).
    fn block_value_extent(&self, table: &Table, b: usize, i: usize) -> (u64, u64) {
        let bounds = &self.boundaries[i];
        let (blo, bhi) = (self.buckets[b].blo[i], self.buckets[b].bhi[i]);
        let lo = if blo == 0 {
            table.dim_bounds(self.dims[i]).0
        } else {
            bounds[(blo - 1) as usize]
        };
        let hi = if (bhi as usize) >= bounds.len() {
            table.dim_bounds(self.dims[i]).1
        } else {
            bounds[bhi as usize] - 1
        };
        (lo, hi)
    }

    /// Insert a new boundary value on dim `i` and rebuild the directory
    /// (every bucket's block box stretches across the new column).
    fn add_boundary(
        &mut self,
        i: usize,
        value: u64,
        max_blocks: usize,
    ) -> Result<(), GridFileError> {
        let pos = self.boundaries[i].partition_point(|&b| b < value);
        if self.boundaries[i].get(pos) == Some(&value) {
            return Ok(()); // boundary already exists
        }
        self.boundaries[i].insert(pos, value);
        let new_blocks: usize = self.boundaries.iter().map(|b| b.len() + 1).product();
        if new_blocks > max_blocks {
            return Err(GridFileError::DirectoryBlowup { blocks: new_blocks });
        }
        // Stretch every bucket's block box across the inserted column.
        let p = pos as u32;
        for bucket in &mut self.buckets {
            if bucket.blo[i] > p {
                bucket.blo[i] += 1;
            }
            if bucket.bhi[i] >= p {
                bucket.bhi[i] += 1;
            }
        }
        self.rebuild_directory();
        Ok(())
    }

    /// Rebuild the dense directory from the bucket regions.
    fn rebuild_directory(&mut self) {
        let total: usize = self.boundaries.iter().map(|b| b.len() + 1).product();
        self.directory = vec![u32::MAX; total];
        for id in 0..self.buckets.len() {
            self.repoint(id as u32);
        }
        debug_assert!(self.directory.iter().all(|&b| b != u32::MAX));
    }

    /// Point every directory block of bucket `id`'s region at it.
    fn repoint(&mut self, id: u32) {
        let (blo, bhi) = {
            let b = &self.buckets[id as usize];
            (b.blo.clone(), b.bhi.clone())
        };
        let mut coords = blo.clone();
        loop {
            let off = self.dir_offset(&coords);
            self.directory[off] = id;
            // Odometer over the block box.
            let mut i = coords.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if coords[i] < bhi[i] {
                    coords[i] += 1;
                    break;
                }
                coords[i] = blo[i];
            }
        }
    }

    /// Concatenate buckets into storage order and permute the data.
    fn finalize(&mut self, table: &Table) {
        let mut order: Vec<u32> = Vec::with_capacity(table.len());
        for b in &mut self.buckets {
            b.start = order.len() as u32;
            order.extend_from_slice(&b.rows);
            b.end = order.len() as u32;
            b.rows = Vec::new();
        }
        self.data = table.permuted(&order);
    }
}

impl MultiDimIndex for GridFile {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        // Block ranges per indexed dim.
        let ranges: Vec<(u32, u32)> = self
            .dims
            .iter()
            .enumerate()
            .map(|(i, &d)| match query.bound(d) {
                Some((lo, hi)) => (self.block_coord(i, lo), self.block_coord(i, hi)),
                None => (0, self.boundaries[i].len() as u32),
            })
            .collect();
        // Buckets intersect the query iff their block box intersects the
        // block range box.
        let mut scanned = vec![false; self.buckets.len()];
        for (id, b) in self.buckets.iter().enumerate() {
            let hit = b
                .blo
                .iter()
                .zip(&b.bhi)
                .zip(&ranges)
                .all(|((&blo, &bhi), &(qlo, qhi))| blo <= qhi && qlo <= bhi);
            if !hit || scanned[id] {
                continue;
            }
            scanned[id] = true;
            stats.cells_visited += 1;
            if b.start == b.end {
                continue;
            }
            stats.ranges_scanned += 1;
            scan_filtered(
                &self.data,
                query,
                b.start as usize,
                b.end as usize,
                agg_dim,
                &mut counter,
                &mut stats,
            );
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.directory.len() * 4
            + self.boundaries.iter().map(|b| b.len() * 8).sum::<usize>()
            + self.buckets.len() * std::mem::size_of::<Bucket>()
    }

    fn name(&self) -> &'static str {
        "Grid File"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * 48271) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(6_000);
        let gf = GridFile::build_with_page_size(&t, vec![0, 1], 128, 1 << 20).expect("build");
        let queries = [
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 2_000),
            RangeQuery::all(3)
                .with_range(0, 0, 5_000)
                .with_range(1, 100, 900),
            RangeQuery::all(3).with_range(2, 100, 120),
            RangeQuery::all(3).with_eq(0, 761),
        ];
        for (i, q) in queries.iter().enumerate() {
            let mut v = CountVisitor::default();
            gf.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
        }
    }

    #[test]
    fn buckets_respect_page_size_roughly() {
        let t = table(10_000);
        let gf = GridFile::build_with_page_size(&t, vec![0, 1], 256, 1 << 20).expect("build");
        assert!(
            gf.num_buckets() >= 10_000 / 256,
            "buckets: {}",
            gf.num_buckets()
        );
        // Directory has at least as many blocks as buckets.
        assert!(gf.num_blocks() >= gf.num_buckets() / 2);
    }

    #[test]
    fn selective_query_prunes_buckets() {
        let t = table(20_000);
        let gf = GridFile::build_with_page_size(&t, vec![0, 1], 256, 1 << 20).expect("build");
        let q = RangeQuery::all(3).with_range(0, 0, 99).with_range(1, 0, 99);
        let mut v = CountVisitor::default();
        let stats = gf.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        assert!(
            stats.points_scanned < t.len() as u64 / 2,
            "scanned {}",
            stats.points_scanned
        );
    }

    #[test]
    fn duplicate_points_dont_loop() {
        // All points identical: bucket can never split — must not recurse
        // forever, just hold an oversize bucket.
        let t = Table::from_columns(vec![vec![3u64; 2_000], vec![5u64; 2_000]]);
        let gf = GridFile::build_with_page_size(&t, vec![0, 1], 64, 1 << 20).expect("build");
        let mut v = CountVisitor::default();
        gf.execute(&RangeQuery::all(2).with_eq(0, 3), None, &mut v);
        assert_eq!(v.count, 2_000);
        assert_eq!(gf.num_buckets(), 1);
    }

    #[test]
    fn block_budget_reports_blowup() {
        // A tiny budget forces the blowup error quickly.
        let t = table(5_000);
        let res = GridFile::build_with_page_size(&t, vec![0, 1], 8, 16);
        assert!(matches!(res, Err(GridFileError::DirectoryBlowup { .. })));
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        let gf = GridFile::build(&t, vec![0, 1]).expect("build");
        let mut v = CountVisitor::default();
        gf.execute(&RangeQuery::all(2), None, &mut v);
        assert_eq!(v.count, 0);
    }
}
