//! Morton (Z-order) encoding and the BIGMIN "skip ahead" computation.
//!
//! Per Appendix A: 64-bit Z-values, `⌊64/d⌋` bits per dimension, interleaved
//! so that the most selective dimension's LSB is the Z-value's LSB. Raw
//! attribute values are first normalized into the per-dimension bit budget
//! (an order-preserving affine rescale of `[min, max]`) — equivalent to the
//! paper's "first ⌊64/d⌋ bits" on full-width values, but it does not waste
//! resolution on narrow domains like dictionary codes.
//!
//! BIGMIN (Tropf & Herzog, 1981) finds the smallest Z-value inside a query
//! rectangle that is greater than a given Z-value — the UB-tree's jump
//! target when the Z-curve exits the rectangle.

use flood_store::{RangeQuery, Table};
use serde::{Deserialize, Serialize};

/// Encoder mapping points to Z-values for a chosen dimension subset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MortonEncoder {
    /// Table dimensions in interleave order; `dims[0]` owns the LSB.
    dims: Vec<usize>,
    /// Bits per dimension (`⌊64/d⌋`, capped at 16 for sanity at low d).
    bits: u32,
    mins: Vec<u64>,
    ranges: Vec<u64>,
}

impl MortonEncoder {
    /// Build an encoder over `dims` (most selective first), normalizing each
    /// dimension to the per-dim bit budget using `table`'s value ranges.
    pub fn new(table: &Table, dims: Vec<usize>) -> Self {
        let bits = (64 / dims.len().max(1) as u32).clamp(1, 16);
        Self::with_bits(table, dims, bits)
    }

    /// Like [`MortonEncoder::new`] with an explicit per-dimension bit width
    /// (tests and small-domain oracles want tiny budgets).
    ///
    /// # Panics
    /// Panics when `dims` is empty or `bits * dims.len() > 64`.
    pub fn with_bits(table: &Table, dims: Vec<usize>, bits: u32) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(
            bits >= 1 && bits as usize * dims.len() <= 64,
            "bit budget exceeds a 64-bit Z-value"
        );
        let mut mins = Vec::with_capacity(dims.len());
        let mut ranges = Vec::with_capacity(dims.len());
        for &d in &dims {
            let (lo, hi) = table.dim_bounds(d);
            mins.push(lo);
            ranges.push((hi - lo).max(1));
        }
        MortonEncoder {
            dims,
            bits,
            mins,
            ranges,
        }
    }

    /// Dimensions in interleave order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest normalized coordinate value.
    #[inline]
    pub fn max_coord(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Normalize a raw value of interleave-dimension `i` into the bit budget
    /// (monotone; clamps outside the build-time range).
    #[inline]
    pub fn normalize(&self, i: usize, v: u64) -> u64 {
        let v = v.saturating_sub(self.mins[i]).min(self.ranges[i]);
        // 128-bit intermediate: v ≤ range, so this cannot overflow.
        ((v as u128 * self.max_coord() as u128) / self.ranges[i] as u128) as u64
    }

    /// Z-value of a table row.
    pub fn encode_row(&self, table: &Table, row: usize) -> u64 {
        let mut z = 0u64;
        for (i, &d) in self.dims.iter().enumerate() {
            let c = self.normalize(i, table.value(row, d));
            z |= spread(c, self.bits, self.dims.len() as u32, i as u32);
        }
        z
    }

    /// Z-value of already normalized coordinates (one per interleave dim).
    pub fn encode_coords(&self, coords: &[u64]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut z = 0u64;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c <= self.max_coord());
            z |= spread(c, self.bits, self.dims.len() as u32, i as u32);
        }
        z
    }

    /// Normalized coordinates of a Z-value.
    pub fn decode(&self, z: u64) -> Vec<u64> {
        (0..self.dims.len())
            .map(|i| gather(z, self.bits, self.dims.len() as u32, i as u32))
            .collect()
    }

    /// The query rectangle in normalized coordinates: per interleave dim an
    /// inclusive `[lo, hi]`; unfiltered dims span the whole budget.
    pub fn normalized_rect(&self, query: &RangeQuery) -> (Vec<u64>, Vec<u64>) {
        let mut lo = Vec::with_capacity(self.dims.len());
        let mut hi = Vec::with_capacity(self.dims.len());
        for (i, &d) in self.dims.iter().enumerate() {
            match query.bound(d) {
                Some((a, b)) => {
                    lo.push(self.normalize(i, a));
                    hi.push(self.normalize(i, b));
                }
                None => {
                    lo.push(0);
                    hi.push(self.max_coord());
                }
            }
        }
        (lo, hi)
    }

    /// Z-range `[z_lo, z_hi]` covering every point of the normalized rect:
    /// the codes of the rectangle's corners.
    pub fn z_range(&self, lo: &[u64], hi: &[u64]) -> (u64, u64) {
        (self.encode_coords(lo), self.encode_coords(hi))
    }

    /// Whether Z-value `z` decodes to a point inside the normalized rect.
    pub fn z_in_rect(&self, z: u64, lo: &[u64], hi: &[u64]) -> bool {
        for i in 0..self.dims.len() {
            let c = gather(z, self.bits, self.dims.len() as u32, i as u32);
            if c < lo[i] || c > hi[i] {
                return false;
            }
        }
        true
    }

    /// BIGMIN: the smallest Z-value strictly greater than `z` that lies in
    /// the rect, or `None` when no such value exists. `z` must itself be
    /// outside the rect (UB-tree calls it exactly then).
    pub fn bigmin(&self, z: u64, rect_lo: &[u64], rect_hi: &[u64]) -> Option<u64> {
        let d = self.dims.len() as u32;
        let total_bits = d * self.bits;
        let mut zmin = self.encode_coords(rect_lo);
        let mut zmax = self.encode_coords(rect_hi);
        let mut best: Option<u64> = None;
        for p in (0..total_bits).rev() {
            let bz = (z >> p) & 1;
            let bmin = (zmin >> p) & 1;
            let bmax = (zmax >> p) & 1;
            match (bz, bmin, bmax) {
                (0, 0, 0) => {}
                (0, 0, 1) => {
                    best = Some(load_1000(zmin, p, d));
                    zmax = load_0111(zmax, p, d);
                }
                (0, 1, 1) => return Some(zmin),
                (1, 0, 0) => return best,
                (1, 0, 1) => {
                    zmin = load_1000(zmin, p, d);
                }
                (1, 1, 1) => {}
                // (_, 1, 0) is impossible while zmin ≤ zmax on this prefix.
                _ => unreachable!("invariant zmin <= zmax violated"),
            }
        }
        // z itself lies inside the rectangle — the caller's contract says it
        // does not, but the next in-rect value ≥ z is then z itself.
        Some(z)
    }
}

/// Spread the low `bits` of `v` so bit `j` lands at position `j*d + i`.
#[inline]
fn spread(v: u64, bits: u32, d: u32, i: u32) -> u64 {
    let mut out = 0u64;
    for j in 0..bits {
        out |= ((v >> j) & 1) << (j * d + i);
    }
    out
}

/// Inverse of [`spread`]: collect dimension `i`'s bits from a Z-value.
#[inline]
fn gather(z: u64, bits: u32, d: u32, i: u32) -> u64 {
    let mut out = 0u64;
    for j in 0..bits {
        out |= ((z >> (j * d + i)) & 1) << j;
    }
    out
}

/// Mask of bit positions `< p` belonging to the same dimension as `p`.
#[inline]
fn same_dim_lower_mask(p: u32, d: u32) -> u64 {
    let mut m = 0u64;
    let mut q = p as i64 - d as i64;
    while q >= 0 {
        m |= 1u64 << q;
        q -= d as i64;
    }
    m
}

/// LOAD "1000…": set bit `p` to 1 and lower same-dimension bits to 0.
#[inline]
fn load_1000(v: u64, p: u32, d: u32) -> u64 {
    (v & !same_dim_lower_mask(p, d)) | (1u64 << p)
}

/// LOAD "0111…": set bit `p` to 0 and lower same-dimension bits to 1.
#[inline]
fn load_0111(v: u64, p: u32, d: u32) -> u64 {
    (v | same_dim_lower_mask(p, d)) & !(1u64 << p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder_2d() -> MortonEncoder {
        // Values already span 0..=15 per dim; bits = min(64/2, 16) = 16,
        // but normalization maps [0,15] onto [0, 65535]; to keep hand
        // computation easy we test via the table below instead.
        let t = Table::from_columns(vec![(0..16).collect(), (0..16).collect()]);
        MortonEncoder::new(&t, vec![0, 1])
    }

    #[test]
    fn spread_gather_roundtrip() {
        for d in 1..=6u32 {
            let bits = (64 / d).min(16);
            for v in [0u64, 1, 2, 5, (1 << bits) - 1] {
                for i in 0..d {
                    assert_eq!(gather(spread(v, bits, d, i), bits, d, i), v);
                }
            }
        }
    }

    #[test]
    fn encode_is_monotone_per_dimension() {
        let e = encoder_2d();
        // Fixing one coordinate, z grows with the other.
        let mut prev = 0;
        for v in 0..16u64 {
            let z = e.encode_coords(&[e.normalize(0, v), 0]);
            if v > 0 {
                assert!(z > prev);
            }
            prev = z;
        }
    }

    #[test]
    fn z_range_bounds_rect_codes() {
        let e = encoder_2d();
        let lo = [e.normalize(0, 3), e.normalize(1, 5)];
        let hi = [e.normalize(0, 9), e.normalize(1, 12)];
        let (zlo, zhi) = e.z_range(&lo, &hi);
        for x in 3..=9u64 {
            for y in 5..=12u64 {
                let z = e.encode_coords(&[e.normalize(0, x), e.normalize(1, y)]);
                assert!(z >= zlo && z <= zhi, "({x},{y}) outside z range");
            }
        }
    }

    /// Small-domain brute-force oracle for BIGMIN.
    fn bigmin_oracle(e: &MortonEncoder, z: u64, lo: &[u64], hi: &[u64]) -> Option<u64> {
        let mut best = None;
        let d = e.dims().len();
        let max = e.max_coord();
        let mut coords = vec![0u64; d];
        loop {
            let zz = e.encode_coords(&coords);
            if zz > z
                && coords
                    .iter()
                    .zip(lo.iter().zip(hi))
                    .all(|(&c, (&l, &h))| c >= l && c <= h)
            {
                best = Some(best.map_or(zz, |b: u64| b.min(zz)));
            }
            // Odometer over the full coordinate space.
            let mut i = 0;
            loop {
                if i == d {
                    return best;
                }
                if coords[i] < max {
                    coords[i] += 1;
                    break;
                }
                coords[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn bigmin_matches_bruteforce_small() {
        // 2 dims × 3 bits = 64 codes: exhaustive check.
        let t = Table::from_columns(vec![vec![0, 7], vec![0, 7]]);
        let mut e = MortonEncoder::new(&t, vec![0, 1]);
        e.bits = 3; // shrink for exhaustiveness

        let rects = [
            ([1u64, 2u64], [5u64, 6u64]),
            ([0, 0], [7, 7]),
            ([3, 3], [3, 3]),
        ];
        for (lo, hi) in rects {
            for z in 0..64u64 {
                if e.z_in_rect(z, &lo, &hi) {
                    continue; // contract: z outside rect
                }
                let got = e.bigmin(z, &lo, &hi);
                let want = bigmin_oracle(&e, z, &lo, &hi);
                assert_eq!(got, want, "z={z} rect={lo:?}..{hi:?}");
            }
        }
    }

    #[test]
    fn bigmin_none_past_rect() {
        let t = Table::from_columns(vec![vec![0, 7], vec![0, 7]]);
        let mut e = MortonEncoder::new(&t, vec![0, 1]);
        e.bits = 3;
        let lo = [0u64, 0];
        let hi = [1u64, 1];
        let (_, zhi) = e.z_range(&lo, &hi);
        assert_eq!(e.bigmin(zhi + 1, &lo, &hi), None);
    }

    #[test]
    fn normalization_clamps_and_orders() {
        let t = Table::from_columns(vec![vec![100, 200, 300]]);
        let e = MortonEncoder::new(&t, vec![0]);
        assert_eq!(e.normalize(0, 50), 0); // below min clamps
        assert_eq!(e.normalize(0, 100), 0);
        assert!(e.normalize(0, 200) > 0);
        assert_eq!(e.normalize(0, 300), e.max_coord());
        assert_eq!(e.normalize(0, 999), e.max_coord()); // above max clamps
    }

    #[test]
    fn rect_of_query_with_unfiltered_dims() {
        let t = Table::from_columns(vec![(0..100).collect(), (0..100).collect()]);
        let e = MortonEncoder::new(&t, vec![0, 1]);
        let q = RangeQuery::all(2).with_range(0, 10, 20);
        let (lo, hi) = e.normalized_rect(&q);
        assert_eq!(lo[1], 0);
        assert_eq!(hi[1], e.max_coord());
        assert!(lo[0] > 0 && hi[0] < e.max_coord());
    }
}
