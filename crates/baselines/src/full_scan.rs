//! Full scan baseline (§7.2(1)): "Every point is visited, but only the
//! columns present in the query filter are accessed."

use flood_store::index_trait::ChunkedScanPlan;
use flood_store::{
    scan_full, scan_full_packed, MultiDimIndex, PartitionedScan, RangeQuery, ScanMode, ScanPlan,
    ScanStats, Table, Visitor,
};

/// A degenerate "index" that scans the whole table for every query — the
/// correctness oracle and performance floor for all other indexes.
///
/// Compressed tables scan in [`ScanMode::Packed`] by default (predicates
/// resolved against packed blocks without decoding);
/// [`FullScan::set_scan_mode`] selects the decode-first kernel for A/B runs.
#[derive(Debug)]
pub struct FullScan {
    data: Table,
    mode: ScanMode,
}

impl FullScan {
    /// Wrap a table. No reordering, no metadata.
    pub fn build(table: &Table) -> Self {
        FullScan {
            data: table.clone(),
            mode: ScanMode::default(),
        }
    }

    /// The underlying data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Select the scan kernel for subsequent queries (serial and planned).
    pub fn set_scan_mode(&mut self, mode: ScanMode) {
        self.mode = mode;
    }
}

impl MultiDimIndex for FullScan {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        match self.mode {
            ScanMode::Packed => {
                scan_full_packed(&self.data, query, agg_dim, None, &mut counter, &mut stats)
            }
            ScanMode::DecodeFirst => {
                scan_full(&self.data, query, agg_dim, &mut counter, &mut stats)
            }
        }
        stats.points_matched = counter.matched;
        stats.ranges_scanned = 1;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        0 // no index structure at all
    }

    fn name(&self) -> &'static str {
        "Full Scan"
    }
}

impl PartitionedScan for FullScan {
    /// The whole table cut into balanced block-aligned row chunks — the
    /// simplest possible partitioned plan, and the throughput yardstick
    /// for parallel scans.
    fn plan_scan(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> Box<dyn ScanPlan + '_> {
        Box::new(ChunkedScanPlan::new(
            &self.data,
            Some(query.clone()),
            agg_dim,
            None,
            self.mode,
            &[(0, self.data.len())],
            max_tasks,
            // The serial path reports the whole table as one scanned range.
            ScanStats {
                ranges_scanned: 1,
                ..Default::default()
            },
        ))
    }
}

/// Adapter that counts matches on behalf of [`ScanStats`]; shared by the
/// baselines in this crate.
pub(crate) struct CountingVisitor<'a> {
    pub(crate) inner: &'a mut dyn Visitor,
    pub(crate) matched: u64,
}

impl Visitor for CountingVisitor<'_> {
    #[inline]
    fn visit(&mut self, row: usize, value: u64) {
        self.matched += 1;
        self.inner.visit(row, value);
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.matched += count as u64;
        self.inner.visit_exact_sum(count, sum);
    }

    fn needs_value(&self) -> bool {
        self.inner.needs_value()
    }

    fn supports_exact(&self) -> bool {
        self.inner.supports_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    #[test]
    fn scans_everything() {
        let t = Table::from_columns(vec![(0..100).collect(), (0..100).rev().collect()]);
        let idx = FullScan::build(&t);
        let q = RangeQuery::all(2).with_range(0, 10, 19);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, 10);
        assert_eq!(stats.points_scanned, 100);
        assert_eq!(stats.points_matched, 10);
        assert_eq!(idx.index_size_bytes(), 0);
    }

    #[test]
    fn unfiltered_query_matches_all() {
        let t = Table::from_columns(vec![(0..50).collect()]);
        let idx = FullScan::build(&t);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(1), None, &mut v);
        assert_eq!(v.count, 50);
    }

    #[test]
    fn partitioned_plan_matches_serial() {
        let t = Table::from_columns(vec![
            (0..5_000u64).map(|i| i % 97).collect(),
            (0..5_000u64).map(|i| i % 13).collect(),
        ]);
        let idx = FullScan::build(&t);
        let q = RangeQuery::all(2).with_range(0, 10, 40).with_range(1, 0, 9);
        let mut serial = CountVisitor::default();
        let serial_stats = idx.execute(&q, None, &mut serial);
        for max_tasks in [1, 3, 8] {
            let plan = idx.plan_scan(&q, None, max_tasks);
            let mut count = 0u64;
            let mut stats = plan.plan_stats();
            for i in 0..plan.tasks() {
                let mut v = CountVisitor::default();
                let mut s = ScanStats::default();
                plan.run_task(i, &mut v, &mut s);
                count += v.count;
                stats.merge(&s);
            }
            assert_eq!(count, serial.count, "{max_tasks} tasks");
            assert_eq!(stats, serial_stats, "{max_tasks} tasks");
        }
    }
}
