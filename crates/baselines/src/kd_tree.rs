//! k-d tree (§7.2(7), Appendix A).
//!
//! "We recursively partition space using the median value along each
//! dimension, until the number of points in each page has below the page
//! size number of points. The dimensions are used for partitioning in a
//! round robin fashion, in order of decreasing selectivity. If the remaining
//! points all have the same value in a particular dimension, that dimension
//! is no longer used for further partitioning."

use crate::full_scan::CountingVisitor;
use flood_store::{
    scan_exact, scan_filtered, MultiDimIndex, RangeQuery, ScanStats, Table, Visitor,
};

/// Default page size (points per leaf).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;

#[derive(Debug)]
struct Node {
    /// Split dimension and value (`u64::MAX` dim sentinel for leaves).
    split_dim: u32,
    split_val: u64,
    left: u32,
    right: u32,
    /// Per-dimension bounding box of the node's points.
    box_lo: Vec<u64>,
    box_hi: Vec<u64>,
    start: u32,
    end: u32,
}

const LEAF: u32 = u32::MAX;

/// The k-d tree index.
#[derive(Debug)]
pub struct KdTree {
    data: Table,
    nodes: Vec<Node>,
}

struct Builder<'a> {
    table: &'a Table,
    dims: Vec<usize>,
    page_size: usize,
    nodes: Vec<Node>,
    order: Vec<u32>,
}

impl KdTree {
    /// Build over `table`, cycling through `dims` (most selective first).
    pub fn build(table: &Table, dims: Vec<usize>) -> Self {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE)
    }

    /// Build with an explicit page size.
    pub fn build_with_page_size(table: &Table, dims: Vec<usize>, page_size: usize) -> Self {
        assert!(page_size >= 1);
        assert!(!dims.is_empty());
        let mut b = Builder {
            table,
            dims,
            page_size,
            nodes: Vec::new(),
            order: Vec::new(),
        };
        let mut rows: Vec<u32> = (0..table.len() as u32).collect();
        if !rows.is_empty() {
            b.build_node(&mut rows, 0);
        }
        let data = table.permuted(&b.order);
        KdTree {
            data,
            nodes: b.nodes,
        }
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Builder<'_> {
    fn build_node(&mut self, rows: &mut Vec<u32>, next_dim: usize) -> u32 {
        let id = self.nodes.len() as u32;
        let dims_n = self.table.dims();
        let mut box_lo = vec![u64::MAX; dims_n];
        let mut box_hi = vec![0u64; dims_n];
        for &r in rows.iter() {
            for d in 0..dims_n {
                let v = self.table.value(r as usize, d);
                box_lo[d] = box_lo[d].min(v);
                box_hi[d] = box_hi[d].max(v);
            }
        }
        let start = self.order.len() as u32;
        self.nodes.push(Node {
            split_dim: LEAF,
            split_val: 0,
            left: 0,
            right: 0,
            box_lo,
            box_hi,
            start,
            end: start,
        });

        if rows.len() <= self.page_size {
            self.order.extend_from_slice(rows);
            self.nodes[id as usize].end = self.order.len() as u32;
            return id;
        }

        // Round-robin dimension selection, skipping constant dimensions.
        let mut chosen = None;
        for off in 0..self.dims.len() {
            let d = self.dims[(next_dim + off) % self.dims.len()];
            let (lo, hi) = (
                self.nodes[id as usize].box_lo[d],
                self.nodes[id as usize].box_hi[d],
            );
            if lo < hi {
                chosen = Some((d, (next_dim + off + 1) % self.dims.len()));
                break;
            }
        }
        let Some((dim, next)) = chosen else {
            // All dimensions constant: cannot split further.
            self.order.extend_from_slice(rows);
            self.nodes[id as usize].end = self.order.len() as u32;
            return id;
        };

        // Median split.
        rows.sort_unstable_by_key(|&r| self.table.value(r as usize, dim));
        let mut mid = rows.len() / 2;
        let median = self.table.value(rows[mid] as usize, dim);
        // Keep ties on the left so the right side strictly exceeds the
        // split value (guarantees both sides non-empty: the dimension is
        // non-constant, so some value exceeds the median... unless the
        // median is the maximum; then put ties on the right instead).
        if median
            < self
                .table
                .value(*rows.last().expect("non-empty") as usize, dim)
        {
            while mid < rows.len() && self.table.value(rows[mid] as usize, dim) == median {
                mid += 1;
            }
        } else {
            while mid > 0 && self.table.value(rows[mid - 1] as usize, dim) == median {
                mid -= 1;
            }
        }
        debug_assert!(mid > 0 && mid < rows.len());
        let mut right_rows: Vec<u32> = rows.split_off(mid);
        let split_val = self.table.value(rows[rows.len() - 1] as usize, dim);

        let left = self.build_node(rows, next);
        let right = self.build_node(&mut right_rows, next);
        let node = &mut self.nodes[id as usize];
        node.split_dim = dim as u32;
        node.split_val = split_val;
        node.left = left;
        node.right = right;
        node.end = self.order.len() as u32;
        id
    }
}

impl MultiDimIndex for KdTree {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        if self.nodes.is_empty() {
            return stats;
        }
        let rect = query.rect();
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            stats.cells_visited += 1;
            if !rect.intersects_box(&node.box_lo, &node.box_hi) {
                continue;
            }
            if rect.contains_box(&node.box_lo, &node.box_hi) {
                stats.ranges_scanned += 1;
                scan_exact(
                    &self.data,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    None,
                    &mut counter,
                    &mut stats,
                );
                continue;
            }
            if node.split_dim == LEAF {
                stats.ranges_scanned += 1;
                scan_filtered(
                    &self.data,
                    query,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    &mut counter,
                    &mut stats,
                );
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + (n.box_lo.len() + n.box_hi.len()) * 8)
            .sum()
    }

    fn name(&self) -> &'static str {
        "K-d tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * i * 31) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 2_000),
            RangeQuery::all(3)
                .with_range(0, 0, 5_000)
                .with_range(1, 100, 900),
            RangeQuery::all(3).with_range(2, 100, 120),
            RangeQuery::all(3).with_eq(0, 761),
        ]
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(8_000);
        let idx = KdTree::build_with_page_size(&t, vec![0, 1, 2], 64);
        for (i, q) in queries().iter().enumerate() {
            let mut v = CountVisitor::default();
            idx.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
        }
    }

    #[test]
    fn balanced_depth() {
        let t = table(16_384);
        let idx = KdTree::build_with_page_size(&t, vec![0, 1, 2], 128);
        // A median-split tree over 16k points with 128-point leaves has
        // ~128 leaves → ~255 nodes (modulo duplicate-value splits).
        assert!(
            idx.num_nodes() >= 200 && idx.num_nodes() <= 400,
            "{}",
            idx.num_nodes()
        );
    }

    #[test]
    fn prunes_on_selective_queries() {
        let t = table(20_000);
        let idx = KdTree::build_with_page_size(&t, vec![0, 1, 2], 128);
        let q = RangeQuery::all(3).with_range(0, 0, 99).with_range(1, 0, 99);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        let touched = stats.points_scanned + stats.points_in_exact_ranges;
        assert!(touched < t.len() as u64 / 4, "touched {touched}");
    }

    #[test]
    fn duplicate_heavy_dimension() {
        // Dim 0 has only 3 distinct values; the builder must not loop.
        let n = 5_000u64;
        let t = Table::from_columns(vec![(0..n).map(|i| i % 3).collect(), (0..n).collect()]);
        let idx = KdTree::build_with_page_size(&t, vec![0, 1], 64);
        let q = RangeQuery::all(2).with_eq(0, 1);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
    }

    #[test]
    fn all_identical_points() {
        let t = Table::from_columns(vec![vec![4u64; 1_000], vec![2u64; 1_000]]);
        let idx = KdTree::build_with_page_size(&t, vec![0, 1], 16);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(2).with_eq(0, 4), None, &mut v);
        assert_eq!(v.count, 1_000);
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        let idx = KdTree::build(&t, vec![0, 1]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(2), None, &mut v);
        assert_eq!(v.count, 0);
    }
}
