//! UB-tree (§7.2(5), Appendix A).
//!
//! Like the Z-order index, points are sorted by Z-value and paged, but the
//! UB-tree can "skip ahead": when the scan cursor reaches a Z-value outside
//! the query rectangle, it computes the next Z-value *inside* the rectangle
//! (BIGMIN) and jumps to the page containing it, avoiding long useless runs
//! of the Z-curve.

use crate::full_scan::CountingVisitor;
use crate::morton::MortonEncoder;
use flood_store::{MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};

/// Default page size (points per page).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;

/// The UB-tree: Z-sorted data, per-point Z-values, per-page minimum Z.
#[derive(Debug)]
pub struct UbTree {
    data: Table,
    encoder: MortonEncoder,
    /// Z-value of every point, in storage order (sorted).
    zvals: Vec<u64>,
    /// First Z-value of each page ("the page's minimum Z-order value").
    page_z_min: Vec<u64>,
    page_size: usize,
}

impl UbTree {
    /// Build over `table`, interleaving `dims` (most selective first).
    pub fn build(table: &Table, dims: Vec<usize>) -> Self {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE)
    }

    /// Build with an explicit page size.
    pub fn build_with_page_size(table: &Table, dims: Vec<usize>, page_size: usize) -> Self {
        assert!(page_size >= 1);
        let encoder = MortonEncoder::new(table, dims);
        let mut keyed: Vec<(u64, u32)> = (0..table.len())
            .map(|r| (encoder.encode_row(table, r), r as u32))
            .collect();
        keyed.sort_unstable();
        let perm: Vec<u32> = keyed.iter().map(|&(_, r)| r).collect();
        let data = table.permuted(&perm);
        let zvals: Vec<u64> = keyed.into_iter().map(|(z, _)| z).collect();
        let page_z_min = zvals.chunks(page_size).map(|c| c[0]).collect();
        UbTree {
            data,
            encoder,
            zvals,
            page_z_min,
            page_size,
        }
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }
}

impl MultiDimIndex for UbTree {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        if self.zvals.is_empty() {
            return stats;
        }
        let (rect_lo, rect_hi) = self.encoder.normalized_rect(query);
        let (z_lo, z_hi) = self.encoder.z_range(&rect_lo, &rect_hi);
        let filtered = query.filtered_dims();
        let needs_value = counter.needs_value();

        // The UB-tree interleaves scanning and curve skipping per point, so
        // its whole cursor loop counts as scan time (Table 2 shows UB-trees
        // with near-zero index time for the same reason).
        let timing = flood_store::scan::scan_timing_enabled();
        let t0 = std::time::Instant::now();

        let mut idx = self.zvals.partition_point(|&z| z < z_lo);
        let mut last_page = usize::MAX;
        while idx < self.zvals.len() {
            let z = self.zvals[idx];
            if z > z_hi {
                break;
            }
            let page = idx / self.page_size;
            if page != last_page {
                stats.cells_visited += 1;
                last_page = page;
            }
            if self.encoder.z_in_rect(z, &rect_lo, &rect_hi) {
                // Candidate: still verify the raw filter (normalization is
                // coarser than the actual query bounds).
                stats.points_scanned += 1;
                let ok = filtered
                    .iter()
                    .all(|&d| query.matches_dim(d, self.data.value(idx, d)));
                if ok {
                    let v = match agg_dim {
                        Some(d) if needs_value => self.data.value(idx, d),
                        _ => 0,
                    };
                    counter.visit(idx, v);
                }
                idx += 1;
            } else {
                // Skip ahead: next Z-value inside the rectangle, located via
                // the per-page minimum Z-values, then within the page.
                stats.refinements += 1;
                match self.encoder.bigmin(z, &rect_lo, &rect_hi) {
                    None => break,
                    Some(next_z) => {
                        debug_assert!(next_z > z);
                        let page = self
                            .page_z_min
                            .partition_point(|&pz| pz <= next_z)
                            .saturating_sub(1);
                        let start = page * self.page_size;
                        let end = ((page + 1) * self.page_size).min(self.zvals.len());
                        idx = start + self.zvals[start..end].partition_point(|&v| v < next_z);
                        // next_z may exceed this page's range: continue from
                        // the following page.
                        if idx == end && end < self.zvals.len() {
                            idx = end;
                        }
                    }
                }
            }
        }
        if timing {
            stats.scan_ns += t0.elapsed().as_nanos() as u64;
        }
        stats.ranges_scanned = 1;
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.zvals.len() * 8 + self.page_z_min.len() * 8
    }

    fn name(&self) -> &'static str {
        "UB tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * 97) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 700),
            RangeQuery::all(3)
                .with_range(0, 0, 900)
                .with_range(1, 100, 300),
            RangeQuery::all(3)
                .with_range(0, 5_000, 5_100)
                .with_range(1, 5_000, 5_100)
                .with_range(2, 0, 1 << 40),
            RangeQuery::all(3).with_eq(1, 97),
        ]
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(6_000);
        let idx = UbTree::build_with_page_size(&t, vec![0, 1, 2], 128);
        for (i, q) in queries().iter().enumerate() {
            let mut v = CountVisitor::default();
            idx.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
        }
    }

    #[test]
    fn skip_ahead_reduces_scanned_points() {
        let t = table(20_000);
        let zo = crate::zorder::ZOrderIndex::build_with_page_size(&t, vec![0, 1, 2], 256);
        let ub = UbTree::build_with_page_size(&t, vec![0, 1, 2], 256);
        let q = RangeQuery::all(3)
            .with_range(0, 1_000, 1_200)
            .with_range(1, 1_000, 1_200);
        let mut v1 = CountVisitor::default();
        let s_zo = zo.execute(&q, None, &mut v1);
        let mut v2 = CountVisitor::default();
        let s_ub = ub.execute(&q, None, &mut v2);
        assert_eq!(v1.count, v2.count);
        assert!(s_ub.refinements > 0, "expected BIGMIN jumps");
        assert!(
            s_ub.points_scanned <= s_zo.points_scanned,
            "UB-tree should not scan more than Z-order: {} vs {}",
            s_ub.points_scanned,
            s_zo.points_scanned
        );
    }

    #[test]
    fn tiny_page_size() {
        let t = table(500);
        let idx = UbTree::build_with_page_size(&t, vec![0, 1, 2], 1);
        let q = RangeQuery::all(3).with_range(0, 0, 5_000);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![], vec![]]);
        let idx = UbTree::build(&t, vec![0, 1, 2]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(3), None, &mut v);
        assert_eq!(v.count, 0);
    }
}
