//! Z-Order index (§7.2(4), Appendix A).
//!
//! Points are ordered by Z-value and grouped into fixed-size pages. Each
//! page stores the per-dimension min/max of its points. A query computes the
//! smallest and largest Z-value of its rectangle, binary-searches the page
//! ends, and iterates every page in between, scanning a page only when its
//! min/max box intersects the query rectangle.

use crate::full_scan::CountingVisitor;
use crate::morton::MortonEncoder;
use flood_store::{scan_filtered, MultiDimIndex, RangeQuery, ScanStats, Table, Visitor};

/// Default page size (points per page).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;

/// Per-page metadata: bounding box + first Z-value.
#[derive(Debug, Clone)]
struct Page {
    start: u32,
    end: u32,
    z_min: u64,
    /// Per *table* dimension min/max of the page's points.
    box_lo: Vec<u64>,
    box_hi: Vec<u64>,
}

/// The Z-order index: data sorted by Morton code, paged.
#[derive(Debug)]
pub struct ZOrderIndex {
    data: Table,
    encoder: MortonEncoder,
    pages: Vec<Page>,
}

impl ZOrderIndex {
    /// Build over `table`, interleaving `dims` (most selective first), with
    /// the default page size.
    pub fn build(table: &Table, dims: Vec<usize>) -> Self {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE)
    }

    /// Build with an explicit page size (the index's single tunable, §6).
    pub fn build_with_page_size(table: &Table, dims: Vec<usize>, page_size: usize) -> Self {
        assert!(page_size >= 1);
        let encoder = MortonEncoder::new(table, dims);
        let mut keyed: Vec<(u64, u32)> = (0..table.len())
            .map(|r| (encoder.encode_row(table, r), r as u32))
            .collect();
        keyed.sort_unstable();
        let perm: Vec<u32> = keyed.iter().map(|&(_, r)| r).collect();
        let data = table.permuted(&perm);

        let mut pages = Vec::with_capacity(table.len().div_ceil(page_size));
        let dims_n = table.dims();
        let mut at = 0usize;
        while at < data.len() {
            let end = (at + page_size).min(data.len());
            let mut lo = vec![u64::MAX; dims_n];
            let mut hi = vec![0u64; dims_n];
            for row in at..end {
                for d in 0..dims_n {
                    let v = data.value(row, d);
                    lo[d] = lo[d].min(v);
                    hi[d] = hi[d].max(v);
                }
            }
            pages.push(Page {
                start: at as u32,
                end: end as u32,
                z_min: keyed[at].0,
                box_lo: lo,
                box_hi: hi,
            });
            at = end;
        }
        ZOrderIndex {
            data,
            encoder,
            pages,
        }
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

impl MultiDimIndex for ZOrderIndex {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        let (rect_lo, rect_hi) = self.encoder.normalized_rect(query);
        let (z_lo, z_hi) = self.encoder.z_range(&rect_lo, &rect_hi);
        // Last page whose first Z ≤ z_lo could still contain z_lo.
        let first = self
            .pages
            .partition_point(|p| p.z_min <= z_lo)
            .saturating_sub(1);
        let rect = query.rect();
        for page in &self.pages[first..] {
            if page.z_min > z_hi {
                break;
            }
            stats.cells_visited += 1;
            // Scan only when the page's min/max box can match the filter.
            if !rect.intersects_box(&page.box_lo, &page.box_hi) {
                continue;
            }
            stats.ranges_scanned += 1;
            scan_filtered(
                &self.data,
                query,
                page.start as usize,
                page.end as usize,
                agg_dim,
                &mut counter,
                &mut stats,
            );
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.pages
            .iter()
            .map(|p| std::mem::size_of::<Page>() + (p.box_lo.len() + p.box_hi.len()) * 8)
            .sum()
    }

    fn name(&self) -> &'static str {
        "Z Order"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * 40503) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 2_000),
            RangeQuery::all(3)
                .with_range(0, 0, 5_000)
                .with_range(1, 2_000, 3_000),
            RangeQuery::all(3)
                .with_range(0, 9_000, 9_999)
                .with_range(1, 0, 500)
                .with_range(2, 0, 4_000),
            RangeQuery::all(3).with_eq(0, 4),
        ]
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(8_000);
        let idx = ZOrderIndex::build_with_page_size(&t, vec![0, 1, 2], 128);
        for (i, q) in queries().iter().enumerate() {
            let mut v = CountVisitor::default();
            let stats = idx.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
            assert_eq!(stats.points_matched, v.count);
        }
    }

    #[test]
    fn selective_query_skips_pages() {
        let t = table(8_000);
        let idx = ZOrderIndex::build_with_page_size(&t, vec![0, 1, 2], 64);
        let q = RangeQuery::all(3).with_range(0, 0, 99).with_range(1, 0, 99);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        assert!(
            stats.points_scanned < t.len() as u64 / 2,
            "should skip most pages, scanned {}",
            stats.points_scanned
        );
    }

    #[test]
    fn page_size_one_and_huge() {
        let t = table(500);
        for ps in [1usize, 1_000_000] {
            let idx = ZOrderIndex::build_with_page_size(&t, vec![0, 1, 2], ps);
            let q = RangeQuery::all(3).with_range(1, 100, 900);
            let mut v = CountVisitor::default();
            idx.execute(&q, None, &mut v);
            assert_eq!(v.count, reference(&t, &q), "page size {ps}");
        }
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![], vec![]]);
        let idx = ZOrderIndex::build(&t, vec![0, 1, 2]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(3), None, &mut v);
        assert_eq!(v.count, 0);
    }
}
