//! Read-optimized R-tree, bulk loaded with Sort-Tile-Recursive packing.
//!
//! The paper benchmarks libspatialindex's R\*-tree "bulk loaded to optimize
//! for read query performance" (§7.2(8)). libspatialindex's bulk loader is
//! an STR packer, so an STR-packed R-tree with rectangle-pruned descent
//! reproduces the evaluated read path. (See DESIGN.md's substitution table.)

use crate::full_scan::CountingVisitor;
use flood_store::{
    scan_exact, scan_filtered, MultiDimIndex, RangeQuery, ScanStats, Table, Visitor,
};

/// Default leaf capacity (points per leaf page).
pub const DEFAULT_PAGE_SIZE: usize = 1_024;
/// Internal-node fanout.
pub const DEFAULT_FANOUT: usize = 16;

#[derive(Debug)]
struct Node {
    /// Child node ids; empty for leaves.
    children: Vec<u32>,
    box_lo: Vec<u64>,
    box_hi: Vec<u64>,
    start: u32,
    end: u32,
}

/// An STR bulk-loaded R-tree over the indexed dimensions.
#[derive(Debug)]
pub struct RStarTree {
    data: Table,
    nodes: Vec<Node>,
    root: u32,
}

impl RStarTree {
    /// Build over `table`, tiling on `dims` (most selective first).
    pub fn build(table: &Table, dims: Vec<usize>) -> Self {
        Self::build_with_page_size(table, dims, DEFAULT_PAGE_SIZE, DEFAULT_FANOUT)
    }

    /// Build with explicit leaf capacity and fanout.
    pub fn build_with_page_size(
        table: &Table,
        dims: Vec<usize>,
        page_size: usize,
        fanout: usize,
    ) -> Self {
        assert!(page_size >= 1 && fanout >= 2);
        assert!(!dims.is_empty());
        // 1. STR-tile the points into leaves.
        let mut rows: Vec<u32> = (0..table.len() as u32).collect();
        let n_leaves = table.len().div_ceil(page_size).max(1);
        let mut leaf_groups: Vec<Vec<u32>> = Vec::with_capacity(n_leaves);
        str_tile(table, &dims, 0, &mut rows, n_leaves, &mut leaf_groups);

        // 2. Lay leaves out contiguously and wrap them in nodes.
        let mut order: Vec<u32> = Vec::with_capacity(table.len());
        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<u32> = Vec::new();
        for group in &leaf_groups {
            let start = order.len() as u32;
            order.extend_from_slice(group);
            let (lo, hi) = bbox(table, group);
            level.push(nodes.len() as u32);
            nodes.push(Node {
                children: Vec::new(),
                box_lo: lo,
                box_hi: hi,
                start,
                end: order.len() as u32,
            });
        }
        let data = table.permuted(&order);

        // 3. Pack upward until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            for chunk in level.chunks(fanout) {
                let mut lo = nodes[chunk[0] as usize].box_lo.clone();
                let mut hi = nodes[chunk[0] as usize].box_hi.clone();
                for &c in &chunk[1..] {
                    let n = &nodes[c as usize];
                    for d in 0..lo.len() {
                        lo[d] = lo[d].min(n.box_lo[d]);
                        hi[d] = hi[d].max(n.box_hi[d]);
                    }
                }
                let start = nodes[chunk[0] as usize].start;
                let end = nodes[*chunk.last().expect("non-empty") as usize].end;
                next.push(nodes.len() as u32);
                nodes.push(Node {
                    children: chunk.to_vec(),
                    box_lo: lo,
                    box_hi: hi,
                    start,
                    end,
                });
            }
            level = next;
        }
        let root = level.first().copied().unwrap_or(0);
        RStarTree { data, nodes, root }
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Recursive STR tiling: sort by `dims[depth]`, slice into
/// `ceil(target^(1/remaining))` slabs, recurse with the remainder.
fn str_tile(
    table: &Table,
    dims: &[usize],
    depth: usize,
    rows: &mut [u32],
    target_leaves: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if rows.is_empty() {
        return;
    }
    if target_leaves <= 1 || depth >= dims.len() {
        out.push(rows.to_vec());
        return;
    }
    let remaining = dims.len() - depth;
    let slabs = (target_leaves as f64).powf(1.0 / remaining as f64).ceil() as usize;
    let d = dims[depth];
    rows.sort_unstable_by_key(|&r| table.value(r as usize, d));
    let per_slab = rows.len().div_ceil(slabs);
    let leaves_per_slab = target_leaves.div_ceil(slabs);
    for chunk in rows.chunks_mut(per_slab.max(1)) {
        str_tile(table, dims, depth + 1, chunk, leaves_per_slab, out);
    }
}

/// Bounding box over all table dimensions for a set of rows.
fn bbox(table: &Table, rows: &[u32]) -> (Vec<u64>, Vec<u64>) {
    let dims = table.dims();
    let mut lo = vec![u64::MAX; dims];
    let mut hi = vec![0u64; dims];
    for &r in rows {
        for d in 0..dims {
            let v = table.value(r as usize, d);
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    (lo, hi)
}

impl MultiDimIndex for RStarTree {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        if self.data.is_empty() {
            return stats;
        }
        let rect = query.rect();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            stats.cells_visited += 1;
            if !rect.intersects_box(&node.box_lo, &node.box_hi) {
                continue;
            }
            if rect.contains_box(&node.box_lo, &node.box_hi) {
                stats.ranges_scanned += 1;
                scan_exact(
                    &self.data,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    None,
                    &mut counter,
                    &mut stats,
                );
                continue;
            }
            if node.children.is_empty() {
                stats.ranges_scanned += 1;
                scan_filtered(
                    &self.data,
                    query,
                    node.start as usize,
                    node.end as usize,
                    agg_dim,
                    &mut counter,
                    &mut stats,
                );
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.children.len() * 4
                    + (n.box_lo.len() + n.box_hi.len()) * 8
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "R* Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::CountVisitor;

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 10_000).collect(),
            (0..n).map(|i| (i * 48271) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::all(3),
            RangeQuery::all(3).with_range(0, 100, 2_000),
            RangeQuery::all(3)
                .with_range(0, 0, 5_000)
                .with_range(1, 100, 900),
            RangeQuery::all(3).with_range(2, 100, 120),
            RangeQuery::all(3).with_eq(0, 761),
        ]
    }

    #[test]
    fn matches_reference_on_all_queries() {
        let t = table(8_000);
        let idx = RStarTree::build_with_page_size(&t, vec![0, 1, 2], 64, 8);
        for (i, q) in queries().iter().enumerate() {
            let mut v = CountVisitor::default();
            idx.execute(q, None, &mut v);
            assert_eq!(v.count, reference(&t, q), "query {i}");
        }
    }

    #[test]
    fn str_packing_gives_tight_leaves() {
        let t = table(10_000);
        let idx = RStarTree::build_with_page_size(&t, vec![0, 1], 100, 8);
        // STR over 2 dims with 100 leaves → leaves should be spatially tight:
        // a point query touches far fewer nodes than exist.
        let q = RangeQuery::all(3)
            .with_range(0, 5_000, 5_010)
            .with_range(1, 5_000, 5_010);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        assert!(
            stats.cells_visited < idx.num_nodes() as u64 / 2,
            "visited {} of {}",
            stats.cells_visited,
            idx.num_nodes()
        );
    }

    #[test]
    fn containment_exact_scan() {
        let t = table(5_000);
        let idx = RStarTree::build_with_page_size(&t, vec![0, 1, 2], 64, 8);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&RangeQuery::all(3), None, &mut v);
        assert_eq!(v.count, 5_000);
        assert_eq!(stats.points_scanned, 0);
    }

    #[test]
    fn single_point_and_empty() {
        let t1 = Table::from_columns(vec![vec![7], vec![8], vec![9]]);
        let idx = RStarTree::build(&t1, vec![0, 1]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(3).with_eq(0, 7), None, &mut v);
        assert_eq!(v.count, 1);

        let t0 = Table::from_columns(vec![vec![], vec![], vec![]]);
        let idx = RStarTree::build(&t0, vec![0, 1]);
        let mut v = CountVisitor::default();
        idx.execute(&RangeQuery::all(3), None, &mut v);
        assert_eq!(v.count, 0);
    }
}
