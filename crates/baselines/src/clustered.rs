//! Clustered single-dimensional index (§7.2(2), Appendix A).
//!
//! "Points are sorted by the most selective dimension in the query workload,
//! and we learn a B-Tree over this sorted column using an RMI. If a query
//! filter contains this dimension, we locate the endpoints using the RMI.
//! Otherwise, we perform a full scan."
//!
//! Appendix A specifies linear-spline non-leaf layers and linear-regression
//! leaves — exactly our [`Rmi`].

use crate::full_scan::CountingVisitor;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_store::index_trait::ChunkedScanPlan;
use flood_store::{
    scan_filtered, scan_filtered_packed, CumulativeColumn, MultiDimIndex, PartitionedScan,
    RangeQuery, ScanMode, ScanPlan, ScanStats, Table, Visitor,
};

/// A learned clustered index over one dimension.
#[derive(Debug)]
pub struct ClusteredIndex {
    data: Table,
    key_dim: usize,
    rmi: Rmi,
    /// Optional cumulative SUM columns for exact-range aggregation.
    cumulatives: Vec<(usize, CumulativeColumn)>,
    mode: ScanMode,
}

impl ClusteredIndex {
    /// Sort `table` by `key_dim` and learn an RMI over the sorted column.
    pub fn build(table: &Table, key_dim: usize) -> Self {
        Self::build_with_cumulative(table, key_dim, &[])
    }

    /// Like [`ClusteredIndex::build`], also pre-building cumulative SUM
    /// columns over `cumulative_dims`.
    pub fn build_with_cumulative(table: &Table, key_dim: usize, cumulative_dims: &[usize]) -> Self {
        assert!(key_dim < table.dims(), "key dimension out of bounds");
        let mut perm: Vec<u32> = (0..table.len() as u32).collect();
        let col = table.column(key_dim);
        perm.sort_unstable_by_key(|&r| col.get(r as usize));
        let data = table.permuted(&perm);
        let sorted: Vec<u64> = data.column(key_dim).to_vec();
        let rmi = Rmi::build(&sorted, RmiConfig::default());
        let cumulatives = cumulative_dims
            .iter()
            .map(|&d| (d, data.cumulative_sum(d)))
            .collect();
        ClusteredIndex {
            data,
            key_dim,
            rmi,
            cumulatives,
            mode: ScanMode::default(),
        }
    }

    /// Select the scan kernel for residual-filtered ranges (serial and
    /// planned).
    pub fn set_scan_mode(&mut self, mode: ScanMode) {
        self.mode = mode;
    }

    /// The clustering dimension.
    pub fn key_dim(&self) -> usize {
        self.key_dim
    }

    /// The reordered data.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Shared planning for serial and partitioned execution: locate the key
    /// range via the RMI, strip the key dimension from the residual filters,
    /// and pick the cumulative column when the range is exact.
    fn plan_range(&self, query: &RangeQuery, agg_dim: Option<usize>) -> KeyRangePlan<'_> {
        let col = self.data.column(self.key_dim);
        let (start, end, refinements) = match query.bound(self.key_dim) {
            Some((lo, hi)) => (
                self.rmi.lookup_lb(lo, |i| col.get(i)),
                self.rmi.lookup_ub(hi, |i| col.get(i)),
                2,
            ),
            None => (0, self.data.len(), 0),
        };
        // The key dimension is exact within [start, end); drop its check.
        // When it is the only filtered dimension the range is fully exact.
        let mut residual = query.clone();
        if query.filters(self.key_dim) {
            residual = strip_dim(query, self.key_dim);
        }
        let exact = residual.num_filtered() == 0;
        // Selected whenever the aggregation column has prefix sums: exact
        // ranges answer from it outright, and the packed kernel uses it for
        // blocks the residual accepts wholesale. (The decode-first filtered
        // kernel ignores it.)
        let cumulative = agg_dim.and_then(|d| {
            self.cumulatives
                .iter()
                .find(|(dim, _)| *dim == d)
                .map(|(_, c)| c)
        });
        KeyRangePlan {
            start,
            end,
            refinements,
            residual: (!exact).then_some(residual),
            cumulative,
        }
    }
}

/// Output of [`ClusteredIndex::plan_range`].
struct KeyRangePlan<'a> {
    start: usize,
    end: usize,
    refinements: u64,
    /// Filters checked per row; `None` when the range is exact.
    residual: Option<RangeQuery>,
    /// Cumulative SUM column (exact ranges only).
    cumulative: Option<&'a CumulativeColumn>,
}

impl MultiDimIndex for ClusteredIndex {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let plan = self.plan_range(query, agg_dim);
        let mut stats = ScanStats {
            ranges_scanned: 1,
            refinements: plan.refinements,
            ..Default::default()
        };
        let mut counter = CountingVisitor {
            inner: visitor,
            matched: 0,
        };
        match &plan.residual {
            None => flood_store::scan_exact(
                &self.data,
                plan.start,
                plan.end,
                agg_dim,
                plan.cumulative,
                &mut counter,
                &mut stats,
            ),
            Some(residual) if self.mode == ScanMode::Packed => scan_filtered_packed(
                &self.data,
                residual,
                plan.start,
                plan.end,
                agg_dim,
                plan.cumulative,
                &mut counter,
                &mut stats,
            ),
            Some(residual) => scan_filtered(
                &self.data,
                residual,
                plan.start,
                plan.end,
                agg_dim,
                &mut counter,
                &mut stats,
            ),
        }
        stats.points_matched = counter.matched;
        stats
    }

    fn index_size_bytes(&self) -> usize {
        self.rmi.size_bytes()
    }

    fn name(&self) -> &'static str {
        "Clustered"
    }
}

impl PartitionedScan for ClusteredIndex {
    /// The key range located by the RMI, cut into block-aligned chunks.
    /// When the key was the only filter the range is exact and chunks skip
    /// per-row checks (cumulative columns still answer SUMs per chunk).
    fn plan_scan(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> Box<dyn ScanPlan + '_> {
        let plan = self.plan_range(query, agg_dim);
        Box::new(ChunkedScanPlan::new(
            &self.data,
            plan.residual,
            agg_dim,
            plan.cumulative,
            self.mode,
            &[(plan.start, plan.end)],
            max_tasks,
            ScanStats {
                ranges_scanned: 1,
                refinements: plan.refinements,
                ..Default::default()
            },
        ))
    }
}

/// A copy of `query` without the filter on `dim`.
fn strip_dim(query: &RangeQuery, dim: usize) -> RangeQuery {
    let mut q = RangeQuery::all(query.dims());
    for d in 0..query.dims() {
        if d != dim {
            if let Some((lo, hi)) = query.bound(d) {
                q = q.with_range(d, lo, hi);
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::{CountVisitor, SumVisitor};

    fn table() -> Table {
        let n = 10_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 100_000).collect(),
            (0..n).map(|i| i % 500).collect(),
        ])
    }

    fn reference(t: &Table, q: &RangeQuery) -> u64 {
        (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64
    }

    #[test]
    fn keyed_range_query() {
        let t = table();
        let idx = ClusteredIndex::build(&t, 0);
        let q = RangeQuery::all(2).with_range(0, 10_000, 30_000);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        // Key-only filter ⇒ exact range, zero scan overhead.
        assert_eq!(stats.points_scanned, 0);
        assert_eq!(stats.points_in_exact_ranges, v.count);
    }

    #[test]
    fn multi_dim_query_scans_key_range_only() {
        let t = table();
        let idx = ClusteredIndex::build(&t, 0);
        let q = RangeQuery::all(2)
            .with_range(0, 10_000, 30_000)
            .with_range(1, 100, 200);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        assert!(stats.points_scanned < t.len() as u64);
    }

    #[test]
    fn unkeyed_query_full_scans() {
        let t = table();
        let idx = ClusteredIndex::build(&t, 0);
        let q = RangeQuery::all(2).with_range(1, 100, 120);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, reference(&t, &q));
        assert_eq!(stats.points_scanned, t.len() as u64);
    }

    #[test]
    fn cumulative_sum_on_exact_range() {
        let t = table();
        let idx = ClusteredIndex::build_with_cumulative(&t, 0, &[1]);
        let q = RangeQuery::all(2).with_range(0, 0, 50_000);
        let mut v = SumVisitor::default();
        let stats = idx.execute(&q, Some(1), &mut v);
        let want: u64 = (0..t.len())
            .filter(|&r| q.matches(&t.row(r)))
            .map(|r| t.value(r, 1))
            .sum();
        assert_eq!(v.sum, want);
        assert_eq!(stats.points_scanned, 0, "prefix sums answer exact SUMs");
    }

    #[test]
    fn empty_result() {
        let t = table();
        let idx = ClusteredIndex::build(&t, 0);
        let q = RangeQuery::all(2).with_range(0, 200_000, 300_000);
        let mut v = CountVisitor::default();
        idx.execute(&q, None, &mut v);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn partitioned_plan_matches_serial() {
        let t = table();
        let idx = ClusteredIndex::build_with_cumulative(&t, 0, &[1]);
        // Exact (key-only), filtered (key + residual), and unkeyed plans.
        let queries = [
            RangeQuery::all(2).with_range(0, 10_000, 60_000),
            RangeQuery::all(2)
                .with_range(0, 10_000, 60_000)
                .with_range(1, 100, 300),
            RangeQuery::all(2).with_range(1, 100, 300),
        ];
        for (qi, q) in queries.iter().enumerate() {
            let mut serial = SumVisitor::default();
            let serial_stats = idx.execute(q, Some(1), &mut serial);
            for max_tasks in [1, 4, 9] {
                let plan = idx.plan_scan(q, Some(1), max_tasks);
                let mut merged = SumVisitor::default();
                let mut stats = plan.plan_stats();
                for i in 0..plan.tasks() {
                    let mut v = SumVisitor::default();
                    let mut s = flood_store::ScanStats::default();
                    plan.run_task(i, &mut v, &mut s);
                    merged.sum = merged.sum.wrapping_add(v.sum);
                    merged.count += v.count;
                    stats.merge(&s);
                }
                assert_eq!(merged.sum, serial.sum, "query {qi}, {max_tasks} tasks");
                assert_eq!(stats, serial_stats, "query {qi}, {max_tasks} tasks");
            }
        }
    }
}
