//! Property tests for the column store: compression is lossless, cumulative
//! columns match naive sums, scans agree with brute force.

use flood_store::{
    scan_exact, scan_filtered, Column, CompressedColumn, CountVisitor, CumulativeColumn,
    RangeQuery, ScanStats, SumVisitor, Table,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_is_lossless(values in proptest::collection::vec(any::<u64>(), 0..600)) {
        let c = CompressedColumn::compress(&values);
        prop_assert_eq!(c.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
        }
        prop_assert_eq!(c.to_vec(), values);
    }

    #[test]
    fn compression_never_grows_much(values in proptest::collection::vec(0u64..1_000_000, 1..600)) {
        // Block-delta adds per-block metadata but packed deltas of bounded
        // values must stay well under one word per value + overhead.
        let c = CompressedColumn::compress(&values);
        prop_assert!(c.size_bytes() <= values.len() * 8 + 64 * (values.len() / 128 + 1) + 64);
    }

    #[test]
    fn cumulative_matches_naive(values in proptest::collection::vec(any::<u64>(), 1..300),
                                a in 0usize..300, b in 0usize..300) {
        let n = values.len();
        let (s, e) = ((a % n).min(b % n), (a % n).max(b % n));
        let col = Column::plain(values.clone());
        let c = CumulativeColumn::build(&col);
        let naive = values[s..=e].iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(c.range_sum(s, e), naive);
    }

    #[test]
    fn filtered_scan_matches_bruteforce(
        rows in proptest::collection::vec((0u64..50, 0u64..50), 1..300),
        lo0 in 0u64..50, w0 in 0u64..20,
        lo1 in 0u64..50, w1 in 0u64..20,
    ) {
        let t = Table::from_columns(vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
        ]);
        let q = RangeQuery::all(2)
            .with_range(0, lo0, lo0 + w0)
            .with_range(1, lo1, lo1 + w1);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 0, t.len(), None, &mut v, &mut s);
        let truth = rows
            .iter()
            .filter(|r| r.0 >= lo0 && r.0 <= lo0 + w0 && r.1 >= lo1 && r.1 <= lo1 + w1)
            .count() as u64;
        prop_assert_eq!(v.count, truth);
        prop_assert_eq!(s.points_scanned, t.len() as u64);
    }

    #[test]
    fn exact_scan_sums_match_with_and_without_cumulative(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
        a in 0usize..300, b in 0usize..300,
    ) {
        let n = values.len();
        let (s, e) = ((a % n).min(b % n), (a % n).max(b % n));
        let t = Table::from_columns(vec![values]);
        let cum = t.cumulative_sum(0);
        let mut with = SumVisitor::default();
        let mut stats = ScanStats::default();
        scan_exact(&t, s, e + 1, Some(0), Some(&cum), &mut with, &mut stats);
        let mut without = SumVisitor::default();
        scan_exact(&t, s, e + 1, Some(0), None, &mut without, &mut stats);
        prop_assert_eq!(with.sum, without.sum);
        prop_assert_eq!(with.count, without.count);
    }

    #[test]
    fn permutation_is_a_bijection(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
    ) {
        let n = values.len();
        // A pseudo-random permutation derived from the seed.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let t = Table::from_columns(vec![values.clone()]);
        let p = t.permuted(&perm);
        let mut back: Vec<u64> = (0..n).map(|i| p.value(i, 0)).collect();
        let mut orig = values;
        back.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(back, orig);
    }
}
