//! Differential property suite: the packed-domain scan kernels are
//! bit-identical to the decode-first kernels.
//!
//! For arbitrary tables (mixed plain/compressed columns), check lists, row
//! sub-ranges and visitors, `scan_checked_dims_packed` must produce exactly
//! the results *and* the [`ScanStats`] of `scan_checked_dims` — block
//! counters and wall-clock aside, which only the packed side records; the
//! shared [`assert_stats_equivalent`] helper normalizes both sides.
//! Likewise `scan_filtered_packed` vs `scan_filtered` and
//! `scan_full_packed` vs `scan_full`.
//!
//! Generators deliberately cover the adversarial block shapes: width-0
//! (constant) blocks from run-length columns, width-64 blocks from
//! full-range values, predicate bounds snapped exactly onto a block's
//! min/max, and partial last blocks from non-multiple-of-128 lengths.
//! Deterministic anchors at the bottom pin the counter semantics the
//! properties can't see (how many blocks were skipped/accepted/probed).
//!
//! `FLOOD_PROPTEST_CASES` scales the case count (CI raises it on push).

use flood_store::{
    assert_stats_equivalent, scan_checked_dims, scan_checked_dims_packed, scan_filtered,
    scan_filtered_packed, scan_full, scan_full_packed, CollectVisitor, CountVisitor,
    CumulativeColumn, MinMaxVisitor, RangeQuery, ScanStats, SumVisitor, Table, Visitor, BLOCK_LEN,
};
use proptest::prelude::*;

/// Case-count override from `FLOOD_PROPTEST_CASES` (unset/invalid → default).
fn cases(default: u32) -> u32 {
    std::env::var("FLOOD_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// SplitMix64 — deterministic column fill from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Column 2's run-length spec: `(value, run_len)` pairs. Runs ≥ [`BLOCK_LEN`]
/// (and adjacent equal runs) produce genuine width-0 blocks.
type Runs = Vec<(u64, usize)>;

/// Three columns sharing the length the runs column dictates:
/// d0 local (small deltas), d1 full-range u64 (width-64 blocks), d2 runs.
fn build_table(runs: &Runs, seed: u64) -> Table {
    let len: usize = runs.iter().map(|&(_, n)| n).sum();
    let mut s = seed;
    let d0: Vec<u64> = (0..len)
        .map(|_| (1 << 20) | (splitmix(&mut s) % 256))
        .collect();
    let d1: Vec<u64> = (0..len).map(|_| splitmix(&mut s)).collect();
    let d2: Vec<u64> = runs
        .iter()
        .flat_map(|&(v, n)| std::iter::repeat_n(v, n))
        .collect();
    Table::from_columns(vec![d0, d1, d2])
}

/// How one query bound is chosen once the table exists.
#[derive(Debug, Clone, Copy)]
enum Bound {
    /// `sel / 1000` of the dimension's [min, max] span.
    Frac(u16),
    /// Exactly block `sel % num_blocks`'s min (`false`) or max (`true`) —
    /// only meaningful on compressed columns; falls back to `Frac` on plain.
    BlockEdge(u16, bool),
}

fn bound_strategy() -> impl Strategy<Value = Bound> {
    prop_oneof![
        (0u16..1001).prop_map(Bound::Frac),
        (0u16..64, proptest::arbitrary::any::<bool>()).prop_map(|(b, mx)| Bound::BlockEdge(b, mx)),
    ]
}

fn resolve(table: &Table, dim: usize, b: Bound) -> u64 {
    let (mn, mx) = table.dim_bounds(dim);
    match b {
        Bound::BlockEdge(sel, want_max) => match table.column(dim).as_compressed() {
            Some(c) if !c.blocks().is_empty() => {
                let blk = &c.blocks()[sel as usize % c.blocks().len()];
                if want_max {
                    blk.max()
                } else {
                    blk.min()
                }
            }
            _ => resolve(table, dim, Bound::Frac(sel % 1001)),
        },
        Bound::Frac(sel) => mn + ((mx - mn) as u128 * sel as u128 / 1000) as u64,
    }
}

/// One dimension's filter spec; resolved against the built table.
type DimFilter = Option<(Bound, Bound)>;

fn filter_strategy() -> impl Strategy<Value = DimFilter> {
    prop_oneof![
        Just(None),
        (bound_strategy(), bound_strategy()).prop_map(Some),
    ]
}

/// Resolve filter specs into a checked-dims list and the equivalent query.
fn make_checks(table: &Table, filters: &[DimFilter; 3]) -> (Vec<(usize, u64, u64)>, RangeQuery) {
    let mut checks = Vec::new();
    let mut query = RangeQuery::all(3);
    for (d, f) in filters.iter().enumerate() {
        if let Some((a, b)) = f {
            let (x, y) = (resolve(table, d, *a), resolve(table, d, *b));
            let (lo, hi) = (x.min(y), x.max(y));
            checks.push((d, lo, hi));
            query = query.with_range(d, lo, hi);
        }
    }
    (checks, query)
}

/// Run both kernels with visitor `V`; results and normalized stats must be
/// bit-identical. Returns the packed side's stats for counter assertions.
#[allow(clippy::too_many_arguments)]
fn diff_checked<V: Visitor + Default, R: PartialEq + std::fmt::Debug>(
    table: &Table,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    extract: fn(&V) -> R,
    label: &str,
) -> ScanStats {
    let mut dv = V::default();
    let mut ds = ScanStats::default();
    scan_checked_dims(table, checks, start, end, agg, &mut dv, &mut ds);
    let mut pv = V::default();
    let mut ps = ScanStats::default();
    scan_checked_dims_packed(table, checks, start, end, agg, cumulative, &mut pv, &mut ps);
    assert_eq!(extract(&pv), extract(&dv), "{label}: result");
    assert_stats_equivalent(&ps, &ds, label);
    ps
}

/// The four visitor kinds over one (table, checks, range) instance.
fn diff_all_visitors(
    table: &Table,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    cumulative: Option<&CumulativeColumn>,
) {
    diff_checked::<CountVisitor, _>(table, checks, start, end, None, None, |v| v.count, "count");
    diff_checked::<SumVisitor, _>(
        table,
        checks,
        start,
        end,
        Some(1),
        cumulative,
        |v| (v.sum, v.count),
        "sum",
    );
    diff_checked::<MinMaxVisitor, _>(
        table,
        checks,
        start,
        end,
        Some(1),
        None,
        |v| (v.min, v.max, v.count),
        "minmax",
    );
    // Exact row order, not set equality: serial kernels must agree visit
    // for visit.
    diff_checked::<CollectVisitor, _>(
        table,
        checks,
        start,
        end,
        None,
        None,
        |v| v.rows.clone(),
        "collect",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Core differential: arbitrary tables × filters × sub-ranges ×
    /// compression masks, all four visitors.
    #[test]
    fn packed_equals_decode_first(
        runs in proptest::collection::vec((0u64..6, 1usize..220), 1..8),
        seed in 0u64..1_000_000,
        filters in (filter_strategy(), filter_strategy(), filter_strategy()),
        compress_mask in 0u8..8,
        range_sel in (0u16..1000, 0u16..1000),
    ) {
        let mut table = build_table(&runs, seed);
        // Compress a per-case subset of columns; checks on the plain rest
        // exercise the packed kernel's per-row residual path (mask 0 = all
        // plain, where the packed kernels must delegate outright).
        let dims: Vec<usize> = (0..3).filter(|d| compress_mask & (1 << d) != 0).collect();
        table.compress_dims(&dims);
        let len = table.len();
        let (a, b) = (
            len * range_sel.0 as usize / 1000,
            len * range_sel.1 as usize / 1000,
        );
        let (start, end) = (a.min(b), a.max(b));
        let filters = [filters.0, filters.1, filters.2];
        let (checks, query) = make_checks(&table, &filters);
        let cumulative = table.cumulative_sum(1);

        diff_all_visitors(&table, &checks, start, end, Some(&cumulative));

        // The filtered/full wrappers route identically.
        let mut dv = SumVisitor::default();
        let mut ds = ScanStats::default();
        scan_filtered(&table, &query, start, end, Some(1), &mut dv, &mut ds);
        let mut pv = SumVisitor::default();
        let mut ps = ScanStats::default();
        scan_filtered_packed(
            &table, &query, start, end, Some(1), Some(&cumulative), &mut pv, &mut ps,
        );
        prop_assert_eq!((pv.sum, pv.count), (dv.sum, dv.count));
        assert_stats_equivalent(&ps, &ds, "scan_filtered wrappers");

        let mut dv = CountVisitor::default();
        let mut ds = ScanStats::default();
        scan_full(&table, &query, None, &mut dv, &mut ds);
        let mut pv = CountVisitor::default();
        let mut ps = ScanStats::default();
        scan_full_packed(&table, &query, None, None, &mut pv, &mut ps);
        prop_assert_eq!(pv.count, dv.count);
        assert_stats_equivalent(&ps, &ds, "scan_full wrappers");
    }

    /// Compression must not change what a kernel computes: the packed scan
    /// over the compressed table equals the decode-first scan over the
    /// *plain* copy, stats included.
    #[test]
    fn packed_on_compressed_equals_plain_reference(
        runs in proptest::collection::vec((0u64..6, 1usize..220), 1..8),
        seed in 0u64..1_000_000,
        filters in (filter_strategy(), filter_strategy(), filter_strategy()),
    ) {
        let plain = build_table(&runs, seed);
        let mut compressed = plain.clone();
        compressed.compress();
        let filters = [filters.0, filters.1, filters.2];
        // Resolve bounds against the compressed table so BlockEdge snaps.
        let (checks, _) = make_checks(&compressed, &filters);
        let len = plain.len();

        let mut rv = CollectVisitor::default();
        let mut rs = ScanStats::default();
        scan_checked_dims(&plain, &checks, 0, len, None, &mut rv, &mut rs);
        let mut pv = CollectVisitor::default();
        let mut ps = ScanStats::default();
        scan_checked_dims_packed(&compressed, &checks, 0, len, None, None, &mut pv, &mut ps);
        prop_assert_eq!(&pv.rows, &rv.rows);
        assert_stats_equivalent(&ps, &rs, "compressed vs plain reference");
    }
}

// ---------------------------------------------------------------------------
// Deterministic anchors: block-counter semantics the properties can't pin.
// ---------------------------------------------------------------------------

fn compressed_table(cols: Vec<Vec<u64>>) -> Table {
    let mut t = Table::from_columns(cols);
    t.compress();
    t
}

#[test]
fn constant_blocks_skip_and_accept_without_probing() {
    // 300 rows of the constant 7: three width-0 blocks (128 + 128 + 44).
    let t = compressed_table(vec![vec![7; 300]]);
    let skip = diff_checked::<CountVisitor, _>(
        &t,
        &[(0, 8, 9)],
        0,
        300,
        None,
        None,
        |v| v.count,
        "skip-all",
    );
    assert_eq!(
        (
            skip.blocks_skipped,
            skip.blocks_accepted,
            skip.blocks_probed
        ),
        (3, 0, 0),
        "always-false predicate must dismiss every block from metadata"
    );
    let accept = diff_checked::<CountVisitor, _>(
        &t,
        &[(0, 7, 7)],
        0,
        300,
        None,
        None,
        |v| v.count,
        "accept-all",
    );
    assert_eq!(
        (
            accept.blocks_skipped,
            accept.blocks_accepted,
            accept.blocks_probed
        ),
        (0, 3, 0),
        "width-0 blocks are accepted or skipped, never probed"
    );
}

#[test]
fn sorted_data_skips_out_of_range_blocks() {
    // Sorted column: block b holds values [128b, 128b+127] exactly.
    let t = compressed_table(vec![(0..1024).collect()]);
    // Bounds exactly on block 3's min and block 5's max: blocks 3..=5
    // accepted wholesale, everything else skipped, nothing probed.
    let s = diff_checked::<CountVisitor, _>(
        &t,
        &[(0, 3 * 128, 5 * 128 + 127)],
        0,
        1024,
        None,
        None,
        |v| v.count,
        "block-aligned bounds",
    );
    assert_eq!(
        (s.blocks_skipped, s.blocks_accepted, s.blocks_probed),
        (5, 3, 0)
    );
    // Shift both bounds one value inward: the edge blocks must be probed.
    let s = diff_checked::<CountVisitor, _>(
        &t,
        &[(0, 3 * 128 + 1, 5 * 128 + 126)],
        0,
        1024,
        None,
        None,
        |v| v.count,
        "interior bounds",
    );
    assert_eq!(
        (s.blocks_skipped, s.blocks_accepted, s.blocks_probed),
        (5, 1, 2)
    );
}

#[test]
fn width_64_blocks_differential() {
    let vals: Vec<u64> = (0..256)
        .map(|i| if i % 2 == 0 { i } else { u64::MAX - i })
        .collect();
    let t = compressed_table(vec![vals]);
    for (lo, hi) in [
        (0, u64::MAX),
        (0, 255),
        (u64::MAX - 255, u64::MAX),
        (128, u64::MAX - 128),
        (300, 400), // matches nothing but can't be skipped by min/max
    ] {
        diff_checked::<CollectVisitor, _>(
            &t,
            &[(0, lo, hi)],
            0,
            256,
            None,
            None,
            |v| v.rows.clone(),
            "width-64",
        );
    }
}

#[test]
fn partial_last_block_never_emits_padding() {
    // 200 rows: one full block + one 72-row block whose packed words carry
    // zero-padding lanes. An accept-everything predicate must yield exactly
    // 200 rows, and a probe must never surface offsets ≥ 72.
    let t = compressed_table(vec![(500..700).collect()]);
    let s = diff_checked::<CountVisitor, _>(
        &t,
        &[(0, 0, u64::MAX)],
        0,
        200,
        None,
        None,
        |v| v.count,
        "accept partial block",
    );
    assert_eq!((s.blocks_accepted, s.blocks_probed), (2, 0));
    // Delta 0 (the padding lanes' value) inside the predicate: probe path.
    diff_checked::<CollectVisitor, _>(
        &t,
        &[(0, 628, 699)],
        0,
        200,
        None,
        None,
        |v| v.rows.clone(),
        "probe partial block",
    );
}

#[test]
fn accepted_blocks_answer_sums_from_cumulative() {
    // Sorted key: a mid-range predicate accepts interior blocks wholesale.
    let key: Vec<u64> = (0..1024).collect();
    let agg: Vec<u64> = (0..1024).map(|i| i * 3 + 1).collect();
    let t = compressed_table(vec![key, agg]);
    let cumulative = t.cumulative_sum(1);
    let checks = [(0usize, 130u64, 900u64)];
    let mut dv = SumVisitor::default();
    let mut ds = ScanStats::default();
    scan_checked_dims(&t, &checks, 0, 1024, Some(1), &mut dv, &mut ds);
    let mut pv = SumVisitor::default();
    let mut ps = ScanStats::default();
    scan_checked_dims_packed(
        &t,
        &checks,
        0,
        1024,
        Some(1),
        Some(&cumulative),
        &mut pv,
        &mut ps,
    );
    assert_eq!((pv.sum, pv.count), (dv.sum, dv.count));
    assert_stats_equivalent(&ps, &ds, "wholesale-accept anchor");
    assert!(
        ps.blocks_accepted >= 4,
        "interior blocks must be accepted wholesale, got {ps:?}"
    );
}

#[test]
fn empty_tables_and_empty_ranges() {
    let t = compressed_table(vec![vec![], vec![]]);
    diff_all_visitors(&t, &[(0, 0, 10)], 0, 0, None);
    let t = compressed_table(vec![(0..300).collect(), (300..600).collect()]);
    diff_all_visitors(&t, &[(0, 0, 10)], 150, 150, None);
    // Sub-range entirely inside one block.
    diff_all_visitors(&t, &[(0, 100, 200)], 130, 140, None);
}

#[test]
fn unaligned_subranges_match() {
    // Scan ranges that start/end mid-block exercise the offset clamps.
    let t = compressed_table(vec![
        (0..1000).map(|i| i % 97).collect(),
        (0..1000).map(|i| i * 31).collect(),
    ]);
    for (s, e) in [(1, 999), (127, 129), (128, 256), (130, 890), (0, 1)] {
        diff_all_visitors(&t, &[(0, 10, 60)], s, e, None);
    }
}

#[test]
fn block_len_is_what_these_tests_assume() {
    // The counter arithmetic above hard-codes 128-row blocks.
    assert_eq!(BLOCK_LEN, 128);
}
