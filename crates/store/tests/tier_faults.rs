//! Fault-injection suite for the cold tier: I/O errors, short reads, and
//! corruption at chosen segment loads must surface as typed
//! [`StorageError`]s — never a panic, never partial results, never a
//! silently wrong answer — and a retry after a transient fault must
//! produce exactly the full result set.

use flood_store::tier::index::SCAN_RETRIES;
use flood_store::tier::scan::scan_checked_dims_tiered;
use flood_store::{
    CollectVisitor, CountVisitor, FailingBackend, FileBackend, MemBackend, RangeQuery, ScanStats,
    StorageBackend, StorageError, SumVisitor, TierConfig, TieredScan, TieredTable,
};
use std::sync::Arc;

fn table(n: u64) -> flood_store::Table {
    flood_store::Table::from_columns(vec![
        (0..n).collect(),
        (0..n).map(|i| (i * 31) % 1_009 + 1).collect(),
    ])
}

/// Seal over a [`FailingBackend`] with everything cold (budget 0), so
/// every query load goes through the injector.
fn failing_setup(n: u64) -> (TieredTable, Arc<FailingBackend>) {
    let failing = Arc::new(FailingBackend::new(Arc::new(MemBackend::new())));
    let tiered = TieredTable::seal(
        &table(n),
        failing.clone() as Arc<dyn StorageBackend>,
        TierConfig {
            budget_bytes: 0,
            segment_blocks: 2,
        },
    )
    .unwrap();
    (tiered, failing)
}

#[test]
fn injected_error_at_every_load_position_is_typed_and_clean() {
    let (tiered, failing) = failing_setup(1_024);
    let checks = [(0usize, 100u64, 900u64)];
    // Baseline: how many loads does this query perform?
    let mut v = SumVisitor::default();
    let mut s = ScanStats::default();
    scan_checked_dims_tiered(&tiered, &checks, 0, 1_024, Some(1), &mut v, &mut s).unwrap();
    let loads_per_query = s.segments_faulted;
    assert!(
        loads_per_query >= 2,
        "query must load several segments: {s:?}"
    );
    let want = (v.sum, v.count);
    let base_loads = failing.loads();

    // Fail each load ordinal of the query in turn: whichever segment dies,
    // the scan reports a typed error with no partial results, and the
    // retry returns the complete answer.
    for k in 0..loads_per_query {
        failing.fail_load(1 + k);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        let err = scan_checked_dims_tiered(&tiered, &checks, 0, 1_024, Some(1), &mut v, &mut s)
            .unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "load {k}: {err}");
        assert!(err.key().is_some(), "error must name the failing segment");
        assert_eq!((v.sum, v.count), (0, 0), "load {k}: partial results leaked");
        assert_eq!(s, ScanStats::default(), "load {k}: stats leaked");

        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_checked_dims_tiered(&tiered, &checks, 0, 1_024, Some(1), &mut v, &mut s).unwrap();
        assert_eq!((v.sum, v.count), want, "load {k}: retry must be complete");
    }
    assert_eq!(failing.injected(), loads_per_query);
    assert!(failing.loads() > base_loads);
}

#[test]
fn short_reads_surface_as_corruption_not_panic() {
    let (tiered, failing) = failing_setup(512);
    for keep in [0, 1, 7, 19, 100] {
        failing.short_read_load(1, keep);
        let mut v = CollectVisitor::default();
        let mut s = ScanStats::default();
        let err = scan_checked_dims_tiered(&tiered, &[(0, 1, 510)], 0, 512, None, &mut v, &mut s)
            .unwrap_err();
        match err {
            StorageError::Corrupt { detail, .. } => {
                assert!(!detail.is_empty(), "corruption should say what failed");
            }
            other => panic!("short read of {keep}B must decode-fail, got {other}"),
        }
        assert!(v.rows.is_empty(), "keep={keep}: partial results leaked");
    }
}

#[test]
fn overwritten_blob_fails_checksum() {
    let mem = Arc::new(MemBackend::new());
    let tiered = TieredTable::seal(
        &table(512),
        mem.clone() as Arc<dyn StorageBackend>,
        TierConfig {
            budget_bytes: 0,
            segment_blocks: 2,
        },
    )
    .unwrap();
    // Clobber one stored segment with garbage of plausible length.
    let victim = tiered.segment_key(0, 0);
    mem.put(victim, &vec![0xAB; 4_096]).unwrap();
    let mut v = CountVisitor::default();
    let mut s = ScanStats::default();
    let err = scan_checked_dims_tiered(&tiered, &[(0, 1, 510)], 0, 512, None, &mut v, &mut s)
        .unwrap_err();
    match &err {
        StorageError::Corrupt { key, .. } => assert_eq!(*key, victim),
        other => panic!("expected Corrupt, got {other}"),
    }
    assert_eq!(v.count, 0);
}

#[test]
fn deleted_file_is_missing_truncated_file_is_corrupt() {
    let dir_backend = FileBackend::new_temp().unwrap();
    let dir = dir_backend.dir().to_path_buf();
    let backend: Arc<dyn StorageBackend> = Arc::new(dir_backend);
    let tiered = TieredTable::seal(
        &table(512),
        backend,
        TierConfig {
            budget_bytes: 0,
            segment_blocks: 2,
        },
    )
    .unwrap();
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!files.is_empty());

    // Truncate every blob: the first needed load decodes short → Corrupt.
    for f in &files {
        let bytes = std::fs::read(f).unwrap();
        std::fs::write(f, &bytes[..bytes.len() / 2]).unwrap();
    }
    let mut v = CountVisitor::default();
    let mut s = ScanStats::default();
    let err = scan_checked_dims_tiered(&tiered, &[(0, 1, 510)], 0, 512, None, &mut v, &mut s)
        .unwrap_err();
    assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");

    // Remove them outright: Missing, still typed, still no panic.
    for f in &files {
        std::fs::remove_file(f).unwrap();
    }
    let err = scan_checked_dims_tiered(&tiered, &[(0, 1, 510)], 0, 512, None, &mut v, &mut s)
        .unwrap_err();
    assert!(matches!(err, StorageError::Missing { .. }), "{err}");
    assert_eq!(v.count, 0, "no emission across any failure mode");
}

#[test]
fn index_retry_policy_heals_transients_and_reports_persistents() {
    let (tiered, failing) = failing_setup(1_024);
    let idx = TieredScan::new(tiered);
    let q = RangeQuery::all(2).with_range(0, 0, 700);

    // One transient failure: the infallible surface absorbs it.
    failing.fail_load(1);
    let mut v = CountVisitor::default();
    let stats = flood_store::MultiDimIndex::execute(&idx, &q, None, &mut v);
    assert_eq!(v.count, 701, "retry produced duplicates or losses");
    assert_eq!(stats.points_matched, 701);

    // More consecutive failures than the retry budget: try_execute (the
    // fallible surface servers use) reports every attempt's error.
    for _ in 0..=SCAN_RETRIES {
        failing.fail_load(1);
        let mut v = CountVisitor::default();
        assert!(idx.try_execute(&q, None, &mut v).is_err());
        assert_eq!(v.count, 0);
    }
    // Injections exhausted: the next call is whole again.
    let mut v = CountVisitor::default();
    idx.try_execute(&q, None, &mut v).unwrap();
    assert_eq!(v.count, 701);
}

#[test]
fn compaction_write_failure_leaves_table_and_buffer_intact() {
    use flood_store::TieredDelta;
    let (tiered, failing) = failing_setup(300);
    let before_len = tiered.len();
    let before_keys = tiered.segment_keys(0);
    let mut delta = TieredDelta::with_threshold(tiered, usize::MAX);
    for i in 0..10u64 {
        delta.insert(&[i, i + 1]).unwrap();
    }
    // Unaligned base (300 rows): compaction must first *read* the tail
    // segment; fail that load.
    failing.fail_load(1);
    let err = delta.compact().unwrap_err();
    assert!(matches!(err, StorageError::Io { .. }), "{err}");
    assert_eq!(
        delta.buffered(),
        10,
        "failed compaction must keep the buffer"
    );
    assert_eq!(delta.base().len(), before_len);
    assert_eq!(delta.base().segment_keys(0), before_keys, "base unchanged");

    // Retry heals; queries see every row exactly once.
    delta.compact().unwrap();
    assert_eq!(delta.buffered(), 0);
    let mut v = CountVisitor::default();
    delta
        .try_execute(&RangeQuery::all(2), None, &mut v)
        .unwrap();
    assert_eq!(v.count, 310);
}
