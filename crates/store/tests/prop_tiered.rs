//! Differential property suite: tiered scans ≡ fully-resident scans.
//!
//! For arbitrary tables, predicates, sub-ranges, memory budgets (including
//! zero — everything cold, every scan faults) and adversarial eviction
//! schedules injected between queries, `scan_checked_dims_tiered` must
//! produce exactly the results, row order, *and* every pre-existing
//! [`ScanStats`] counter of `scan_checked_dims_packed` over the same data
//! fully resident — block counters included, since tiered planning must
//! make the identical skip/accept/probe decision from resident metadata.
//! Only the tier counters (`segments_*`) are new; the
//! [`ScanStats::sans_tier_counters`] helper normalizes them away, the
//! same way `sans_block_counters` bridges packed and decode-first scans.
//!
//! Residency is *performance* state, never *result* state: evicting
//! everything, shrinking the budget mid-workload, or re-running a query
//! against a cold cache must be invisible in results.
//!
//! `FLOOD_PROPTEST_CASES` scales the case count (CI raises it on push);
//! `FLOOD_MEM_BUDGET`, when set, is added to the budget pool so CI can
//! force a mostly-cold run of this whole suite.

use flood_store::tier::scan::scan_checked_dims_tiered;
use flood_store::{
    scan_checked_dims_packed, CountVisitor, MemBackend, MinMaxVisitor, ScanStats, SumVisitor,
    Table, TierConfig, TieredTable, Visitor,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Case-count override from `FLOOD_PROPTEST_CASES` (unset/invalid → default).
fn cases(default: u32) -> u32 {
    std::env::var("FLOOD_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// SplitMix64 — deterministic column fill from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Column 2's run-length spec, as in `prop_packed_scan`: long runs produce
/// width-0 blocks, the metadata-only fast path a tiered scan must also
/// take (skip/accept with zero segment I/O).
type Runs = Vec<(u64, usize)>;

fn build_table(runs: &Runs, seed: u64) -> Table {
    let len: usize = runs.iter().map(|&(_, n)| n).sum();
    let mut s = seed;
    let d0: Vec<u64> = (0..len)
        .map(|_| (1 << 20) | (splitmix(&mut s) % 256))
        .collect();
    let d1: Vec<u64> = (0..len).map(|_| splitmix(&mut s)).collect();
    let d2: Vec<u64> = runs
        .iter()
        .flat_map(|&(v, n)| std::iter::repeat_n(v, n))
        .collect();
    Table::from_columns(vec![d0, d1, d2])
}

/// The budget pool: everything-cold, tiny (heavy eviction churn), medium,
/// effectively-unbounded — plus the CI override when present.
fn budgets() -> Vec<usize> {
    let mut b = vec![0, 2_048, 64 << 10, 1 << 30];
    if let Some(env) = std::env::var("FLOOD_MEM_BUDGET")
        .ok()
        .and_then(|s| s.trim().parse().ok())
    {
        b.push(env);
    }
    b
}

/// An adversarial residency perturbation injected between queries.
#[derive(Debug, Clone, Copy)]
enum Evict {
    /// Leave the cache as the previous query left it.
    None,
    /// Drop every resident segment.
    All,
    /// Shrink the budget to `frac/1000` of its value (evicting down to it
    /// immediately), then restore the original budget.
    Squeeze(u16),
}

fn evict_strategy() -> impl Strategy<Value = Evict> {
    prop_oneof![
        Just(Evict::None),
        Just(Evict::All),
        (0u16..1000).prop_map(Evict::Squeeze),
    ]
}

fn apply_evict(t: &TieredTable, op: Evict) {
    match op {
        Evict::None => {}
        Evict::All => t.cache().evict_all(),
        Evict::Squeeze(frac) => {
            let budget = t.cache().budget_bytes();
            t.cache().set_budget(budget / 1000 * frac as usize);
            t.cache().set_budget(budget);
        }
    }
}

/// How one query bound is chosen once the table exists (as in
/// `prop_packed_scan`: fractions of the span plus exact block edges).
#[derive(Debug, Clone, Copy)]
enum Bound {
    Frac(u16),
    BlockEdge(u16, bool),
}

fn bound_strategy() -> impl Strategy<Value = Bound> {
    prop_oneof![
        (0u16..1001).prop_map(Bound::Frac),
        (0u16..64, proptest::arbitrary::any::<bool>()).prop_map(|(b, mx)| Bound::BlockEdge(b, mx)),
    ]
}

fn resolve(tiered: &TieredTable, dim: usize, b: Bound) -> u64 {
    let meta = tiered.tiered_column(dim).meta();
    let (mn, mx) = meta.iter().fold((u64::MAX, 0u64), |(lo, hi), m| {
        (lo.min(m.min), hi.max(m.max))
    });
    let (mn, mx) = if meta.is_empty() { (0, 0) } else { (mn, mx) };
    match b {
        Bound::BlockEdge(sel, want_max) if !meta.is_empty() => {
            let m = &meta[sel as usize % meta.len()];
            if want_max {
                m.max
            } else {
                m.min
            }
        }
        Bound::BlockEdge(sel, _) => resolve(tiered, dim, Bound::Frac(sel % 1001)),
        Bound::Frac(sel) => mn + ((mx - mn) as u128 * sel as u128 / 1000) as u64,
    }
}

type DimFilter = Option<(Bound, Bound)>;

fn filter_strategy() -> impl Strategy<Value = DimFilter> {
    prop_oneof![
        Just(None),
        (bound_strategy(), bound_strategy()).prop_map(Some),
    ]
}

fn make_checks(tiered: &TieredTable, filters: &[DimFilter; 3]) -> Vec<(usize, u64, u64)> {
    let mut checks = Vec::new();
    for (d, f) in filters.iter().enumerate() {
        if let Some((a, b)) = f {
            let (x, y) = (resolve(tiered, d, *a), resolve(tiered, d, *b));
            checks.push((d, x.min(y), x.max(y)));
        }
    }
    checks
}

/// Records every (row, value) pair in visit order — catches any difference
/// in match set, emission order, or aggregation values.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct RowValueVisitor {
    seen: Vec<(usize, u64)>,
}

impl Visitor for RowValueVisitor {
    fn visit(&mut self, row: usize, value: u64) {
        self.seen.push((row, value));
    }
}

/// Run both sides; results must be identical and the tiered stats, tier
/// counters aside, must equal the resident packed stats exactly. Returns
/// the tiered stats for tier-counter assertions.
#[allow(clippy::too_many_arguments)]
fn diff_tiered<V: Visitor + Default, R: PartialEq + std::fmt::Debug>(
    resident: &Table,
    tiered: &TieredTable,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg: Option<usize>,
    extract: fn(&V) -> R,
    label: &str,
) -> ScanStats {
    let mut rv = V::default();
    let mut rs = ScanStats::default();
    scan_checked_dims_packed(resident, checks, start, end, agg, None, &mut rv, &mut rs);
    let mut tv = V::default();
    let mut ts = ScanStats::default();
    scan_checked_dims_tiered(tiered, checks, start, end, agg, &mut tv, &mut ts)
        .expect("in-memory backend never fails");
    assert_eq!(extract(&tv), extract(&rv), "{label}: result");
    let mut got = ts.sans_tier_counters();
    got.scan_ns = 0;
    let mut want = rs;
    want.scan_ns = 0;
    assert_eq!(got, want, "{label}: shared counters must match exactly");
    ts
}

/// All visitor kinds over one (table, checks, range) instance.
fn diff_all_visitors(
    resident: &Table,
    tiered: &TieredTable,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
) -> ScanStats {
    diff_tiered::<CountVisitor, _>(
        resident,
        tiered,
        checks,
        start,
        end,
        None,
        |v| v.count,
        "count",
    );
    diff_tiered::<SumVisitor, _>(
        resident,
        tiered,
        checks,
        start,
        end,
        Some(1),
        |v| (v.sum, v.count),
        "sum",
    );
    diff_tiered::<MinMaxVisitor, _>(
        resident,
        tiered,
        checks,
        start,
        end,
        Some(1),
        |v| (v.min, v.max, v.count),
        "minmax",
    );
    // Exact (row, value) sequence — order and values, not just sets.
    diff_tiered::<RowValueVisitor, _>(
        resident,
        tiered,
        checks,
        start,
        end,
        Some(2),
        |v| v.seen.clone(),
        "rowvalue",
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// Core differential: arbitrary tables × budgets × eviction schedules
    /// × predicates × sub-ranges, all visitors.
    #[test]
    fn tiered_equals_resident(
        runs in proptest::collection::vec((0u64..6, 1usize..220), 1..8),
        seed in 0u64..1_000_000,
        filters in (filter_strategy(), filter_strategy(), filter_strategy()),
        budget_sel in 0usize..8,
        segment_blocks in 1usize..5,
        range_sels in proptest::collection::vec((0u16..1000, 0u16..1000), 1..4),
        evictions in proptest::collection::vec(evict_strategy(), 1..4),
    ) {
        let mut resident = build_table(&runs, seed);
        let pool = budgets();
        let budget = pool[budget_sel % pool.len()];
        let tiered = TieredTable::seal(
            &resident,
            Arc::new(MemBackend::new()),
            TierConfig { budget_bytes: budget, segment_blocks },
        ).unwrap();
        resident.compress();
        let filters = [filters.0, filters.1, filters.2];
        let checks = make_checks(&tiered, &filters);
        let len = resident.len();

        // A little workload: same predicate over varying sub-ranges, with
        // adversarial residency perturbations between queries. Results and
        // shared counters must be identical every time — the cache state a
        // query starts from is invisible.
        for (i, &(a, b)) in range_sels.iter().enumerate() {
            let (x, y) = (len * a as usize / 1000, len * b as usize / 1000);
            let (start, end) = (x.min(y), x.max(y));
            let ts = diff_all_visitors(&resident, &tiered, &checks, start, end);
            if budget == 0 {
                // Everything-cold: a scan can never find a segment resident.
                prop_assert_eq!(ts.segments_hit, 0, "budget=0 must never hit");
            }
            apply_evict(&tiered, evictions[i % evictions.len()]);
        }
    }

    /// Sealing is lossless: decoding every cold segment reproduces the
    /// source table bit-for-bit, names included.
    #[test]
    fn seal_resident_roundtrip(
        runs in proptest::collection::vec((0u64..6, 1usize..220), 1..8),
        seed in 0u64..1_000_000,
        segment_blocks in 1usize..7,
    ) {
        let source = build_table(&runs, seed);
        let tiered = TieredTable::seal(
            &source,
            Arc::new(MemBackend::new()),
            TierConfig { budget_bytes: 0, segment_blocks },
        ).unwrap();
        let back = tiered.resident().unwrap();
        prop_assert_eq!(back.len(), source.len());
        for d in 0..source.dims() {
            for r in 0..source.len() {
                prop_assert_eq!(back.value(r, d), source.value(r, d), "row {} dim {}", r, d);
            }
        }
        prop_assert_eq!(back.names(), source.names());
    }

    /// Compaction ≡ resident concat: appending arbitrary fresh rows (which
    /// re-seals unaligned tails into new segments) yields exactly the table
    /// a resident concatenation would.
    #[test]
    fn append_equals_resident_concat(
        runs in proptest::collection::vec((0u64..6, 1usize..180), 1..6),
        seed in 0u64..1_000_000,
        extra in 0usize..300,
        segment_blocks in 1usize..5,
        filters in (filter_strategy(), filter_strategy(), filter_strategy()),
    ) {
        let source = build_table(&runs, seed);
        let mut tiered = TieredTable::seal(
            &source,
            Arc::new(MemBackend::new()),
            TierConfig { budget_bytes: 4_096, segment_blocks },
        ).unwrap();
        let mut s = seed ^ 0xdead_beef;
        let fresh: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..extra).map(|_| splitmix(&mut s) % 4_096).collect())
            .collect();
        tiered.append_columns(fresh.clone()).unwrap();

        // Resident reference: concat source + fresh, compressed.
        let mut concat: Vec<Vec<u64>> = (0..3)
            .map(|d| (0..source.len()).map(|r| source.value(r, d)).collect())
            .collect();
        for (d, col) in fresh.iter().enumerate() {
            concat[d].extend_from_slice(col);
        }
        let mut reference = Table::from_columns(concat);
        reference.compress();

        let filters = [filters.0, filters.1, filters.2];
        let checks = make_checks(&tiered, &filters);
        diff_all_visitors(&reference, &tiered, &checks, 0, reference.len());
    }
}
