//! Execution statistics, the raw material for Table 2 of the paper.
//!
//! Scan overhead (SO) = points scanned / result size; it is "implementation
//! agnostic" and "a good proxy for overall query performance" (§7.4). Every
//! index records these counters while executing so the performance breakdown
//! can be regenerated.

use serde::{Deserialize, Serialize};

/// Counters collected while executing a single query (or accumulated over a
/// workload).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Rows whose columns were inspected (including non-matching rows).
    pub points_scanned: u64,
    /// Rows visited inside *exact* sub-ranges (no per-row checks needed).
    pub points_in_exact_ranges: u64,
    /// Rows that matched the query (result size).
    pub points_matched: u64,
    /// Cells / pages / leaves the index visited during projection.
    pub cells_visited: u64,
    /// Cells inside the query's projected rectangle, including empty ones —
    /// the cost model's N_c (only meaningful for grid-based indexes).
    pub cells_projected: u64,
    /// Refinement operations performed (model or binary-search lookups).
    pub refinements: u64,
    /// Physical sub-ranges scanned (for run-length locality statistics).
    pub ranges_scanned: u64,
    /// Blocks the packed-domain scan dismissed from min/max metadata alone
    /// (no word of packed data touched). Always 0 on the decode-first path.
    pub blocks_skipped: u64,
    /// Blocks accepted wholesale from min/max metadata (every in-range row
    /// matches the filter). Always 0 on the decode-first path.
    pub blocks_accepted: u64,
    /// Blocks whose packed words were compared against delta-domain bounds.
    /// Always 0 on the decode-first path.
    pub blocks_probed: u64,
    /// Wall-clock nanoseconds spent in scan kernels; populated only while
    /// [`crate::scan::set_scan_timing`] is enabled (Table 2's ST).
    pub scan_ns: u64,
}

impl ScanStats {
    /// Scan overhead: total points touched (checked + exact) per matched
    /// point. 1.0 is a perfect index; `None` when nothing matched.
    pub fn scan_overhead(&self) -> Option<f64> {
        if self.points_matched == 0 {
            return None;
        }
        Some(
            (self.points_scanned + self.points_in_exact_ranges) as f64 / self.points_matched as f64,
        )
    }

    /// Average run length of scanned ranges (locality proxy used by the cost
    /// model features, §4.1.1 / Fig 5).
    pub fn avg_run_length(&self) -> f64 {
        if self.ranges_scanned == 0 {
            return 0.0;
        }
        (self.points_scanned + self.points_in_exact_ranges) as f64 / self.ranges_scanned as f64
    }

    /// Accumulate another query's stats into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.points_scanned += other.points_scanned;
        self.points_in_exact_ranges += other.points_in_exact_ranges;
        self.points_matched += other.points_matched;
        self.cells_visited += other.cells_visited;
        self.cells_projected += other.cells_projected;
        self.refinements += other.refinements;
        self.ranges_scanned += other.ranges_scanned;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_accepted += other.blocks_accepted;
        self.blocks_probed += other.blocks_probed;
        self.scan_ns += other.scan_ns;
    }

    /// This query's counters with the packed-scan block counters zeroed —
    /// the shape differential tests compare across scan modes, where every
    /// shared counter must agree but block counters exist on one side only.
    pub fn sans_block_counters(&self) -> ScanStats {
        ScanStats {
            blocks_skipped: 0,
            blocks_accepted: 0,
            blocks_probed: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_overhead() {
        let s = ScanStats {
            points_scanned: 90,
            points_in_exact_ranges: 10,
            points_matched: 50,
            ..Default::default()
        };
        assert_eq!(s.scan_overhead(), Some(2.0));
    }

    #[test]
    fn scan_overhead_no_matches() {
        let s = ScanStats::default();
        assert_eq!(s.scan_overhead(), None);
    }

    #[test]
    fn run_length() {
        let s = ScanStats {
            points_scanned: 100,
            ranges_scanned: 4,
            ..Default::default()
        };
        assert_eq!(s.avg_run_length(), 25.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ScanStats {
            points_scanned: 1,
            points_matched: 1,
            cells_visited: 2,
            ..Default::default()
        };
        let b = ScanStats {
            points_scanned: 9,
            points_matched: 4,
            refinements: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.points_scanned, 10);
        assert_eq!(a.points_matched, 5);
        assert_eq!(a.cells_visited, 2);
        assert_eq!(a.refinements, 3);
    }
}
