//! Execution statistics, the raw material for Table 2 of the paper.
//!
//! Scan overhead (SO) = points scanned / result size; it is "implementation
//! agnostic" and "a good proxy for overall query performance" (§7.4). Every
//! index records these counters while executing so the performance breakdown
//! can be regenerated.

use flood_obs::{Counter, Registry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counters collected while executing a single query (or accumulated over a
/// workload).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Rows whose columns were inspected (including non-matching rows).
    pub points_scanned: u64,
    /// Rows visited inside *exact* sub-ranges (no per-row checks needed).
    pub points_in_exact_ranges: u64,
    /// Rows that matched the query (result size).
    pub points_matched: u64,
    /// Cells / pages / leaves the index visited during projection.
    pub cells_visited: u64,
    /// Cells inside the query's projected rectangle, including empty ones —
    /// the cost model's N_c (only meaningful for grid-based indexes).
    pub cells_projected: u64,
    /// Refinement operations performed (model or binary-search lookups).
    pub refinements: u64,
    /// Physical sub-ranges scanned (for run-length locality statistics).
    pub ranges_scanned: u64,
    /// Blocks the packed-domain scan dismissed from min/max metadata alone
    /// (no word of packed data touched). Always 0 on the decode-first path.
    pub blocks_skipped: u64,
    /// Blocks accepted wholesale from min/max metadata (every in-range row
    /// matches the filter). Always 0 on the decode-first path.
    pub blocks_accepted: u64,
    /// Blocks whose packed words were compared against delta-domain bounds.
    /// Always 0 on the decode-first path.
    pub blocks_probed: u64,
    /// Cold column segments this scan loaded from the storage backend
    /// (tiered scans only; always 0 for fully-resident scans).
    pub segments_faulted: u64,
    /// Column segments this scan needed that were already resident in the
    /// tier cache (tiered scans only).
    pub segments_hit: u64,
    /// Column segments overlapping the scan range that were answered from
    /// always-resident metadata alone — never acquired, so a cold segment
    /// among them cost zero disk reads (tiered scans only).
    pub segments_skipped: u64,
    /// Wall-clock nanoseconds spent in scan kernels; populated only while
    /// [`crate::scan::set_scan_timing`] is enabled (Table 2's ST).
    pub scan_ns: u64,
}

impl ScanStats {
    /// Scan overhead: total points touched (checked + exact) per matched
    /// point. 1.0 is a perfect index; `None` when nothing matched.
    pub fn scan_overhead(&self) -> Option<f64> {
        if self.points_matched == 0 {
            return None;
        }
        Some(
            (self.points_scanned + self.points_in_exact_ranges) as f64 / self.points_matched as f64,
        )
    }

    /// Average run length of scanned ranges (locality proxy used by the cost
    /// model features, §4.1.1 / Fig 5).
    pub fn avg_run_length(&self) -> f64 {
        if self.ranges_scanned == 0 {
            return 0.0;
        }
        (self.points_scanned + self.points_in_exact_ranges) as f64 / self.ranges_scanned as f64
    }

    /// Accumulate another query's stats into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.points_scanned += other.points_scanned;
        self.points_in_exact_ranges += other.points_in_exact_ranges;
        self.points_matched += other.points_matched;
        self.cells_visited += other.cells_visited;
        self.cells_projected += other.cells_projected;
        self.refinements += other.refinements;
        self.ranges_scanned += other.ranges_scanned;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_accepted += other.blocks_accepted;
        self.blocks_probed += other.blocks_probed;
        self.segments_faulted += other.segments_faulted;
        self.segments_hit += other.segments_hit;
        self.segments_skipped += other.segments_skipped;
        self.scan_ns += other.scan_ns;
    }

    /// This query's counters with the packed-scan block counters zeroed —
    /// the shape differential tests compare across scan modes, where every
    /// shared counter must agree but block counters exist on one side only.
    pub fn sans_block_counters(&self) -> ScanStats {
        ScanStats {
            blocks_skipped: 0,
            blocks_accepted: 0,
            blocks_probed: 0,
            ..*self
        }
    }

    /// This query's counters with the tiered-storage segment counters
    /// zeroed — the tiered ≡ resident differential suite compares a tiered
    /// scan against a fully-resident one, where every shared counter
    /// (block counters included) must agree but segment counters exist on
    /// the tiered side only. Mirrors [`ScanStats::sans_block_counters`].
    pub fn sans_tier_counters(&self) -> ScanStats {
        ScanStats {
            segments_faulted: 0,
            segments_hit: 0,
            segments_skipped: 0,
            ..*self
        }
    }
}

/// Registered counter handles mirroring every [`ScanStats`] field — the
/// bridge from the per-query stats structs into a `flood-obs` registry.
/// Register once (cheap and idempotent), then [`ScanStatsMetrics::record`]
/// each finished query's stats; the registry exposes the running totals.
#[derive(Debug, Clone)]
pub struct ScanStatsMetrics {
    points_scanned: Arc<Counter>,
    points_in_exact_ranges: Arc<Counter>,
    points_matched: Arc<Counter>,
    cells_visited: Arc<Counter>,
    cells_projected: Arc<Counter>,
    refinements: Arc<Counter>,
    ranges_scanned: Arc<Counter>,
    blocks_skipped: Arc<Counter>,
    blocks_accepted: Arc<Counter>,
    blocks_probed: Arc<Counter>,
    segments_faulted: Arc<Counter>,
    segments_hit: Arc<Counter>,
    segments_skipped: Arc<Counter>,
    scan_ns: Arc<Counter>,
}

impl ScanStatsMetrics {
    /// Register (or look up) the scan counter set under `subsystem` in
    /// `registry`. Two bridges built against the same registry and
    /// subsystem share the same underlying counters.
    pub fn register(registry: &Registry, subsystem: &str) -> Self {
        let c = |name: &str| registry.counter(subsystem, name);
        ScanStatsMetrics {
            points_scanned: c("points_scanned"),
            points_in_exact_ranges: c("points_in_exact_ranges"),
            points_matched: c("points_matched"),
            cells_visited: c("cells_visited"),
            cells_projected: c("cells_projected"),
            refinements: c("refinements"),
            ranges_scanned: c("ranges_scanned"),
            blocks_skipped: c("blocks_skipped"),
            blocks_accepted: c("blocks_accepted"),
            blocks_probed: c("blocks_probed"),
            segments_faulted: c("segments_faulted"),
            segments_hit: c("segments_hit"),
            segments_skipped: c("segments_skipped"),
            scan_ns: c("scan_ns"),
        }
    }

    /// Accumulate one query's (or one merged batch's) stats into the
    /// registry. Relaxed atomic adds only.
    pub fn record(&self, stats: &ScanStats) {
        self.points_scanned.add(stats.points_scanned);
        self.points_in_exact_ranges
            .add(stats.points_in_exact_ranges);
        self.points_matched.add(stats.points_matched);
        self.cells_visited.add(stats.cells_visited);
        self.cells_projected.add(stats.cells_projected);
        self.refinements.add(stats.refinements);
        self.ranges_scanned.add(stats.ranges_scanned);
        self.blocks_skipped.add(stats.blocks_skipped);
        self.blocks_accepted.add(stats.blocks_accepted);
        self.blocks_probed.add(stats.blocks_probed);
        self.segments_faulted.add(stats.segments_faulted);
        self.segments_hit.add(stats.segments_hit);
        self.segments_skipped.add(stats.segments_skipped);
        self.scan_ns.add(stats.scan_ns);
    }
}

/// Assert that two scan-stat sets are equivalent across scan modes: every
/// shared counter must agree, block counters aside (they exist only on the
/// packed side), segment counters aside (they exist only on the tiered
/// side) and `scan_ns` aside (wall clock is never comparable).
///
/// This is *the* stats-equivalence check the differential and property
/// suites share; `label` names the comparison in the panic message.
///
/// # Panics
/// When the two stat sets disagree on any compared counter.
#[track_caller]
pub fn assert_stats_equivalent(got: &ScanStats, want: &ScanStats, label: &str) {
    let (mut a, mut b) = (
        got.sans_block_counters().sans_tier_counters(),
        want.sans_block_counters().sans_tier_counters(),
    );
    a.scan_ns = 0;
    b.scan_ns = 0;
    assert_eq!(a, b, "scan stats diverge across scan modes: {label}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_overhead() {
        let s = ScanStats {
            points_scanned: 90,
            points_in_exact_ranges: 10,
            points_matched: 50,
            ..Default::default()
        };
        assert_eq!(s.scan_overhead(), Some(2.0));
    }

    #[test]
    fn scan_overhead_no_matches() {
        let s = ScanStats::default();
        assert_eq!(s.scan_overhead(), None);
    }

    #[test]
    fn run_length() {
        let s = ScanStats {
            points_scanned: 100,
            ranges_scanned: 4,
            ..Default::default()
        };
        assert_eq!(s.avg_run_length(), 25.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ScanStats {
            points_scanned: 1,
            points_matched: 1,
            cells_visited: 2,
            ..Default::default()
        };
        let b = ScanStats {
            points_scanned: 9,
            points_matched: 4,
            refinements: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.points_scanned, 10);
        assert_eq!(a.points_matched, 5);
        assert_eq!(a.cells_visited, 2);
        assert_eq!(a.refinements, 3);
    }

    #[test]
    fn metrics_bridge_accumulates_every_field() {
        let reg = Registry::new();
        let bridge = ScanStatsMetrics::register(&reg, "scan");
        let s = ScanStats {
            points_scanned: 1,
            points_in_exact_ranges: 2,
            points_matched: 3,
            cells_visited: 4,
            cells_projected: 5,
            refinements: 6,
            ranges_scanned: 7,
            blocks_skipped: 8,
            blocks_accepted: 9,
            blocks_probed: 10,
            segments_faulted: 11,
            segments_hit: 12,
            segments_skipped: 13,
            scan_ns: 14,
        };
        bridge.record(&s);
        bridge.record(&s);
        let snap = reg.snapshot();
        for (name, want) in [
            ("points_scanned", 2),
            ("points_in_exact_ranges", 4),
            ("points_matched", 6),
            ("cells_visited", 8),
            ("cells_projected", 10),
            ("refinements", 12),
            ("ranges_scanned", 14),
            ("blocks_skipped", 16),
            ("blocks_accepted", 18),
            ("blocks_probed", 20),
            ("segments_faulted", 22),
            ("segments_hit", 24),
            ("segments_skipped", 26),
            ("scan_ns", 28),
        ] {
            assert_eq!(snap.counter("scan", name), Some(want), "{name}");
        }
    }

    #[test]
    fn metrics_bridge_shares_counters_by_subsystem() {
        let reg = Registry::new();
        let a = ScanStatsMetrics::register(&reg, "scan");
        let b = ScanStatsMetrics::register(&reg, "scan");
        let one = ScanStats {
            points_matched: 1,
            ..Default::default()
        };
        a.record(&one);
        b.record(&one);
        assert_eq!(reg.snapshot().counter("scan", "points_matched"), Some(2));
    }

    #[test]
    fn equivalence_ignores_block_counters_and_timing() {
        let packed = ScanStats {
            points_scanned: 10,
            points_matched: 4,
            blocks_skipped: 3,
            blocks_accepted: 1,
            blocks_probed: 2,
            scan_ns: 999,
            ..Default::default()
        };
        let plain = ScanStats {
            points_scanned: 10,
            points_matched: 4,
            scan_ns: 123,
            ..Default::default()
        };
        assert_stats_equivalent(&packed, &plain, "packed vs plain");
    }

    #[test]
    fn equivalence_ignores_tier_counters() {
        let tiered = ScanStats {
            points_scanned: 10,
            points_matched: 4,
            segments_faulted: 2,
            segments_hit: 1,
            segments_skipped: 5,
            ..Default::default()
        };
        let resident = ScanStats {
            points_scanned: 10,
            points_matched: 4,
            ..Default::default()
        };
        assert_stats_equivalent(&tiered, &resident, "tiered vs resident");
        assert_eq!(tiered.sans_tier_counters(), resident);
    }

    #[test]
    fn sans_tier_counters_keeps_block_counters() {
        let s = ScanStats {
            blocks_skipped: 3,
            blocks_probed: 1,
            segments_faulted: 7,
            ..Default::default()
        };
        let t = s.sans_tier_counters();
        assert_eq!(t.blocks_skipped, 3);
        assert_eq!(t.blocks_probed, 1);
        assert_eq!(t.segments_faulted, 0);
    }

    #[test]
    #[should_panic(expected = "scan stats diverge")]
    fn equivalence_catches_shared_counter_drift() {
        let a = ScanStats {
            points_scanned: 10,
            ..Default::default()
        };
        let b = ScanStats {
            points_scanned: 11,
            ..Default::default()
        };
        assert_stats_equivalent(&a, &b, "drift");
    }
}
