//! Scan kernels shared by all indexes.
//!
//! Three flavors, matching §3.2(3) and the §7.1 optimizations:
//!
//! * [`scan_filtered`] — check each row of a physical range against the
//!   query filter, touching only filtered columns.
//! * [`scan_exact`] — the caller guarantees every row in the range matches;
//!   skip checks entirely and, when possible, answer from a cumulative column.
//! * [`scan_full`] — a full table scan (the `Full Scan` baseline's kernel).

use crate::cumulative::CumulativeColumn;
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::table::Table;
use crate::visitor::Visitor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// When enabled, the scan kernels accumulate wall-clock time into
/// [`ScanStats::scan_ns`], letting the harness decompose any index's query
/// time into scan time (ST) and index time (IT = total − ST) the way
/// Table 2 reports it. Off by default: the hot path then pays only one
/// relaxed atomic load per kernel call.
static SCAN_TIMING: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable scan-kernel timing.
pub fn set_scan_timing(on: bool) {
    SCAN_TIMING.store(on, Ordering::Relaxed);
}

/// Whether scan-kernel timing is currently enabled.
pub fn scan_timing_enabled() -> bool {
    SCAN_TIMING.load(Ordering::Relaxed)
}

/// Run `f`, adding its duration to `stats.scan_ns` when timing is enabled.
#[inline]
fn timed(stats: &mut ScanStats, f: impl FnOnce(&mut ScanStats)) {
    if SCAN_TIMING.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        f(stats);
        stats.scan_ns += t0.elapsed().as_nanos() as u64;
    } else {
        f(stats);
    }
}

/// Scan rows `[start, end)` of `table`, checking each against `query`;
/// matching rows are fed to `visitor` with their value in `agg_dim`
/// (pass `None` for COUNT-style visitors).
///
/// Only the columns that appear in the query filter are accessed, plus the
/// aggregation column for matches — the column-store access pattern from
/// §7.2(1).
pub fn scan_filtered(
    table: &Table,
    query: &RangeQuery,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    timed(stats, |stats| {
        let filtered = query.filtered_dims();
        stats.points_scanned += end.saturating_sub(start) as u64;
        'rows: for row in start..end {
            for &d in &filtered {
                if !query.matches_dim(d, table.value(row, d)) {
                    continue 'rows;
                }
            }
            let v = match agg_dim {
                Some(d) if visitor.needs_value() => table.value(row, d),
                _ => 0,
            };
            visitor.visit(row, v);
        }
    });
}

/// Scan rows `[start, end)` that are all guaranteed to match (an *exact*
/// range): no per-row checks. With a cumulative column and a visitor that
/// supports the fast path, this is O(1).
pub fn scan_exact(
    table: &Table,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    if start >= end {
        return;
    }
    timed(stats, |stats| {
        stats.points_in_exact_ranges += (end - start) as u64;
        if visitor.supports_exact() {
            let sum = match (cumulative, agg_dim) {
                (Some(c), _) => {
                    // O(1): difference of prefix sums — no data access at all.
                    c.range_sum(start, end - 1)
                }
                (None, Some(d)) if visitor.needs_value() => {
                    stats.points_scanned += (end - start) as u64;
                    let mut s = 0u64;
                    for row in start..end {
                        s = s.wrapping_add(table.value(row, d));
                    }
                    s
                }
                _ => 0,
            };
            visitor.visit_exact_sum(end - start, sum);
        } else {
            stats.points_scanned += (end - start) as u64;
            for row in start..end {
                let v = match agg_dim {
                    Some(d) if visitor.needs_value() => table.value(row, d),
                    _ => 0,
                };
                visitor.visit(row, v);
            }
        }
    });
}

/// Scan rows `[start, end)` checking only the listed `(dim, lo, hi)`
/// constraints — the kernel behind Flood's per-cell scans, where dimensions
/// proven exact by projection/refinement are dropped from the check list.
#[allow(clippy::too_many_arguments)]
pub fn scan_checked_dims(
    table: &Table,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    timed(stats, |stats| {
        stats.points_scanned += end.saturating_sub(start) as u64;
        'rows: for row in start..end {
            for &(d, lo, hi) in checks {
                let v = table.value(row, d);
                if v < lo || v > hi {
                    continue 'rows;
                }
            }
            let v = match agg_dim {
                Some(d) if visitor.needs_value() => table.value(row, d),
                _ => 0,
            };
            visitor.visit(row, v);
        }
    });
}

/// Scan the entire table against `query` (the Full Scan baseline kernel).
pub fn scan_full(
    table: &Table,
    query: &RangeQuery,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    scan_filtered(table, query, 0, table.len(), agg_dim, visitor, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visitor::{CountVisitor, SumVisitor};

    fn table() -> Table {
        // dim0: 0..10, dim1: 10x dim0
        Table::from_columns(vec![(0..10).collect(), (0..10).map(|i| i * 10).collect()])
    }

    #[test]
    fn filtered_scan_counts_matches() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 3, 6);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 0, t.len(), None, &mut v, &mut s);
        assert_eq!(v.count, 4); // rows 3,4,5,6
        assert_eq!(s.points_scanned, 10);
    }

    #[test]
    fn filtered_scan_subrange() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 3, 6);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 5, 9, None, &mut v, &mut s);
        assert_eq!(v.count, 2); // rows 5,6
        assert_eq!(s.points_scanned, 4);
    }

    #[test]
    fn filtered_scan_sums_agg_column() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 2, 4);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 0, t.len(), Some(1), &mut v, &mut s);
        assert_eq!(v.sum, 20 + 30 + 40);
    }

    #[test]
    fn exact_scan_skips_checks() {
        let t = table();
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 2, 5, Some(1), None, &mut v, &mut s);
        assert_eq!(v.sum, 20 + 30 + 40);
        assert_eq!(v.count, 3);
        assert_eq!(s.points_in_exact_ranges, 3);
    }

    #[test]
    fn exact_scan_with_cumulative_is_data_free() {
        let t = table();
        let c = t.cumulative_sum(1);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 0, 10, Some(1), Some(&c), &mut v, &mut s);
        assert_eq!(v.sum, (0..10u64).map(|i| i * 10).sum());
        // Prefix-sum path scans nothing.
        assert_eq!(s.points_scanned, 0);
        assert_eq!(s.points_in_exact_ranges, 10);
    }

    #[test]
    fn exact_scan_empty_range_is_noop() {
        let t = table();
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 5, 5, None, None, &mut v, &mut s);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn scan_timing_populates_scan_ns() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 0, 9);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        super::set_scan_timing(true);
        scan_full(&t, &q, None, &mut v, &mut s);
        super::set_scan_timing(false);
        assert!(s.scan_ns > 0, "timing enabled must record scan time");

        let mut s2 = ScanStats::default();
        let mut v2 = CountVisitor::default();
        scan_full(&t, &q, None, &mut v2, &mut s2);
        assert_eq!(s2.scan_ns, 0, "timing disabled must record nothing");
    }

    #[test]
    fn full_scan_equals_manual_filter() {
        let t = table();
        let q = RangeQuery::all(2).with_range(1, 25, 65);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_full(&t, &q, None, &mut v, &mut s);
        assert_eq!(v.count, 4); // 30,40,50,60
    }
}
