//! Scan kernels shared by all indexes.
//!
//! Three flavors, matching §3.2(3) and the §7.1 optimizations:
//!
//! * [`scan_filtered`] — check each row of a physical range against the
//!   query filter, touching only filtered columns.
//! * [`scan_exact`] — the caller guarantees every row in the range matches;
//!   skip checks entirely and, when possible, answer from a cumulative column.
//! * [`scan_full`] — a full table scan (the `Full Scan` baseline's kernel).
//!
//! Each filtering kernel also has a `_packed` twin that resolves predicates
//! against compressed columns **without decoding**: whole blocks are skipped
//! or accepted from per-block min/max metadata, and only the survivors have
//! their packed words compared against delta-domain bounds (see
//! [`crate::block`]). The twins are bit-identical to the decode-first
//! kernels in both results and the pre-existing [`ScanStats`] counters; the
//! `blocks_*` counters they add are always zero on the decode-first path.

use crate::block::{BlockMask, BlockMatch, BLOCK_LEN};
use crate::column::CompressedColumn;
use crate::cumulative::CumulativeColumn;
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::table::Table;
use crate::visitor::Visitor;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// How an index's scan path resolves filters against compressed columns.
///
/// Carried per index (not a process global) so concurrent queries — and
/// concurrent tests — never observe another caller's mode.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanMode {
    /// Decode every value before comparing (the pre-optimization baseline).
    DecodeFirst,
    /// Skip/accept whole blocks from min/max metadata and compare the
    /// packed words of the rest directly in the delta domain.
    #[default]
    Packed,
}

/// When enabled, the scan kernels accumulate wall-clock time into
/// [`ScanStats::scan_ns`], letting the harness decompose any index's query
/// time into scan time (ST) and index time (IT = total − ST) the way
/// Table 2 reports it. Off by default: the hot path then pays only one
/// relaxed atomic load per kernel call.
static SCAN_TIMING: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable scan-kernel timing.
pub fn set_scan_timing(on: bool) {
    SCAN_TIMING.store(on, Ordering::Relaxed);
}

/// Whether scan-kernel timing is currently enabled.
pub fn scan_timing_enabled() -> bool {
    SCAN_TIMING.load(Ordering::Relaxed)
}

/// Run `f`, adding its duration to `stats.scan_ns` when timing is enabled.
#[inline]
fn timed(stats: &mut ScanStats, f: impl FnOnce(&mut ScanStats)) {
    if SCAN_TIMING.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        f(stats);
        stats.scan_ns += t0.elapsed().as_nanos() as u64;
    } else {
        f(stats);
    }
}

/// Scan rows `[start, end)` of `table`, checking each against `query`;
/// matching rows are fed to `visitor` with their value in `agg_dim`
/// (pass `None` for COUNT-style visitors).
///
/// Only the columns that appear in the query filter are accessed, plus the
/// aggregation column for matches — the column-store access pattern from
/// §7.2(1).
pub fn scan_filtered(
    table: &Table,
    query: &RangeQuery,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    timed(stats, |stats| {
        let filtered = query.filtered_dims();
        stats.points_scanned += end.saturating_sub(start) as u64;
        'rows: for row in start..end {
            for &d in &filtered {
                if !query.matches_dim(d, table.value(row, d)) {
                    continue 'rows;
                }
            }
            let v = match agg_dim {
                Some(d) if visitor.needs_value() => table.value(row, d),
                _ => 0,
            };
            visitor.visit(row, v);
        }
    });
}

/// Scan rows `[start, end)` that are all guaranteed to match (an *exact*
/// range): no per-row checks. With a cumulative column and a visitor that
/// supports the fast path, this is O(1).
pub fn scan_exact(
    table: &Table,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    if start >= end {
        return;
    }
    timed(stats, |stats| {
        stats.points_in_exact_ranges += (end - start) as u64;
        if visitor.supports_exact() {
            let sum = match (cumulative, agg_dim) {
                (Some(c), _) => {
                    // O(1): difference of prefix sums — no data access at all.
                    c.range_sum(start, end - 1)
                }
                (None, Some(d)) if visitor.needs_value() => {
                    stats.points_scanned += (end - start) as u64;
                    let mut s = 0u64;
                    for row in start..end {
                        s = s.wrapping_add(table.value(row, d));
                    }
                    s
                }
                _ => 0,
            };
            visitor.visit_exact_sum(end - start, sum);
        } else {
            stats.points_scanned += (end - start) as u64;
            for row in start..end {
                let v = match agg_dim {
                    Some(d) if visitor.needs_value() => table.value(row, d),
                    _ => 0,
                };
                visitor.visit(row, v);
            }
        }
    });
}

/// Scan rows `[start, end)` checking only the listed `(dim, lo, hi)`
/// constraints — the kernel behind Flood's per-cell scans, where dimensions
/// proven exact by projection/refinement are dropped from the check list.
#[allow(clippy::too_many_arguments)]
pub fn scan_checked_dims(
    table: &Table,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    timed(stats, |stats| {
        stats.points_scanned += end.saturating_sub(start) as u64;
        'rows: for row in start..end {
            for &(d, lo, hi) in checks {
                let v = table.value(row, d);
                if v < lo || v > hi {
                    continue 'rows;
                }
            }
            let v = match agg_dim {
                Some(d) if visitor.needs_value() => table.value(row, d),
                _ => 0,
            };
            visitor.visit(row, v);
        }
    });
}

/// Scan the entire table against `query` (the Full Scan baseline kernel).
pub fn scan_full(
    table: &Table,
    query: &RangeQuery,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    scan_filtered(table, query, 0, table.len(), agg_dim, visitor, stats);
}

/// Packed-domain twin of [`scan_checked_dims`]: resolve the checks against
/// compressed columns block-at-a-time instead of row-at-a-time.
///
/// Per block, each check on a compressed column is classified against the
/// block's min/max: any always-false check skips the block outright; checks
/// that can't fail are dropped; the rest are answered in the delta domain
/// straight off the packed words ([`crate::block::Block::match_mask`]).
/// Blocks where every check is dropped are *accepted*: their rows are
/// emitted wholesale — through `cumulative` with zero data access when the
/// visitor takes [`Visitor::visit_exact_sum`] (sound even under a residual
/// filter, because acceptance proves every in-range row matches). Checks on
/// plain columns are applied per surviving row, as are rows of blocks that
/// needed a mask.
///
/// Bit-identical to [`scan_checked_dims`] in results and in every counter
/// that kernel records (`points_scanned` counts rows *resolved*, whether
/// per-row or from block metadata); only the `blocks_*` counters are new.
/// Falls back to [`scan_checked_dims`] when no checked column is
/// compressed — `cumulative` is then unused, matching the decode-first
/// kernel's signature.
#[allow(clippy::too_many_arguments)]
pub fn scan_checked_dims_packed(
    table: &Table,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    let mut comp: Vec<(&CompressedColumn, u64, u64)> = Vec::new();
    let mut plain: Vec<(usize, u64, u64)> = Vec::new();
    for &(d, lo, hi) in checks {
        match table.column(d).as_compressed() {
            Some(c) => comp.push((c, lo, hi)),
            None => plain.push((d, lo, hi)),
        }
    }
    if comp.is_empty() || start >= end {
        return scan_checked_dims(table, checks, start, end, agg_dim, visitor, stats);
    }
    timed(stats, |stats| {
        stats.points_scanned += (end - start) as u64;
        let mut probes: Vec<(&crate::block::Block, u64, u64)> = Vec::new();
        'blocks: for b in start / BLOCK_LEN..=(end - 1) / BLOCK_LEN {
            let bs = (b * BLOCK_LEN).max(start);
            let be = ((b + 1) * BLOCK_LEN).min(end);
            // Block-relative offsets this scan range covers.
            let off_s = bs - b * BLOCK_LEN;
            let off_e = be - b * BLOCK_LEN;
            probes.clear();
            for &(c, lo, hi) in &comp {
                match c.blocks()[b].classify(lo, hi) {
                    BlockMatch::Skip => {
                        stats.blocks_skipped += 1;
                        continue 'blocks;
                    }
                    BlockMatch::Accept => {}
                    BlockMatch::Probe { dlo, dhi } => probes.push((&c.blocks()[b], dlo, dhi)),
                }
            }
            if probes.is_empty() && plain.is_empty() {
                stats.blocks_accepted += 1;
                emit_accepted(table, bs, be, agg_dim, cumulative, visitor);
                continue;
            }
            stats.blocks_probed += 1;
            let mut mask: Option<BlockMask> = None;
            for &(blk, dlo, dhi) in &probes {
                let m = blk.match_mask(dlo, dhi, off_s, off_e);
                let acc = match &mut mask {
                    None => mask.insert(m),
                    Some(acc) => {
                        acc[0] &= m[0];
                        acc[1] &= m[1];
                        acc
                    }
                };
                if *acc == [0, 0] {
                    continue 'blocks;
                }
            }
            match mask {
                Some(m) => {
                    for (wi, &word) in m.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let i = wi * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            emit_if_plain_match(table, b * BLOCK_LEN + i, &plain, agg_dim, visitor);
                        }
                    }
                }
                None => {
                    for row in bs..be {
                        emit_if_plain_match(table, row, &plain, agg_dim, visitor);
                    }
                }
            }
        }
    });
}

/// Emit every row of an accepted block range `[bs, be)` — all proven to
/// match. Exact-capable visitors get one `visit_exact_sum`, answered from
/// `cumulative` with no data access when available.
fn emit_accepted(
    table: &Table,
    bs: usize,
    be: usize,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
) {
    if visitor.supports_exact() {
        let sum = match (cumulative, agg_dim) {
            (Some(c), _) => c.range_sum(bs, be - 1),
            (None, Some(d)) if visitor.needs_value() => {
                let mut s = 0u64;
                for row in bs..be {
                    s = s.wrapping_add(table.value(row, d));
                }
                s
            }
            _ => 0,
        };
        visitor.visit_exact_sum(be - bs, sum);
    } else {
        for row in bs..be {
            let v = match agg_dim {
                Some(d) if visitor.needs_value() => table.value(row, d),
                _ => 0,
            };
            visitor.visit(row, v);
        }
    }
}

/// Emit `row` if it passes the residual checks on plain (uncompressed)
/// columns.
#[inline]
fn emit_if_plain_match(
    table: &Table,
    row: usize,
    plain: &[(usize, u64, u64)],
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
) {
    for &(d, lo, hi) in plain {
        let v = table.value(row, d);
        if v < lo || v > hi {
            return;
        }
    }
    let v = match agg_dim {
        Some(d) if visitor.needs_value() => table.value(row, d),
        _ => 0,
    };
    visitor.visit(row, v);
}

/// Packed-domain twin of [`scan_filtered`]. Unlike the decode-first kernel
/// it takes the aggregation column's `cumulative` prefix sums: wholesale-
/// accepted blocks can answer SUM without touching values even though the
/// query carries a filter, because acceptance proves every in-range row
/// matches it.
#[allow(clippy::too_many_arguments)]
pub fn scan_filtered_packed(
    table: &Table,
    query: &RangeQuery,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    let checks: Vec<(usize, u64, u64)> = query
        .filtered_dims()
        .into_iter()
        .map(|d| {
            let (lo, hi) = query.bound(d).expect("filtered dim has a bound");
            (d, lo, hi)
        })
        .collect();
    if checks.is_empty() {
        // scan_filtered visits every row unconditionally in this case; the
        // checked-dims kernels would too, but route through the same code
        // path the decode-first kernel uses for exact stats parity.
        return scan_filtered(table, query, start, end, agg_dim, visitor, stats);
    }
    scan_checked_dims_packed(
        table, &checks, start, end, agg_dim, cumulative, visitor, stats,
    );
}

/// Packed-domain twin of [`scan_full`].
pub fn scan_full_packed(
    table: &Table,
    query: &RangeQuery,
    agg_dim: Option<usize>,
    cumulative: Option<&CumulativeColumn>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) {
    scan_filtered_packed(
        table,
        query,
        0,
        table.len(),
        agg_dim,
        cumulative,
        visitor,
        stats,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visitor::{CountVisitor, SumVisitor};

    fn table() -> Table {
        // dim0: 0..10, dim1: 10x dim0
        Table::from_columns(vec![(0..10).collect(), (0..10).map(|i| i * 10).collect()])
    }

    #[test]
    fn filtered_scan_counts_matches() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 3, 6);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 0, t.len(), None, &mut v, &mut s);
        assert_eq!(v.count, 4); // rows 3,4,5,6
        assert_eq!(s.points_scanned, 10);
    }

    #[test]
    fn filtered_scan_subrange() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 3, 6);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 5, 9, None, &mut v, &mut s);
        assert_eq!(v.count, 2); // rows 5,6
        assert_eq!(s.points_scanned, 4);
    }

    #[test]
    fn filtered_scan_sums_agg_column() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 2, 4);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_filtered(&t, &q, 0, t.len(), Some(1), &mut v, &mut s);
        assert_eq!(v.sum, 20 + 30 + 40);
    }

    #[test]
    fn exact_scan_skips_checks() {
        let t = table();
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 2, 5, Some(1), None, &mut v, &mut s);
        assert_eq!(v.sum, 20 + 30 + 40);
        assert_eq!(v.count, 3);
        assert_eq!(s.points_in_exact_ranges, 3);
    }

    #[test]
    fn exact_scan_with_cumulative_is_data_free() {
        let t = table();
        let c = t.cumulative_sum(1);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 0, 10, Some(1), Some(&c), &mut v, &mut s);
        assert_eq!(v.sum, (0..10u64).map(|i| i * 10).sum());
        // Prefix-sum path scans nothing.
        assert_eq!(s.points_scanned, 0);
        assert_eq!(s.points_in_exact_ranges, 10);
    }

    #[test]
    fn exact_scan_empty_range_is_noop() {
        let t = table();
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_exact(&t, 5, 5, None, None, &mut v, &mut s);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn scan_timing_populates_scan_ns() {
        let t = table();
        let q = RangeQuery::all(2).with_range(0, 0, 9);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        super::set_scan_timing(true);
        scan_full(&t, &q, None, &mut v, &mut s);
        super::set_scan_timing(false);
        assert!(s.scan_ns > 0, "timing enabled must record scan time");

        let mut s2 = ScanStats::default();
        let mut v2 = CountVisitor::default();
        scan_full(&t, &q, None, &mut v2, &mut s2);
        assert_eq!(s2.scan_ns, 0, "timing disabled must record nothing");
    }

    #[test]
    fn full_scan_equals_manual_filter() {
        let t = table();
        let q = RangeQuery::all(2).with_range(1, 25, 65);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_full(&t, &q, None, &mut v, &mut s);
        assert_eq!(v.count, 4); // 30,40,50,60
    }
}
