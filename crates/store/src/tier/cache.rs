//! Segment residency: the memory-budgeted cache between scans and the
//! storage backend.
//!
//! A segment is **resident** while the cache holds a strong reference to
//! its decoded blocks, and **cold** otherwise. [`SegmentCache::acquire`]
//! returns an `Arc` pin: a scan holds pins for every segment it needs for
//! exactly the duration of the query, so eviction can never deallocate
//! data mid-scan — it only drops the *cache's* reference, and the memory
//! is freed when the last pin goes.
//!
//! Eviction is least-recently-used under a logical clock: every hit or
//! fault stamps the entry, and when resident bytes exceed the budget the
//! stalest entries are dropped. A budget of zero keeps nothing resident —
//! every scan faults everything it touches, the worst case the
//! differential suite pins against the fully-resident oracle.

use super::backend::{SegmentKey, StorageBackend, StorageError};
use super::segment::decode_segment;
use crate::block::Block;
use flood_obs::Registry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Sealing and residency knobs for a tiered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Resident-tier memory budget in bytes (decoded segment heap size).
    /// Zero keeps every segment cold.
    pub budget_bytes: usize,
    /// Blocks per sealed segment; the unit of cold-tier I/O is
    /// `segment_blocks ×` [`BLOCK_LEN`](crate::BLOCK_LEN) rows.
    pub segment_blocks: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            budget_bytes: 64 << 20,
            segment_blocks: 8,
        }
    }
}

impl TierConfig {
    /// This configuration with the given memory budget.
    pub fn with_budget(self, budget_bytes: usize) -> Self {
        TierConfig {
            budget_bytes,
            ..self
        }
    }

    /// This configuration with the `FLOOD_MEM_BUDGET` environment variable
    /// (bytes) overriding the budget when set — how CI forces the test
    /// suites through a mostly-cold tier.
    pub fn from_env(self) -> Self {
        match std::env::var("FLOOD_MEM_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(budget) => self.with_budget(budget),
            None => self,
        }
    }
}

/// A decoded, pinned segment: the blocks of one column run.
#[derive(Debug)]
pub struct LoadedSegment {
    /// The run's blocks, in block order.
    pub blocks: Vec<Block>,
    /// Decoded heap size, the unit the budget is enforced in.
    pub bytes: usize,
}

#[derive(Debug)]
struct Entry {
    seg: Arc<LoadedSegment>,
    last_use: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<SegmentKey, Entry>,
    clock: u64,
    resident_bytes: usize,
}

/// The memory-budgeted residency manager shared by every snapshot of one
/// tiered table lineage.
#[derive(Debug)]
pub struct SegmentCache {
    backend: Arc<dyn StorageBackend>,
    budget: AtomicUsize,
    state: Mutex<CacheState>,
    faults: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
}

impl SegmentCache {
    /// A cache over `backend` holding at most `budget_bytes` of decoded
    /// segments.
    pub fn new(backend: Arc<dyn StorageBackend>, budget_bytes: usize) -> Self {
        SegmentCache {
            backend,
            budget: AtomicUsize::new(budget_bytes),
            state: Mutex::new(CacheState::default()),
            faults: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The storage backend cold segments are loaded from.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Pin a segment, faulting it in from the backend if it is cold.
    /// Returns the pin and whether this call performed backend I/O (a
    /// *fault*, as opposed to a resident *hit*).
    ///
    /// The backend read and decode run outside the cache lock, so
    /// concurrent scans faulting different segments do not serialize on
    /// each other's I/O.
    pub fn acquire(&self, key: SegmentKey) -> Result<(Arc<LoadedSegment>, bool), StorageError> {
        {
            let mut st = self.state.lock().expect("segment cache poisoned");
            st.clock += 1;
            let clock = st.clock;
            if let Some(e) = st.map.get_mut(&key) {
                e.last_use = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((e.seg.clone(), false));
            }
        }
        let bytes = self.backend.get(key)?;
        let blocks =
            decode_segment(&bytes).map_err(|detail| StorageError::Corrupt { key, detail })?;
        let heap: usize = blocks.iter().map(Block::size_bytes).sum();
        let seg = Arc::new(LoadedSegment {
            blocks,
            bytes: heap,
        });
        self.faults.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().expect("segment cache poisoned");
        st.clock += 1;
        let clock = st.clock;
        // Another scan may have loaded the same segment while we read; keep
        // one copy either way (ours — last writer wins, both are identical).
        let prev = st.map.insert(
            key,
            Entry {
                seg: seg.clone(),
                last_use: clock,
            },
        );
        st.resident_bytes += heap;
        if let Some(p) = prev {
            st.resident_bytes -= p.seg.bytes;
        }
        self.evict_over_budget(&mut st);
        Ok((seg, true))
    }

    /// Drop cache references until resident bytes fit the budget, stalest
    /// first. Pinned segments stay alive through their scans' `Arc`s; only
    /// residency ends.
    fn evict_over_budget(&self, st: &mut CacheState) {
        let budget = self.budget.load(Ordering::Relaxed);
        while st.resident_bytes > budget && !st.map.is_empty() {
            let stalest = st
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("non-empty");
            let e = st.map.remove(&stalest).expect("present");
            st.resident_bytes -= e.seg.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evict every resident segment (the adversarial schedule in the
    /// property suite; in-flight pins stay valid).
    pub fn evict_all(&self) {
        let mut st = self.state.lock().expect("segment cache poisoned");
        let n = st.map.len() as u64;
        st.map.clear();
        st.resident_bytes = 0;
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Forget one segment if resident (used when a compaction retires its
    /// key for good; not counted as an eviction).
    pub(crate) fn discard(&self, key: SegmentKey) {
        let mut st = self.state.lock().expect("segment cache poisoned");
        if let Some(e) = st.map.remove(&key) {
            st.resident_bytes -= e.seg.bytes;
        }
    }

    /// Change the memory budget; enforcement happens immediately.
    pub fn set_budget(&self, budget_bytes: usize) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
        let mut st = self.state.lock().expect("segment cache poisoned");
        self.evict_over_budget(&mut st);
    }

    /// The current memory budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Bytes of decoded segments currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.state
            .lock()
            .expect("segment cache poisoned")
            .resident_bytes
    }

    /// Number of segments currently resident.
    pub fn resident_segments(&self) -> usize {
        self.state.lock().expect("segment cache poisoned").map.len()
    }

    /// Whether a segment is currently resident (per-segment residency
    /// tracking, surfaced for tests and diagnostics).
    pub fn is_resident(&self, key: SegmentKey) -> bool {
        self.state
            .lock()
            .expect("segment cache poisoned")
            .map
            .contains_key(&key)
    }

    /// Lifetime count of backend loads (cold acquisitions).
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Lifetime count of resident acquisitions.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of budget evictions (including [`SegmentCache::evict_all`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Publish the cache's current state as gauges under `subsystem` in
    /// `registry` — the `flood-obs` bridge the `repro tiered` experiment
    /// and the tiered server report fault/eviction counts through.
    pub fn publish_gauges(&self, registry: &Registry, subsystem: &str) {
        let g = |name: &str, v: i64| registry.gauge(subsystem, name).set(v);
        g("budget_bytes", self.budget_bytes() as i64);
        g("resident_bytes", self.resident_bytes() as i64);
        g("resident_segments", self.resident_segments() as i64);
        g("faults", self.faults() as i64);
        g("hits", self.hits() as i64);
        g("evictions", self.evictions() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemBackend;
    use super::super::segment::encode_segment;
    use super::*;
    use crate::block::BLOCK_LEN;

    fn put_segment(b: &MemBackend, key: SegmentKey, base: u64) -> usize {
        let vals: Vec<u64> = (0..BLOCK_LEN as u64).map(|i| base + i).collect();
        let blocks = vec![Block::compress(&vals)];
        b.put(key, &encode_segment(&blocks)).unwrap();
        blocks.iter().map(Block::size_bytes).sum()
    }

    fn key(id: u64) -> SegmentKey {
        SegmentKey {
            table: 1,
            dim: 0,
            id,
        }
    }

    #[test]
    fn fault_then_hit() {
        let backend = Arc::new(MemBackend::new());
        put_segment(&backend, key(0), 100);
        let cache = SegmentCache::new(backend, 1 << 20);
        let (seg, faulted) = cache.acquire(key(0)).unwrap();
        assert!(faulted);
        assert_eq!(seg.blocks[0].get(0), 100);
        let (_, faulted) = cache.acquire(key(0)).unwrap();
        assert!(!faulted, "second acquire must be a hit");
        assert_eq!((cache.faults(), cache.hits()), (1, 1));
        assert!(cache.is_resident(key(0)));
    }

    #[test]
    fn budget_evicts_lru() {
        let backend = Arc::new(MemBackend::new());
        let sz = put_segment(&backend, key(0), 0);
        put_segment(&backend, key(1), 1000);
        put_segment(&backend, key(2), 2000);
        // Room for exactly two segments.
        let cache = SegmentCache::new(backend, 2 * sz);
        cache.acquire(key(0)).unwrap();
        cache.acquire(key(1)).unwrap();
        cache.acquire(key(0)).unwrap(); // refresh 0; 1 is now stalest
        cache.acquire(key(2)).unwrap();
        assert!(cache.is_resident(key(0)));
        assert!(!cache.is_resident(key(1)), "LRU segment must be evicted");
        assert!(cache.is_resident(key(2)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn zero_budget_keeps_nothing_resident() {
        let backend = Arc::new(MemBackend::new());
        put_segment(&backend, key(0), 0);
        let cache = SegmentCache::new(backend, 0);
        for _ in 0..3 {
            let (_, faulted) = cache.acquire(key(0)).unwrap();
            assert!(faulted, "budget 0: every acquire faults");
        }
        assert_eq!(cache.resident_segments(), 0);
        assert_eq!(cache.faults(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn pins_survive_eviction() {
        let backend = Arc::new(MemBackend::new());
        put_segment(&backend, key(0), 42);
        let cache = SegmentCache::new(backend, 1 << 20);
        let (pin, _) = cache.acquire(key(0)).unwrap();
        cache.evict_all();
        assert_eq!(cache.resident_segments(), 0);
        // The pinned data is still readable after eviction.
        assert_eq!(pin.blocks[0].get(0), 42);
    }

    #[test]
    fn set_budget_enforces_immediately() {
        let backend = Arc::new(MemBackend::new());
        put_segment(&backend, key(0), 0);
        put_segment(&backend, key(1), 0);
        let cache = SegmentCache::new(backend, 1 << 20);
        cache.acquire(key(0)).unwrap();
        cache.acquire(key(1)).unwrap();
        assert_eq!(cache.resident_segments(), 2);
        cache.set_budget(0);
        assert_eq!(cache.resident_segments(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn gauges_reflect_cache_state() {
        let backend = Arc::new(MemBackend::new());
        put_segment(&backend, key(0), 0);
        let cache = SegmentCache::new(backend, 1 << 20);
        cache.acquire(key(0)).unwrap();
        cache.acquire(key(0)).unwrap();
        let reg = Registry::new();
        cache.publish_gauges(&reg, "tier");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("tier", "faults"), Some(1));
        assert_eq!(snap.gauge("tier", "hits"), Some(1));
        assert_eq!(snap.gauge("tier", "resident_segments"), Some(1));
        assert!(snap.gauge("tier", "resident_bytes").unwrap() > 0);
    }

    #[test]
    fn from_env_reads_budget_override() {
        // Avoid touching the real env (tests run concurrently): exercise
        // the parse path only when the variable is absent.
        if std::env::var("FLOOD_MEM_BUDGET").is_err() {
            let cfg = TierConfig::default().with_budget(123).from_env();
            assert_eq!(cfg.budget_bytes, 123);
        }
    }
}
