//! The on-disk segment format: a run of bit-packed blocks, checksummed.
//!
//! A segment serializes [`Block`]s verbatim — the cold tier stores exactly
//! the compressed representation the scan kernels consume, so a fault is
//! decode-free beyond validation: no re-compression, no value decoding.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8B  "FLDSEG01"
//! n_blocks 4B
//! blocks   n_blocks × ( min 8B | max 8B | width 1B | len 2B |
//!                       n_words 4B | words n_words × 8B )
//! checksum 8B  FNV-1a over every preceding byte
//! ```
//!
//! [`decode_segment`] bounds-checks every read and verifies the trailing
//! checksum, so a short read or bit flip surfaces as a typed
//! [`StorageError::Corrupt`](super::StorageError) — never a panic, never a
//! silently wrong scan.

use crate::block::Block;

/// Format magic: identifies a segment blob and its layout version.
const MAGIC: &[u8; 8] = b"FLDSEG01";

/// FNV-1a 64-bit, the trailing integrity check. Not cryptographic — it
/// guards against truncation and accidental corruption, which is the
/// failure model for a local cold tier.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize a run of blocks into one segment blob.
pub fn encode_segment(blocks: &[Block]) -> Vec<u8> {
    let payload: usize = blocks
        .iter()
        .map(|b| 8 + 8 + 1 + 2 + 4 + b.words().len() * 8)
        .sum();
    let mut out = Vec::with_capacity(8 + 4 + payload + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&b.min().to_le_bytes());
        out.extend_from_slice(&b.max().to_le_bytes());
        out.push(b.width());
        out.extend_from_slice(&(b.len() as u16).to_le_bytes());
        out.extend_from_slice(&(b.words().len() as u32).to_le_bytes());
        for &w in b.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Cursor over a segment blob; every read is bounds-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, blob holds {}",
                self.at,
                self.bytes.len()
            ));
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
}

/// Deserialize a segment blob back into its blocks. The error string
/// describes what failed validation; callers wrap it in
/// [`StorageError::Corrupt`](super::StorageError).
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<Block>, String> {
    if bytes.len() < 8 + 4 + 8 {
        return Err(format!(
            "blob of {} bytes is shorter than a header",
            bytes.len()
        ));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8B"));
    let got = fnv1a(body);
    if got != want {
        return Err(format!(
            "checksum mismatch: stored {want:#x}, computed {got:#x}"
        ));
    }
    let mut r = Reader { bytes: body, at: 0 };
    if r.take(8)? != MAGIC {
        return Err("bad magic: not a segment blob".into());
    }
    let n_blocks = r.u32()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for i in 0..n_blocks {
        let min = r.u64()?;
        let max = r.u64()?;
        let width = r.u8()?;
        let len = r.u16()?;
        let n_words = r.u32()? as usize;
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        blocks.push(
            Block::from_raw_parts(min, max, width, len, words.into_boxed_slice())
                .map_err(|e| format!("block {i}: {e}"))?,
        );
    }
    if r.at != body.len() {
        return Err(format!(
            "{} trailing bytes after last block",
            body.len() - r.at
        ));
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_LEN;

    fn blocks() -> Vec<Block> {
        let vals: Vec<u64> = (0..300u64).map(|i| 1_000 + (i * 37) % 512).collect();
        vals.chunks(BLOCK_LEN).map(Block::compress).collect()
    }

    #[test]
    fn roundtrip_preserves_every_value() {
        let orig = blocks();
        let enc = encode_segment(&orig);
        let dec = decode_segment(&enc).unwrap();
        assert_eq!(dec.len(), orig.len());
        for (a, b) in orig.iter().zip(&dec) {
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i));
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let enc = encode_segment(&blocks());
        for keep in [0, 7, 11, 20, enc.len() / 2, enc.len() - 1] {
            let err = decode_segment(&enc[..keep]).unwrap_err();
            assert!(!err.is_empty(), "keep={keep}");
        }
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut enc = encode_segment(&blocks());
        let mid = enc.len() / 2;
        enc[mid] ^= 0x40;
        let err = decode_segment(&enc).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = encode_segment(&blocks());
        enc[0] = b'X';
        // Checksum still covers the body, so recompute a valid one to reach
        // the magic check.
        let n = enc.len();
        let sum = super::fnv1a(&enc[..n - 8]);
        enc[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_segment(&enc).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn empty_run_roundtrips() {
        let enc = encode_segment(&[]);
        assert!(decode_segment(&enc).unwrap().is_empty());
    }
}
