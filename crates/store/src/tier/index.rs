//! [`TieredScan`]: the full-scan "index" over a [`TieredTable`] — the
//! tiered counterpart of the `Full Scan` baseline, and the execution entry
//! point for sealed larger-than-RAM data.
//!
//! # Failure policy
//!
//! A tiered scan can fail where a resident scan cannot: a segment load may
//! hit an I/O error or corruption. The policy, relied on by `flood-serve`:
//!
//! * [`TieredScan::try_execute`] surfaces the typed [`StorageError`]. The
//!   kernels guarantee the visitor saw *nothing* from the failed attempt
//!   (no partial results), so retrying with the same visitor is sound.
//! * The infallible [`MultiDimIndex::execute`] retries up to
//!   [`SCAN_RETRIES`] times — transient faults heal — and panics on a
//!   persistent failure. Servers that want to degrade instead of die call
//!   `try_execute` and apply their own retry budget
//!   (`flood-serve`'s tiered server does exactly that).
//!
//! Partitioned plans cut at [`TieredTable::segment_rows`] boundaries, so
//! every segment a query needs is faulted and pinned by exactly one task:
//! parallel fault counts sum to the serial scan's and workers never race
//! to load the same cold segment for one query.

use super::backend::StorageBackend;
use super::backend::StorageError;
use super::cache::TierConfig;
use super::scan::scan_filtered_tiered;
use super::table::TieredTable;
use crate::index_trait::{MultiDimIndex, PartitionedScan, ScanPlan};
use crate::partition::{partition_ranges_aligned, RangeChunk};
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::table::Table;
use crate::visitor::Visitor;
use std::sync::Arc;

/// How many times the infallible execution paths retry a failed segment
/// load before giving up (panicking).
pub const SCAN_RETRIES: usize = 2;

/// Full-scan execution over tiered storage.
#[derive(Debug, Clone)]
pub struct TieredScan {
    data: TieredTable,
}

impl TieredScan {
    /// Wrap an already-sealed table.
    pub fn new(data: TieredTable) -> Self {
        TieredScan { data }
    }

    /// Seal `table` cold and wrap it.
    pub fn seal(
        table: &Table,
        backend: Arc<dyn StorageBackend>,
        cfg: TierConfig,
    ) -> Result<Self, StorageError> {
        Ok(TieredScan {
            data: TieredTable::seal(table, backend, cfg)?,
        })
    }

    /// The underlying tiered table.
    pub fn data(&self) -> &TieredTable {
        &self.data
    }

    /// Execute `query`, surfacing segment-load failures instead of
    /// retrying. On `Err` the visitor is untouched; on `Ok` the stats and
    /// results match the resident `Full Scan` baseline exactly (modulo the
    /// tier counters).
    pub fn try_execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> Result<ScanStats, StorageError> {
        let mut stats = ScanStats::default();
        let mut counter = MatchCount {
            inner: visitor,
            matched: 0,
        };
        scan_filtered_tiered(
            &self.data,
            query,
            0,
            self.data.len(),
            agg_dim,
            &mut counter,
            &mut stats,
        )?;
        stats.points_matched = counter.matched;
        stats.ranges_scanned = 1;
        Ok(stats)
    }
}

impl MultiDimIndex for TieredScan {
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats {
        let mut last: Option<StorageError> = None;
        for _ in 0..=SCAN_RETRIES {
            match self.try_execute(query, agg_dim, visitor) {
                Ok(stats) => return stats,
                Err(e) => last = Some(e),
            }
        }
        panic!(
            "tiered scan failed after {} retries: {}",
            SCAN_RETRIES,
            last.expect("loop ran")
        );
    }

    fn index_size_bytes(&self) -> usize {
        // The resident footprint of cold data: block metadata, cumulative
        // sidecars, segment geometry.
        self.data.metadata_bytes()
    }

    fn name(&self) -> &'static str {
        "Tiered Scan"
    }
}

impl PartitionedScan for TieredScan {
    fn plan_scan(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> Box<dyn ScanPlan + '_> {
        Box::new(TieredScanPlan {
            data: &self.data,
            query: query.clone(),
            agg_dim,
            tasks: partition_ranges_aligned(
                &[(0, self.data.len())],
                max_tasks,
                self.data.segment_rows(),
            ),
            plan_stats: ScanStats {
                ranges_scanned: 1,
                ..Default::default()
            },
        })
    }
}

/// [`ScanPlan`] over segment-aligned chunks of a tiered table.
struct TieredScanPlan<'a> {
    data: &'a TieredTable,
    query: RangeQuery,
    agg_dim: Option<usize>,
    tasks: Vec<Vec<RangeChunk>>,
    plan_stats: ScanStats,
}

impl ScanPlan for TieredScanPlan<'_> {
    fn tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize, visitor: &mut dyn Visitor, stats: &mut ScanStats) {
        let mut counter = MatchCount {
            inner: visitor,
            matched: 0,
        };
        for c in &self.tasks[i] {
            // Same retry policy as `execute`: a failed chunk emitted
            // nothing, so retrying just that chunk is sound even though
            // earlier chunks already fed the visitor.
            let mut last: Option<StorageError> = None;
            let mut done = false;
            for _ in 0..=SCAN_RETRIES {
                match scan_filtered_tiered(
                    self.data,
                    &self.query,
                    c.start,
                    c.end,
                    self.agg_dim,
                    &mut counter,
                    stats,
                ) {
                    Ok(()) => {
                        done = true;
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if !done {
                panic!(
                    "tiered scan task failed after {} retries: {}",
                    SCAN_RETRIES,
                    last.expect("loop ran")
                );
            }
        }
        stats.points_matched += counter.matched;
    }

    fn plan_stats(&self) -> ScanStats {
        self.plan_stats
    }
}

/// Counts matched points on behalf of [`ScanStats`] while forwarding to
/// the caller's visitor (the tier-local twin of the baselines' adapter).
struct MatchCount<'a> {
    inner: &'a mut dyn Visitor,
    matched: u64,
}

impl Visitor for MatchCount<'_> {
    #[inline]
    fn visit(&mut self, row: usize, value: u64) {
        self.matched += 1;
        self.inner.visit(row, value);
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.matched += count as u64;
        self.inner.visit_exact_sum(count, sum);
    }

    fn needs_value(&self) -> bool {
        self.inner.needs_value()
    }

    fn supports_exact(&self) -> bool {
        self.inner.supports_exact()
    }
}

// The serve layer hands `Arc<TieredScan>` snapshots to reader threads and
// runs eviction concurrently; pin the thread-safety the tier types must
// keep.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<TieredScan>();
    _assert_send_sync::<TieredTable>();
    _assert_send_sync::<super::cache::SegmentCache>();
    _assert_send_sync::<StorageError>();
};

#[cfg(test)]
mod tests {
    use super::super::backend::{FailingBackend, MemBackend};
    use super::*;
    use crate::visitor::{CountVisitor, SumVisitor};

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|i| (i * 37) % 501).collect(),
        ])
    }

    fn tiered(n: u64, budget: usize) -> TieredScan {
        TieredScan::seal(
            &table(n),
            Arc::new(MemBackend::new()),
            TierConfig {
                budget_bytes: budget,
                segment_blocks: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn execute_matches_resident_full_scan() {
        let t = table(1_500);
        let idx = tiered(1_500, 0);
        let q = RangeQuery::all(2).with_range(0, 200, 900);
        let mut v = SumVisitor::default();
        let stats = idx.execute(&q, Some(1), &mut v);
        let want: u64 = (200..=900u64)
            .map(|r| t.value(r as usize, 1))
            .fold(0, |a, x| a.wrapping_add(x));
        assert_eq!(v.sum, want);
        assert_eq!(v.count, 701);
        assert_eq!(stats.points_matched, 701);
        assert_eq!(stats.ranges_scanned, 1);
        assert_eq!(stats.points_scanned, 1_500);
    }

    #[test]
    fn execute_retries_transient_faults() {
        let inner = Arc::new(MemBackend::new());
        let failing = Arc::new(FailingBackend::new(inner));
        let idx = TieredScan::seal(
            &table(512),
            failing.clone(),
            TierConfig {
                budget_bytes: 0,
                segment_blocks: 2,
            },
        )
        .unwrap();
        failing.fail_load(1);
        let q = RangeQuery::all(2).with_range(0, 0, 300);
        let mut v = CountVisitor::default();
        let stats = idx.execute(&q, None, &mut v);
        assert_eq!(v.count, 301, "retry must not duplicate or drop rows");
        assert_eq!(stats.points_matched, 301);
        assert_eq!(failing.injected(), 1);
    }

    #[test]
    #[should_panic(expected = "tiered scan failed after 2 retries")]
    fn execute_panics_on_persistent_failure() {
        let inner = Arc::new(MemBackend::new());
        let failing = Arc::new(FailingBackend::new(inner));
        let idx = TieredScan::seal(
            &table(512),
            failing.clone(),
            TierConfig {
                budget_bytes: 0,
                segment_blocks: 2,
            },
        )
        .unwrap();
        for nth in 1..=(SCAN_RETRIES as u64 + 1) {
            failing.fail_load(nth);
        }
        let q = RangeQuery::all(2).with_range(0, 0, 300);
        let mut v = CountVisitor::default();
        let _ = idx.execute(&q, None, &mut v);
    }

    #[test]
    fn partitioned_plan_matches_serial() {
        let idx = tiered(5_000, 1 << 20);
        let q = RangeQuery::all(2)
            .with_range(0, 100, 4_200)
            .with_range(1, 0, 250);
        let mut serial = CountVisitor::default();
        let serial_stats = idx.execute(&q, None, &mut serial);
        for max_tasks in [1, 3, 8] {
            let plan = idx.plan_scan(&q, None, max_tasks);
            let mut count = 0u64;
            let mut stats = plan.plan_stats();
            for i in 0..plan.tasks() {
                let mut v = CountVisitor::default();
                let mut s = ScanStats::default();
                plan.run_task(i, &mut v, &mut s);
                count += v.count;
                stats.merge(&s);
            }
            assert_eq!(count, serial.count, "{max_tasks} tasks");
            // Tier counters may split differently across warm caches, but
            // every shared counter must merge to the serial value.
            assert_eq!(
                stats.sans_tier_counters(),
                serial_stats.sans_tier_counters(),
                "{max_tasks} tasks"
            );
        }
    }

    #[test]
    fn parallel_fault_counts_sum_to_serial() {
        // Budget 0: nothing survives between acquires, so fault counts are
        // pure "who needed what". Segment-aligned cuts put every needed
        // segment in exactly one task, so the merged fault count equals the
        // serial scan's — no duplicate loads, no cross-task races.
        let idx = tiered(5_000, 0);
        let q = RangeQuery::all(2)
            .with_range(0, 100, 4_200)
            .with_range(1, 0, 250);
        let mut sv = CountVisitor::default();
        let serial_stats = idx.execute(&q, None, &mut sv);
        for max_tasks in [2, 5] {
            let plan = idx.plan_scan(&q, None, max_tasks);
            let mut merged = plan.plan_stats();
            let mut count = 0u64;
            for i in 0..plan.tasks() {
                let mut v = CountVisitor::default();
                let mut s = ScanStats::default();
                plan.run_task(i, &mut v, &mut s);
                count += v.count;
                merged.merge(&s);
            }
            assert_eq!(count, sv.count, "{max_tasks} tasks");
            assert_eq!(
                merged.segments_faulted, serial_stats.segments_faulted,
                "{max_tasks} tasks: a segment was loaded by more than one task"
            );
            assert_eq!(merged.segments_hit, 0, "{max_tasks} tasks");
        }
    }

    #[test]
    fn empty_table_executes_cleanly() {
        let idx = TieredScan::seal(
            &Table::from_columns(vec![vec![], vec![]]),
            Arc::new(MemBackend::new()),
            TierConfig::default(),
        )
        .unwrap();
        let mut v = CountVisitor::default();
        let stats = idx.execute(&RangeQuery::all(2), None, &mut v);
        assert_eq!(v.count, 0);
        assert_eq!(stats.points_matched, 0);
        assert_eq!(idx.plan_scan(&RangeQuery::all(2), None, 4).tasks(), 0);
    }
}
