//! Storage backends for the cold tier: where sealed segments live when
//! they are not resident.
//!
//! A [`StorageBackend`] is a flat, keyed blob store — deliberately no
//! richer than `put`/`get`/`delete`, so a file directory, an in-memory map
//! (deterministic tests) and a fault-injecting wrapper are all drop-in.
//! Every operation returns a typed [`StorageError`]; the scan fault path
//! (see [`crate::tier::scan`]) turns any of them into a clean query error
//! with no partial results.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifies one sealed segment: a run of blocks of one column of one
/// sealed table generation. Ids are allocated monotonically per table and
/// never reused, so a compacted-away segment's key can never be confused
/// with its replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentKey {
    /// Process-unique id of the owning [`crate::tier::TieredTable`] lineage.
    pub table: u64,
    /// Column the segment belongs to.
    pub dim: u32,
    /// Monotone per-table segment id.
    pub id: u64,
}

impl fmt::Display for SegmentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:x}.d{}.s{}", self.table, self.dim, self.id)
    }
}

/// Typed failure surfaced by the cold tier. Scans return it verbatim — no
/// panic, no partial results — and the serving layer retries or degrades
/// per the policy documented on [`crate::tier::TieredScan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The backend could not read or write the segment (I/O failure).
    Io {
        /// Segment the operation targeted.
        key: SegmentKey,
        /// Backend-specific description.
        detail: String,
    },
    /// The segment's bytes came back but failed validation — a short read,
    /// a checksum mismatch, or an inconsistent header.
    Corrupt {
        /// Segment whose payload failed validation.
        key: SegmentKey,
        /// What the codec rejected.
        detail: String,
    },
    /// The backend has no blob under this key.
    Missing {
        /// The absent segment.
        key: SegmentKey,
    },
    /// A failure not tied to one segment (e.g. the backing directory could
    /// not be created).
    Backend {
        /// Backend-specific description.
        detail: String,
    },
}

impl StorageError {
    /// The segment the error is about, when it is about one.
    pub fn key(&self) -> Option<SegmentKey> {
        match self {
            StorageError::Io { key, .. }
            | StorageError::Corrupt { key, .. }
            | StorageError::Missing { key } => Some(*key),
            StorageError::Backend { .. } => None,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { key, detail } => write!(f, "segment {key}: I/O error: {detail}"),
            StorageError::Corrupt { key, detail } => {
                write!(f, "segment {key}: corrupt payload: {detail}")
            }
            StorageError::Missing { key } => write!(f, "segment {key}: not found"),
            StorageError::Backend { detail } => write!(f, "storage backend error: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// A keyed blob store holding sealed cold segments.
///
/// Implementations must be shareable across reader threads: scans on
/// different snapshots fault segments concurrently.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Store `bytes` under `key`, replacing any previous blob.
    fn put(&self, key: SegmentKey, bytes: &[u8]) -> Result<(), StorageError>;

    /// Fetch the blob under `key`.
    fn get(&self, key: SegmentKey) -> Result<Vec<u8>, StorageError>;

    /// Remove the blob under `key`. Removing an absent key is not an error
    /// (deletion is best-effort cleanup on segment retirement).
    fn delete(&self, key: SegmentKey) -> Result<(), StorageError>;
}

/// In-memory backend: a mutex-guarded map. The deterministic choice for
/// tests and the differential property suite — identical latency for every
/// segment, no OS page cache underneath.
#[derive(Debug, Default)]
pub struct MemBackend {
    blobs: Mutex<HashMap<SegmentKey, Arc<[u8]>>>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs currently stored.
    pub fn blob_count(&self) -> usize {
        self.blobs.lock().expect("mem backend poisoned").len()
    }

    /// Total stored bytes across all blobs.
    pub fn stored_bytes(&self) -> usize {
        self.blobs
            .lock()
            .expect("mem backend poisoned")
            .values()
            .map(|b| b.len())
            .sum()
    }
}

impl StorageBackend for MemBackend {
    fn put(&self, key: SegmentKey, bytes: &[u8]) -> Result<(), StorageError> {
        self.blobs
            .lock()
            .expect("mem backend poisoned")
            .insert(key, bytes.into());
        Ok(())
    }

    fn get(&self, key: SegmentKey) -> Result<Vec<u8>, StorageError> {
        self.blobs
            .lock()
            .expect("mem backend poisoned")
            .get(&key)
            .map(|b| b.to_vec())
            .ok_or(StorageError::Missing { key })
    }

    fn delete(&self, key: SegmentKey) -> Result<(), StorageError> {
        self.blobs
            .lock()
            .expect("mem backend poisoned")
            .remove(&key);
        Ok(())
    }
}

/// Counter making concurrently created temp directories unique within the
/// process (the pid disambiguates across processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// File-backed cold tier: one file per segment in a flat directory.
///
/// Plain `read`/`write` rather than mmap: segment loads are explicit,
/// bounded, and accounted (the fault counters in
/// [`ScanStats`](crate::ScanStats) mean "this many disk reads"), which an
/// mmap'd page fault would hide.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    /// Created by [`FileBackend::new_temp`]: remove the directory on drop.
    owns_dir: bool,
}

impl FileBackend {
    /// Open (creating if needed) `dir` as a segment store.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::Backend {
            detail: format!("create {}: {e}", dir.display()),
        })?;
        Ok(FileBackend {
            dir,
            owns_dir: false,
        })
    }

    /// A process-unique temporary segment store under the system temp
    /// directory, removed (best-effort) when the backend drops.
    pub fn new_temp() -> Result<Self, StorageError> {
        let dir = std::env::temp_dir().join(format!(
            "flood-tier-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut b = FileBackend::new(&dir)?;
        b.owns_dir = true;
        Ok(b)
    }

    /// The directory segments are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: SegmentKey) -> PathBuf {
        self.dir
            .join(format!("{:016x}-{}-{}.seg", key.table, key.dim, key.id))
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl StorageBackend for FileBackend {
    fn put(&self, key: SegmentKey, bytes: &[u8]) -> Result<(), StorageError> {
        std::fs::write(self.path(key), bytes).map_err(|e| StorageError::Io {
            key,
            detail: e.to_string(),
        })
    }

    fn get(&self, key: SegmentKey) -> Result<Vec<u8>, StorageError> {
        match std::fs::read(self.path(key)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::Missing { key })
            }
            Err(e) => Err(StorageError::Io {
                key,
                detail: e.to_string(),
            }),
        }
    }

    fn delete(&self, key: SegmentKey) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::Io {
                key,
                detail: e.to_string(),
            }),
        }
    }
}

/// One planned fault for [`FailingBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injection {
    /// Fail the load outright with [`StorageError::Io`].
    Error,
    /// Return only the first `keep` bytes of the blob (a short read), which
    /// the segment codec must reject as [`StorageError::Corrupt`].
    ShortRead(usize),
}

/// Fault-injecting wrapper used by the fault-injection test suites: fails
/// or truncates chosen segment *loads* (counted from 1) while passing
/// writes and deletes through untouched.
///
/// Lives in the crate proper (not `#[cfg(test)]`) because the integration
/// suites in `tests/` and the serve-layer policy tests need it; it carries
/// no overhead for production callers who simply never construct one.
#[derive(Debug)]
pub struct FailingBackend {
    inner: Arc<dyn StorageBackend>,
    /// Planned injections keyed by load ordinal (1-based).
    planned: Mutex<HashMap<u64, Injection>>,
    loads: AtomicU64,
    injected: AtomicU64,
}

impl FailingBackend {
    /// Wrap `inner`, initially injecting nothing.
    pub fn new(inner: Arc<dyn StorageBackend>) -> Self {
        FailingBackend {
            inner,
            planned: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Make the `nth` upcoming load (1 = the very next one, counted from
    /// the backend's creation) fail with an I/O error.
    pub fn fail_load(&self, nth: u64) {
        self.planned
            .lock()
            .expect("fault plan poisoned")
            .insert(self.loads.load(Ordering::SeqCst) + nth, Injection::Error);
    }

    /// Make the `nth` upcoming load return only the first `keep` bytes.
    pub fn short_read_load(&self, nth: u64, keep: usize) {
        self.planned.lock().expect("fault plan poisoned").insert(
            self.loads.load(Ordering::SeqCst) + nth,
            Injection::ShortRead(keep),
        );
    }

    /// Total loads attempted through this wrapper.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::SeqCst)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }
}

impl StorageBackend for FailingBackend {
    fn put(&self, key: SegmentKey, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.put(key, bytes)
    }

    fn get(&self, key: SegmentKey) -> Result<Vec<u8>, StorageError> {
        let ordinal = self.loads.fetch_add(1, Ordering::SeqCst) + 1;
        let injection = self
            .planned
            .lock()
            .expect("fault plan poisoned")
            .remove(&ordinal);
        match injection {
            Some(Injection::Error) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(StorageError::Io {
                    key,
                    detail: format!("injected failure at load {ordinal}"),
                })
            }
            Some(Injection::ShortRead(keep)) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                let mut bytes = self.inner.get(key)?;
                bytes.truncate(keep);
                Ok(bytes)
            }
            None => self.inner.get(key),
        }
    }

    fn delete(&self, key: SegmentKey) -> Result<(), StorageError> {
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u64) -> SegmentKey {
        SegmentKey {
            table: 7,
            dim: 1,
            id,
        }
    }

    #[test]
    fn mem_backend_roundtrip_and_missing() {
        let b = MemBackend::new();
        b.put(key(0), &[1, 2, 3]).unwrap();
        assert_eq!(b.get(key(0)).unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get(key(1)), Err(StorageError::Missing { key: key(1) }));
        b.delete(key(0)).unwrap();
        assert_eq!(b.get(key(0)), Err(StorageError::Missing { key: key(0) }));
        // Deleting an absent key is fine.
        b.delete(key(0)).unwrap();
    }

    #[test]
    fn file_backend_roundtrip_and_temp_cleanup() {
        let b = FileBackend::new_temp().unwrap();
        let dir = b.dir().to_path_buf();
        b.put(key(3), &[9; 100]).unwrap();
        assert_eq!(b.get(key(3)).unwrap(), vec![9; 100]);
        assert!(matches!(b.get(key(4)), Err(StorageError::Missing { .. })));
        b.delete(key(3)).unwrap();
        b.delete(key(3)).unwrap();
        drop(b);
        assert!(!dir.exists(), "temp dir must be removed on drop");
    }

    #[test]
    fn failing_backend_injects_at_chosen_loads() {
        let inner = Arc::new(MemBackend::new());
        inner.put(key(0), &[1, 2, 3, 4]).unwrap();
        let b = FailingBackend::new(inner);
        b.fail_load(2);
        b.short_read_load(3, 1);
        assert_eq!(b.get(key(0)).unwrap(), vec![1, 2, 3, 4]);
        assert!(matches!(b.get(key(0)), Err(StorageError::Io { .. })));
        assert_eq!(b.get(key(0)).unwrap(), vec![1]);
        assert_eq!(b.get(key(0)).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(b.loads(), 4);
        assert_eq!(b.injected(), 2);
    }

    #[test]
    fn error_display_names_the_segment() {
        let e = StorageError::Corrupt {
            key: key(5),
            detail: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("t7.d1.s5"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
        assert_eq!(e.key(), Some(key(5)));
    }
}
