//! [`TieredDelta`]: fresh inserts over a sealed tiered table.
//!
//! The same write path shape as the resident store's delta (`delta.rs`):
//! inserts land in a plain row buffer that every query scans linearly
//! after the sealed base, and compaction drains the buffer — here by
//! sealing it into *new cold segments* appended to the base
//! ([`TieredTable::append_columns`]), so a larger-than-RAM table absorbs
//! writes without ever materializing fully in memory.
//!
//! Row ids are stable and append-only: base rows keep their ids across
//! compactions, buffered rows are addressed past the current base length
//! (their ids shift only from "buffered" to "sealed" position — which is
//! the same number, because compaction appends in insert order).
//!
//! The base scan is fallible (segment faults); the buffer scan is not.
//! Queries run the fallible part *first* — an I/O error surfaces before
//! the visitor has seen anything, so callers retry wholesale, same
//! contract as [`TieredScan`](super::TieredScan).

use super::backend::StorageError;
use super::scan::scan_filtered_tiered;
use super::table::TieredTable;
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::visitor::Visitor;

/// Default number of buffered rows that triggers auto-compaction.
pub const DEFAULT_TIER_DELTA_THRESHOLD: usize = 4_096;

/// A write buffer over a sealed [`TieredTable`].
#[derive(Debug)]
pub struct TieredDelta {
    base: TieredTable,
    /// Column-major insert buffer, one `Vec` per dimension.
    buffer: Vec<Vec<u64>>,
    threshold: usize,
}

impl TieredDelta {
    /// Wrap a sealed base with the default compaction threshold.
    pub fn new(base: TieredTable) -> Self {
        Self::with_threshold(base, DEFAULT_TIER_DELTA_THRESHOLD)
    }

    /// Wrap a sealed base; the buffer auto-compacts when it reaches
    /// `threshold` rows (`usize::MAX` for manual-only compaction).
    pub fn with_threshold(base: TieredTable, threshold: usize) -> Self {
        let dims = base.dims();
        TieredDelta {
            base,
            buffer: vec![Vec::new(); dims],
            threshold: threshold.max(1),
        }
    }

    /// The sealed base.
    pub fn base(&self) -> &TieredTable {
        &self.base
    }

    /// Total rows: sealed plus buffered.
    pub fn len(&self) -> usize {
        self.base.len() + self.buffered()
    }

    /// True when no rows exist at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows currently in the unsealed buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.first().map_or(0, Vec::len)
    }

    /// Insert one row (one value per dimension). Returns the row's stable
    /// id. Auto-compacts when the buffer reaches the threshold; the only
    /// error source is that sealing write.
    pub fn insert(&mut self, row: &[u64]) -> Result<usize, StorageError> {
        assert_eq!(row.len(), self.base.dims(), "row arity mismatch");
        let id = self.len();
        for (col, &v) in self.buffer.iter_mut().zip(row) {
            col.push(v);
        }
        if self.buffered() >= self.threshold {
            self.compact()?;
        }
        Ok(id)
    }

    /// Seal the buffer into new cold segments appended to the base. A
    /// no-op on an empty buffer. On error the buffer is retained — nothing
    /// is lost, and the insert path can retry.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        if self.buffered() == 0 {
            return Ok(());
        }
        let staged = self.buffer.clone();
        self.base.append_columns(staged)?;
        for col in &mut self.buffer {
            col.clear();
        }
        Ok(())
    }

    /// Execute `query` over base + buffer. The fallible base scan runs
    /// first; on `Err` the visitor is untouched. Buffered rows are visited
    /// after sealed rows, in insert order, with their stable ids.
    pub fn try_execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> Result<ScanStats, StorageError> {
        let mut stats = ScanStats::default();
        let mut counter = MatchCount {
            inner: visitor,
            matched: 0,
        };
        scan_filtered_tiered(
            &self.base,
            query,
            0,
            self.base.len(),
            agg_dim,
            &mut counter,
            &mut stats,
        )?;
        stats.ranges_scanned = 1;
        let buffered = self.buffered();
        if buffered > 0 {
            // Linear scan of the plain buffer, same checks as the kernels.
            stats.ranges_scanned += 1;
            stats.points_scanned += buffered as u64;
            let checks: Vec<(usize, u64, u64)> = query
                .filtered_dims()
                .into_iter()
                .map(|d| {
                    let (lo, hi) = query.bound(d).expect("filtered dim has a bound");
                    (d, lo, hi)
                })
                .collect();
            let needs_value = counter.needs_value();
            'rows: for i in 0..buffered {
                for &(d, lo, hi) in &checks {
                    let v = self.buffer[d][i];
                    if v < lo || v > hi {
                        continue 'rows;
                    }
                }
                let v = match agg_dim {
                    Some(d) if needs_value => self.buffer[d][i],
                    _ => 0,
                };
                counter.visit(self.base.len() + i, v);
            }
        }
        stats.points_matched = counter.matched;
        Ok(stats)
    }
}

/// Match counter forwarding to the caller's visitor.
struct MatchCount<'a> {
    inner: &'a mut dyn Visitor,
    matched: u64,
}

impl Visitor for MatchCount<'_> {
    #[inline]
    fn visit(&mut self, row: usize, value: u64) {
        self.matched += 1;
        self.inner.visit(row, value);
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.matched += count as u64;
        self.inner.visit_exact_sum(count, sum);
    }

    fn needs_value(&self) -> bool {
        self.inner.needs_value()
    }

    fn supports_exact(&self) -> bool {
        self.inner.supports_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemBackend;
    use super::super::cache::TierConfig;
    use super::*;
    use crate::table::Table;
    use crate::visitor::{CountVisitor, SumVisitor};
    use std::sync::Arc;

    fn base(n: u64) -> TieredTable {
        TieredTable::seal(
            &Table::from_columns(vec![(0..n).collect(), (0..n).map(|i| i * 3).collect()]),
            Arc::new(MemBackend::new()),
            TierConfig {
                budget_bytes: 1 << 16,
                segment_blocks: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn inserts_visible_and_compaction_preserves_results() {
        let mut d = TieredDelta::with_threshold(base(300), usize::MAX);
        for i in 0..50u64 {
            let id = d.insert(&[1_000 + i, i]).unwrap();
            assert_eq!(id, 300 + i as usize);
        }
        let q = RangeQuery::all(2).with_range(0, 1_000, 2_000);
        let mut v = CountVisitor::default();
        let before = d.try_execute(&q, None, &mut v).unwrap();
        assert_eq!(v.count, 50);
        assert_eq!(before.ranges_scanned, 2);

        d.compact().unwrap();
        assert_eq!(d.buffered(), 0);
        assert_eq!(d.len(), 350);
        let mut v2 = CountVisitor::default();
        let after = d.try_execute(&q, None, &mut v2).unwrap();
        assert_eq!(v2.count, 50, "compaction must not change results");
        assert_eq!(after.ranges_scanned, 1, "buffer drained");
    }

    #[test]
    fn auto_compacts_at_threshold() {
        let mut d = TieredDelta::with_threshold(base(256), 16);
        let segs_before = d.base().n_segments();
        for i in 0..16u64 {
            d.insert(&[i, i]).unwrap();
        }
        assert_eq!(d.buffered(), 0, "threshold insert must compact");
        assert!(d.base().n_segments() >= segs_before);
        assert_eq!(d.len(), 272);
    }

    #[test]
    fn sums_agree_with_linear_reference() {
        let mut d = TieredDelta::with_threshold(base(300), usize::MAX);
        for i in 0..40u64 {
            d.insert(&[i * 7 % 290, i]).unwrap();
        }
        let q = RangeQuery::all(2).with_range(0, 50, 200);
        let mut v = SumVisitor::default();
        d.try_execute(&q, Some(1), &mut v).unwrap();
        // Reference: resident concat of base and buffer.
        let mut want = 0u64;
        let mut want_n = 0u64;
        for r in 0..300u64 {
            if (50..=200).contains(&r) {
                want = want.wrapping_add(r * 3);
                want_n += 1;
            }
        }
        for i in 0..40u64 {
            if (50..=200).contains(&(i * 7 % 290)) {
                want = want.wrapping_add(i);
                want_n += 1;
            }
        }
        assert_eq!(v.sum, want);
        assert_eq!(v.count, want_n);
    }

    #[test]
    fn row_ids_stable_across_compaction() {
        let mut d = TieredDelta::with_threshold(base(130), usize::MAX);
        // 130 is unaligned: compaction rewrites the tail block.
        let id = d.insert(&[9_999, 1]).unwrap();
        assert_eq!(id, 130);
        use crate::visitor::CollectVisitor;
        let q = RangeQuery::all(2).with_range(0, 9_999, 9_999);
        let mut v = CollectVisitor::default();
        d.try_execute(&q, None, &mut v).unwrap();
        assert_eq!(v.rows, vec![130]);
        d.compact().unwrap();
        let mut v2 = CollectVisitor::default();
        d.try_execute(&q, None, &mut v2).unwrap();
        assert_eq!(v2.rows, vec![130], "sealing must not renumber rows");
    }

    #[test]
    fn empty_base_grows_from_nothing() {
        let empty = TieredTable::seal(
            &Table::from_columns(vec![vec![], vec![]]),
            Arc::new(MemBackend::new()),
            TierConfig::default(),
        )
        .unwrap();
        let mut d = TieredDelta::with_threshold(empty, 4);
        for i in 0..10u64 {
            d.insert(&[i, i * 2]).unwrap();
        }
        assert_eq!(d.len(), 10);
        let mut v = CountVisitor::default();
        d.try_execute(&RangeQuery::all(2), None, &mut v).unwrap();
        assert_eq!(v.count, 10);
    }
}
