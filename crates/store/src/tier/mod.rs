//! Tiered storage: larger-than-RAM tables behind a [`StorageBackend`].
//!
//! The resident column store ([`crate::table`]) is the hot tier. This
//! module adds the cold tier: sealed tables whose bit-packed blocks live
//! in checksummed segment blobs on a pluggable backend (in-memory for
//! tests, files for real datasets), loaded and evicted at segment
//! granularity under a configurable memory budget.
//!
//! Layering:
//!
//! * [`backend`] — [`SegmentKey`], [`StorageError`], the [`StorageBackend`]
//!   trait, and its implementations ([`MemBackend`], [`FileBackend`],
//!   fault-injecting [`FailingBackend`]).
//! * [`segment`] — the checksummed on-disk codec for a run of blocks.
//! * [`cache`] — [`SegmentCache`]: budgeted LRU residency with pin-safe
//!   eviction, plus [`TierConfig`] (`FLOOD_MEM_BUDGET`).
//! * [`table`] — [`TieredTable`]: resident block metadata + cumulative
//!   sidecars over cold segments; sealing and compaction.
//! * [`scan`] — segment-faulting twins of the packed scan kernels,
//!   bit-identical to the resident kernels in results and shared counters.
//! * [`index`] — [`TieredScan`], the full-scan index over tiered data,
//!   with the retry-or-panic policy for the infallible trait surface.
//! * [`delta`] — [`TieredDelta`], fresh inserts compacting into new cold
//!   segments.

pub mod backend;
pub mod cache;
pub mod delta;
pub mod index;
pub mod scan;
pub mod segment;
pub mod table;

pub use backend::{
    FailingBackend, FileBackend, MemBackend, SegmentKey, StorageBackend, StorageError,
};
pub use cache::{LoadedSegment, SegmentCache, TierConfig};
pub use delta::{TieredDelta, DEFAULT_TIER_DELTA_THRESHOLD};
pub use index::{TieredScan, SCAN_RETRIES};
pub use scan::{scan_checked_dims_tiered, scan_filtered_tiered, scan_full_tiered};
pub use segment::{decode_segment, encode_segment};
pub use table::{BlockMeta, SegSpan, TieredColumn, TieredTable};
