//! [`TieredTable`]: a sealed table whose column data lives in cold
//! segments, with per-block metadata and cumulative sidecars always
//! resident.
//!
//! Sealing splits every column into [`BLOCK_LEN`]-sized bit-packed blocks
//! and groups runs of [`TierConfig::segment_blocks`] blocks into segments
//! written to a [`StorageBackend`]. What stays in RAM unconditionally is
//! tiny and O(rows / 128):
//!
//! * [`BlockMeta`] (min/max/len) per block — enough to classify every
//!   range predicate, so scans skip cold segments without reading them;
//! * a per-block cumulative sum sidecar — whole-block SUM accepts are
//!   answered with zero data access, like the resident store's
//!   [`CumulativeColumn`](crate::CumulativeColumn) at block granularity;
//! * segment geometry and residency handles.
//!
//! Segment files are reference-counted: cloning a `TieredTable` (how the
//! serving layer snapshots an epoch) shares them, and a segment's blob is
//! deleted from the backend only when the last table generation
//! referencing it drops. A pinned snapshot therefore never faults on a
//! retired epoch's segments — they are not retired until it lets go.
//!
//! Geometry invariant: every segment starts at a block index that is a
//! multiple of `segment_blocks` and spans at most `segment_blocks` blocks
//! (compaction preserves this), so cuts aligned to
//! [`TieredTable::segment_rows`] never split a segment.

use super::backend::{SegmentKey, StorageBackend, StorageError};
use super::cache::{SegmentCache, TierConfig};
use super::segment::{decode_segment, encode_segment};
use crate::block::{Block, BlockMatch, BLOCK_LEN};
use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocates process-unique table lineage ids, so two tiered tables never
/// collide in a shared backend.
static TABLE_IDS: AtomicU64 = AtomicU64::new(1);

/// Always-resident metadata for one block: everything
/// [`Block::classify`]-equivalent decisions need, without the words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Minimum value in the block.
    pub min: u64,
    /// Maximum value in the block.
    pub max: u64,
    /// Number of rows in the block.
    pub len: u16,
}

impl BlockMeta {
    /// Classify the inclusive predicate `[lo, hi]` against this block —
    /// the same decision [`Block::classify`] makes from the full block, so
    /// a tiered scan's skip/accept/probe choices are bit-identical to a
    /// resident packed scan's.
    #[inline]
    pub fn classify(&self, lo: u64, hi: u64) -> BlockMatch {
        debug_assert!(lo <= hi);
        if hi < self.min || lo > self.max {
            return BlockMatch::Skip;
        }
        if lo <= self.min && self.max <= hi {
            return BlockMatch::Accept;
        }
        BlockMatch::Probe {
            dlo: lo.saturating_sub(self.min),
            dhi: (hi - self.min).min(self.max - self.min),
        }
    }
}

/// A run of consecutive blocks sealed as one segment (shared geometry for
/// every column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegSpan {
    /// Index of the first block in the segment.
    pub first_block: usize,
    /// Number of blocks in the segment.
    pub n_blocks: usize,
}

/// A reference-counted handle to one stored segment blob. Dropping the
/// last handle retires the blob: it is discarded from the cache and
/// deleted from the backend (best-effort).
#[derive(Debug)]
pub(crate) struct SegmentFile {
    key: SegmentKey,
    /// Encoded blob size (cold-tier footprint).
    bytes: usize,
    cache: Arc<SegmentCache>,
}

impl SegmentFile {
    pub(crate) fn key(&self) -> SegmentKey {
        self.key
    }
}

impl Drop for SegmentFile {
    fn drop(&mut self) {
        self.cache.discard(self.key);
        let _ = self.cache.backend().delete(self.key);
    }
}

/// One column of a tiered table: resident metadata plus segment handles.
#[derive(Debug, Clone)]
pub struct TieredColumn {
    /// Per-block min/max/len.
    meta: Vec<BlockMeta>,
    /// Cumulative sidecar: `block_prefix[b]` is the wrapping sum of every
    /// value in blocks `0..=b`.
    block_prefix: Vec<u64>,
    /// One handle per segment, parallel to the table's spans.
    files: Vec<Arc<SegmentFile>>,
}

impl TieredColumn {
    /// Per-block metadata, in block order.
    pub fn meta(&self) -> &[BlockMeta] {
        &self.meta
    }

    /// Wrapping sum of every value in block `b` — from the resident
    /// sidecar, no data access.
    #[inline]
    pub fn block_sum(&self, b: usize) -> u64 {
        let upto = self.block_prefix[b];
        if b == 0 {
            upto
        } else {
            upto.wrapping_sub(self.block_prefix[b - 1])
        }
    }

    /// The key of segment `s` of this column.
    pub(crate) fn segment_key(&self, s: usize) -> SegmentKey {
        self.files[s].key()
    }
}

/// A sealed table stored cold, scanned through the segment cache.
#[derive(Debug, Clone)]
pub struct TieredTable {
    spans: Vec<SegSpan>,
    /// Block index → segment index.
    seg_of_block: Vec<u32>,
    columns: Vec<TieredColumn>,
    names: Vec<String>,
    len: usize,
    segment_blocks: usize,
    table_id: u64,
    next_seg: Arc<AtomicU64>,
    cache: Arc<SegmentCache>,
}

impl TieredTable {
    /// Seal `table` into `backend` under `cfg`: compress every column into
    /// blocks, group them into segments, write the segments cold, and keep
    /// only metadata resident. The source table is not consumed; callers
    /// drop it to realize the memory win.
    pub fn seal(
        table: &Table,
        backend: Arc<dyn StorageBackend>,
        cfg: TierConfig,
    ) -> Result<Self, StorageError> {
        let segment_blocks = cfg.segment_blocks.max(1);
        let cache = Arc::new(SegmentCache::new(backend, cfg.budget_bytes));
        let table_id = TABLE_IDS.fetch_add(1, Ordering::Relaxed);
        let mut out = TieredTable {
            spans: Vec::new(),
            seg_of_block: Vec::new(),
            columns: (0..table.dims())
                .map(|_| TieredColumn {
                    meta: Vec::new(),
                    block_prefix: Vec::new(),
                    files: Vec::new(),
                })
                .collect(),
            names: table.names().to_vec(),
            len: 0,
            segment_blocks,
            table_id,
            next_seg: Arc::new(AtomicU64::new(0)),
            cache,
        };
        let cols: Vec<Vec<u64>> = (0..table.dims())
            .map(|d| table.column(d).to_vec())
            .collect();
        out.append_columns(cols)?;
        Ok(out)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The residency manager shared by every clone of this table.
    pub fn cache(&self) -> &Arc<SegmentCache> {
        &self.cache
    }

    /// Rows per full segment — the cut alignment for partitioned scans.
    pub fn segment_rows(&self) -> usize {
        self.segment_blocks * BLOCK_LEN
    }

    /// Number of blocks per column.
    pub fn n_blocks(&self) -> usize {
        self.seg_of_block.len()
    }

    /// Number of segments per column.
    pub fn n_segments(&self) -> usize {
        self.spans.len()
    }

    /// Segment geometry (shared by every column).
    pub fn spans(&self) -> &[SegSpan] {
        &self.spans
    }

    /// The segment that holds block `b`.
    #[inline]
    pub fn segment_of_block(&self, b: usize) -> usize {
        self.seg_of_block[b] as usize
    }

    /// Column accessor.
    pub fn tiered_column(&self, dim: usize) -> &TieredColumn {
        &self.columns[dim]
    }

    /// The storage key of column `dim`'s segment `s` (tests and
    /// diagnostics; scans resolve keys internally).
    pub fn segment_key(&self, dim: usize, s: usize) -> SegmentKey {
        self.columns[dim].segment_key(s)
    }

    /// Every segment key of column `dim`, in segment order.
    pub fn segment_keys(&self, dim: usize) -> Vec<SegmentKey> {
        (0..self.n_segments())
            .map(|s| self.segment_key(dim, s))
            .collect()
    }

    /// Always-resident metadata footprint in bytes: block metadata,
    /// cumulative sidecars, and segment geometry. This is what a
    /// larger-than-RAM table costs when fully cold.
    pub fn metadata_bytes(&self) -> usize {
        let per_col: usize = self
            .columns
            .iter()
            .map(|c| {
                c.meta.len() * std::mem::size_of::<BlockMeta>()
                    + c.block_prefix.len() * 8
                    + c.files.len() * std::mem::size_of::<SegmentFile>()
            })
            .sum();
        per_col + self.spans.len() * std::mem::size_of::<SegSpan>() + self.seg_of_block.len() * 4
    }

    /// Total encoded bytes across every cold segment of every column — the
    /// dataset's cold-tier footprint, which `repro tiered` sizes its
    /// memory budget against.
    pub fn cold_bytes(&self) -> usize {
        self.columns
            .iter()
            .flat_map(|c| c.files.iter())
            .map(|f| f.bytes)
            .sum()
    }

    /// Append `cols` (column-major, one `Vec` per dimension, equal
    /// lengths) as new sealed segments — the compaction path for
    /// `delta.rs`-style fresh inserts.
    ///
    /// When the current row count is not block-aligned, the tail segment
    /// is decoded, merged with the new rows, and re-sealed as fresh
    /// segments (its old blob retires via handle drop — clones of this
    /// table made earlier keep it alive and readable). All backend writes
    /// happen before any self-mutation: on error the table is unchanged
    /// and best-effort cleanup removes the orphaned new blobs.
    pub fn append_columns(&mut self, cols: Vec<Vec<u64>>) -> Result<(), StorageError> {
        assert_eq!(cols.len(), self.dims(), "column count mismatch");
        let added = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == added),
            "ragged append: columns differ in length"
        );
        if added == 0 {
            return Ok(());
        }

        // Rows from the start of the tail segment that must be re-sealed
        // together with the appended rows (none when block-aligned — the
        // whole tail is already sealed tight).
        let (keep_spans, tail_start) = if self.len % BLOCK_LEN == 0 {
            (self.spans.len(), self.len)
        } else {
            let tail = *self.spans.last().expect("unaligned len implies a span");
            (self.spans.len() - 1, tail.first_block * BLOCK_LEN)
        };
        let first_new_block = tail_start / BLOCK_LEN;

        // Gather the values to seal: decoded tail rows (if any) ++ appended.
        let mut to_seal: Vec<Vec<u64>> = Vec::with_capacity(self.dims());
        for (d, new_vals) in cols.into_iter().enumerate() {
            let mut vals = Vec::with_capacity((self.len - tail_start) + added);
            if tail_start < self.len {
                let tail_seg = self.spans.len() - 1;
                let (loaded, _) = self.cache.acquire(self.columns[d].segment_key(tail_seg))?;
                for blk in &loaded.blocks {
                    blk.decompress_into(&mut vals);
                }
            }
            vals.extend_from_slice(&new_vals);
            to_seal.push(vals);
        }
        let new_rows = to_seal[0].len();
        let new_blocks = new_rows.div_ceil(BLOCK_LEN);

        // Seal and write every new segment before touching self.
        let mut new_files: Vec<Vec<Arc<SegmentFile>>> = Vec::with_capacity(self.dims());
        let mut new_meta: Vec<Vec<BlockMeta>> = Vec::with_capacity(self.dims());
        let mut new_sums: Vec<Vec<u64>> = Vec::with_capacity(self.dims());
        let mut new_spans: Vec<SegSpan> = Vec::new();
        let mut written: Vec<SegmentKey> = Vec::new();
        let mut write_all = || -> Result<(), StorageError> {
            for span_start in (0..new_blocks).step_by(self.segment_blocks) {
                let span_blocks = self.segment_blocks.min(new_blocks - span_start);
                new_spans.push(SegSpan {
                    first_block: first_new_block + span_start,
                    n_blocks: span_blocks,
                });
            }
            for vals in &to_seal {
                let blocks: Vec<Block> = vals.chunks(BLOCK_LEN).map(Block::compress).collect();
                let mut files = Vec::new();
                for span_start in (0..new_blocks).step_by(self.segment_blocks) {
                    let span_blocks = self.segment_blocks.min(new_blocks - span_start);
                    let run = &blocks[span_start..span_start + span_blocks];
                    let key = SegmentKey {
                        table: self.table_id,
                        dim: new_files.len() as u32,
                        id: self.next_seg.fetch_add(1, Ordering::Relaxed),
                    };
                    let blob = encode_segment(run);
                    self.cache.backend().put(key, &blob)?;
                    written.push(key);
                    files.push(Arc::new(SegmentFile {
                        key,
                        bytes: blob.len(),
                        cache: self.cache.clone(),
                    }));
                }
                new_files.push(files);
                new_meta.push(
                    blocks
                        .iter()
                        .map(|b| BlockMeta {
                            min: b.min(),
                            max: b.max(),
                            len: b.len() as u16,
                        })
                        .collect(),
                );
                let mut sums = Vec::with_capacity(blocks.len());
                for chunk in vals.chunks(BLOCK_LEN) {
                    sums.push(chunk.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
                }
                new_sums.push(sums);
            }
            Ok(())
        };
        if let Err(e) = write_all() {
            for key in written {
                let _ = self.cache.backend().delete(key);
            }
            return Err(e);
        }

        // Commit: drop the rebuilt tail (handles retire the old blobs once
        // no clone references them) and splice the new geometry in.
        self.spans.truncate(keep_spans);
        self.seg_of_block.truncate(first_new_block);
        for (span_off, span) in new_spans.iter().enumerate() {
            let seg_idx = (keep_spans + span_off) as u32;
            self.spans.push(*span);
            self.seg_of_block
                .extend(std::iter::repeat_n(seg_idx, span.n_blocks));
        }
        for (d, col) in self.columns.iter_mut().enumerate() {
            col.files.truncate(keep_spans);
            col.files.append(&mut new_files[d]);
            col.meta.truncate(first_new_block);
            col.meta.extend_from_slice(&new_meta[d]);
            col.block_prefix.truncate(first_new_block);
            let mut acc = col.block_prefix.last().copied().unwrap_or(0);
            for &s in &new_sums[d] {
                acc = acc.wrapping_add(s);
                col.block_prefix.push(acc);
            }
        }
        self.len = tail_start + new_rows;
        Ok(())
    }

    /// Materialize a fully-resident copy of the table (plain columns),
    /// reading every segment directly from the backend without disturbing
    /// cache residency or fault counters. The correctness oracle for the
    /// differential suites; also handy for re-learning over sealed data.
    pub fn resident(&self) -> Result<Table, StorageError> {
        let mut cols = Vec::with_capacity(self.dims());
        for col in &self.columns {
            let mut vals = Vec::with_capacity(self.len);
            for file in &col.files {
                let key = file.key();
                let bytes = self.cache.backend().get(key)?;
                let blocks = decode_segment(&bytes)
                    .map_err(|detail| StorageError::Corrupt { key, detail })?;
                for b in &blocks {
                    b.decompress_into(&mut vals);
                }
            }
            cols.push(vals);
        }
        Ok(Table::from_named_columns(cols, self.names.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemBackend;
    use super::*;

    fn table(n: u64) -> Table {
        Table::from_named_columns(
            vec![
                (0..n).map(|i| i % 97).collect(),
                (0..n).map(|i| (i * 31) % 1009).collect(),
            ],
            vec!["a".into(), "b".into()],
        )
    }

    fn seal(n: u64, budget: usize) -> (TieredTable, Arc<MemBackend>) {
        let backend = Arc::new(MemBackend::new());
        let t = TieredTable::seal(
            &table(n),
            backend.clone(),
            TierConfig {
                budget_bytes: budget,
                segment_blocks: 2,
            },
        )
        .unwrap();
        (t, backend)
    }

    #[test]
    fn seal_resident_roundtrip() {
        let (t, _backend) = seal(1000, 0);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.n_blocks(), 8);
        assert_eq!(t.n_segments(), 4);
        let r = t.resident().unwrap();
        let orig = table(1000);
        assert_eq!(r.len(), orig.len());
        for d in 0..2 {
            for row in 0..1000 {
                assert_eq!(r.value(row, d), orig.value(row, d), "row {row} dim {d}");
            }
        }
        assert_eq!(r.names(), orig.names());
    }

    #[test]
    fn metadata_matches_blocks() {
        let (t, _backend) = seal(300, 0);
        let orig = table(300);
        let col = t.tiered_column(0);
        assert_eq!(col.meta().len(), 3);
        for (b, m) in col.meta().iter().enumerate() {
            let s = b * BLOCK_LEN;
            let e = (s + BLOCK_LEN).min(300);
            let vals: Vec<u64> = (s..e).map(|r| orig.value(r, 0)).collect();
            assert_eq!(m.min, *vals.iter().min().unwrap());
            assert_eq!(m.max, *vals.iter().max().unwrap());
            assert_eq!(m.len as usize, e - s);
            assert_eq!(
                col.block_sum(b),
                vals.iter().fold(0u64, |a, &v| a.wrapping_add(v))
            );
        }
    }

    #[test]
    fn classify_meta_matches_block_classify() {
        let vals: Vec<u64> = (0..100u64).map(|i| 50 + (i * 7) % 200).collect();
        let blk = Block::compress(&vals);
        let meta = BlockMeta {
            min: blk.min(),
            max: blk.max(),
            len: blk.len() as u16,
        };
        for (lo, hi) in [
            (0, 49),
            (0, 50),
            (50, 249),
            (100, 150),
            (250, 300),
            (0, u64::MAX),
        ] {
            assert_eq!(meta.classify(lo, hi), blk.classify(lo, hi), "[{lo},{hi}]");
        }
    }

    #[test]
    fn append_aligned_creates_new_segments_only() {
        // 512 rows = 4 blocks = 2 full segments (segment_blocks=2).
        let (mut t, _backend) = seal(512, 1 << 20);
        let keys_before = t.segment_keys(0);
        t.append_columns(vec![(0..100u64).collect(), (0..100u64).rev().collect()])
            .unwrap();
        assert_eq!(t.len(), 612);
        let keys_after = t.segment_keys(0);
        assert_eq!(
            &keys_after[..keys_before.len()],
            &keys_before[..],
            "aligned append must not rewrite sealed segments"
        );
        let r = t.resident().unwrap();
        assert_eq!(r.value(512, 0), 0);
        assert_eq!(r.value(611, 1), 0);
    }

    #[test]
    fn append_unaligned_reseal_preserves_rows() {
        let (mut t, _backend) = seal(300, 1 << 20);
        t.append_columns(vec![(1000..1070u64).collect(), (2000..2070u64).collect()])
            .unwrap();
        assert_eq!(t.len(), 370);
        let r = t.resident().unwrap();
        let orig = table(300);
        for row in 0..300 {
            assert_eq!(r.value(row, 0), orig.value(row, 0), "row {row}");
        }
        for i in 0..70 {
            assert_eq!(r.value(300 + i, 0), 1000 + i as u64);
            assert_eq!(r.value(300 + i, 1), 2000 + i as u64);
        }
        // Geometry invariant: spans start at segment_blocks boundaries.
        for s in t.spans() {
            assert_eq!(s.first_block % 2, 0, "span start must stay aligned");
            assert!(s.n_blocks <= 2);
        }
    }

    #[test]
    fn clone_pins_retired_segments_alive() {
        let (mut t, backend) = seal(300, 1 << 20);
        let snapshot = t.clone();
        let blobs_before = backend.blob_count();
        // Unaligned append rewrites the tail segment of both columns.
        t.append_columns(vec![vec![1, 2, 3], vec![4, 5, 6]])
            .unwrap();
        // Old tail blobs still exist: the snapshot references them.
        assert!(backend.blob_count() > blobs_before);
        let r = snapshot.resident().unwrap();
        assert_eq!(r.len(), 300, "snapshot still reads its own generation");
        drop(snapshot);
        // Last reference gone: retired blobs are deleted.
        assert_eq!(
            backend.blob_count(),
            t.segment_keys(0).len() + t.segment_keys(1).len()
        );
    }

    #[test]
    fn empty_table_seals() {
        let backend = Arc::new(MemBackend::new());
        let t = TieredTable::seal(
            &Table::from_columns(vec![vec![], vec![]]),
            backend,
            TierConfig::default(),
        )
        .unwrap();
        assert!(t.is_empty());
        assert_eq!(t.n_segments(), 0);
        assert_eq!(t.resident().unwrap().len(), 0);
    }

    #[test]
    fn distinct_tables_never_share_keys() {
        let backend = Arc::new(MemBackend::new());
        let cfg = TierConfig::default().with_budget(0);
        let a = TieredTable::seal(&table(200), backend.clone(), cfg).unwrap();
        let b = TieredTable::seal(&table(200), backend, cfg).unwrap();
        for ka in a.segment_keys(0) {
            for kb in b.segment_keys(0) {
                assert_ne!(ka, kb);
            }
        }
    }
}
